#![forbid(unsafe_code)]
//! # mhd — LLMs for mental health disorder detection on social media
//!
//! A complete, self-contained Rust reproduction of the benchmark
//! methodology surveyed in *"A Survey of Large Language Models in Mental
//! Health Disorder Detection on Social Media"* (ICDE 2025): synthetic
//! social-media datasets, classical and neural baselines, a simulated
//! prompt-driven LLM runtime with fine-tuning, and the full experiment
//! suite (tables T1–T6, figures F1–F5).
//!
//! This facade crate re-exports the subsystem crates; see the README for a
//! guided tour and `examples/quickstart.rs` for a first run.

pub use mhd_core as core;
pub use mhd_corpus as corpus;
pub use mhd_eval as eval;
pub use mhd_llm as llm;
pub use mhd_models as models;
pub use mhd_nn as nn;
pub use mhd_prompts as prompts;
pub use mhd_text as text;

pub use mhd_core::experiments::ExperimentConfig;
pub use mhd_core::methods::{make_detector, MethodSpec, SharedClient};
pub use mhd_core::pipeline::{evaluate, EvalResult};
pub use mhd_core::report::{full_report, Artifact};
pub use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};
pub use mhd_prompts::Strategy;
