#![forbid(unsafe_code)]
//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`rngs::StdRng`] (here a xoshiro256** generator seeded via SplitMix64
//! rather than ChaCha12 — sequences therefore differ from upstream rand,
//! and seed-pinned expectations in the workspace are pinned against THIS
//! implementation), the [`Rng`]/[`SeedableRng`] traits with `gen`,
//! `gen_range` and `gen_bool`, and [`seq::SliceRandom`] with `shuffle` and
//! `choose`.
//!
//! Everything is deterministic: same seed, same sequence, on every
//! platform and thread.

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Uniform double in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform float in `[0, 1)` with 24 random bits.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Map a uniform `u64` into `[0, span)` via the widening-multiply trick.
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `gen_range` can sample uniformly. The blanket [`SampleRange`]
/// impls below hang off this trait so type inference unifies the range's
/// element type with `gen_range`'s return type (as in upstream rand).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can be sampled uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_uniform {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}

float_sample_uniform!(f64, unit_f64; f32, unit_f32);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole sequence is fixed by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    /// Deterministic and platform-independent; NOT cryptographic and NOT
    /// sequence-compatible with upstream rand's ChaCha12 `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling and shuffling.

    use super::{bounded, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_covers_and_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&v));
            let w: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*pool.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
