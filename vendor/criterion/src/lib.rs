#![forbid(unsafe_code)]
//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Implements the harness surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple calibrated wall-clock loop (median of `sample_size` samples) —
//! good enough to compare code paths, with none of upstream criterion's
//! statistical machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Runs the measured closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    warmup_iters: u64,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // MHD_BENCH_SMOKE=1 turns every benchmark into a single sample of a
        // single iteration: CI uses it to prove each target still runs
        // without paying for real measurement.
        let smoke = std::env::var_os("MHD_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0");
        Criterion { sample_size: 10, warmup_iters: 1, smoke }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.smoke {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{name:<40} time: [{}]  (smoke: 1 sample × 1 iter)", fmt_duration(b.elapsed));
            return self;
        }
        // Calibration: run once to estimate per-iteration cost, then choose
        // an iteration count that gives samples of at least ~5 ms.
        let mut b = Bencher { iters: self.warmup_iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.div_f64(self.warmup_iters.max(1) as f64);
        let target = Duration::from_millis(5);
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.div_f64(iters as f64));
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples × {iters} iters)",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi),
            samples.len(),
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Mirror of criterion's group macro: binds a config + target list to a
/// function that runs them all.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirror of criterion's main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    criterion_group! {
        name = demo;
        config = Criterion::default().sample_size(3);
        targets = bench_example
    }

    #[test]
    fn harness_runs() {
        demo();
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut c = Criterion { sample_size: 10, warmup_iters: 1, smoke: true };
        let calls = std::cell::Cell::new(0u32);
        c.bench_function("counted", |b| b.iter(|| calls.set(calls.get() + 1)));
        assert_eq!(calls.get(), 1, "smoke mode must run one sample of one iteration");
    }
}
