#![forbid(unsafe_code)]
//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of rayon it uses: `par_iter()` / `into_par_iter()` with `map`
//! + `collect` (and `for_each`), backed by `std::thread::scope`.
//!
//! Two guarantees the experiment engine relies on:
//!
//! 1. **Ordered collection.** `collect()` returns results in the input
//!    order, regardless of which thread computed which item — parallel
//!    runs are byte-identical to serial runs.
//! 2. **Bounded global parallelism.** A process-wide permit pool caps the
//!    number of extra worker threads at `jobs - 1`. Nested parallel calls
//!    find the pool drained and simply run inline on the calling thread —
//!    no oversubscription, no deadlock, same results.
//!
//! `ThreadPoolBuilder::new().num_threads(n).build_global()` resizes the
//! permit pool. Unlike upstream rayon it may be called repeatedly (later
//! calls win); the determinism tests use this to compare `--jobs 1` and
//! `--jobs 4` within one process.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread permits available beyond the calling thread.
/// usize::MAX means "not yet configured" (use available_parallelism).
static EXTRA_PERMITS: Mutex<Option<usize>> = Mutex::new(None);
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(0);

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The number of jobs the global pool is configured for.
pub fn current_num_threads() -> usize {
    match CONFIGURED_JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// Try to take up to `want` worker permits; returns how many were granted.
fn acquire_permits(want: usize) -> usize {
    let mut guard = EXTRA_PERMITS.lock().unwrap_or_else(|e| e.into_inner());
    let available = guard.get_or_insert_with(|| current_num_threads().saturating_sub(1));
    let granted = want.min(*available);
    *available -= granted;
    granted
}

fn release_permits(n: usize) {
    let mut guard = EXTRA_PERMITS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(available) = guard.as_mut() {
        *available += n;
    }
}

/// Error type returned by [`ThreadPoolBuilder::build_global`] (the shim
/// never actually fails; the type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool could not be configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global permit pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: None }
    }

    /// Total jobs (calling thread included). 0 = auto.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Apply to the global pool. Repeated calls reconfigure (shim
    /// extension; upstream rayon errors on the second call).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let jobs = match self.num_threads {
            Some(0) | None => default_jobs(),
            Some(n) => n,
        };
        CONFIGURED_JOBS.store(jobs, Ordering::Relaxed);
        let mut guard = EXTRA_PERMITS.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(jobs.saturating_sub(1));
        Ok(())
    }
}

/// Ordered parallel map over `items`, writing results into a Vec.
fn par_map_indexed<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = acquire_permits(n.saturating_sub(1));
    if workers == 0 {
        return items.iter().map(f).collect();
    }
    let chunks = workers + 1;
    let chunk_len = n.div_ceil(chunks);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let mut spare: &mut [Option<R>] = &mut out;
        let mut offset = 0usize;
        std::thread::scope(|scope| {
            let mut first: Option<(&[T], &mut [Option<R>])> = None;
            while offset < n {
                let len = chunk_len.min(n - offset);
                let (slot, rest) = spare.split_at_mut(len);
                spare = rest;
                let chunk = &items[offset..offset + len];
                if first.is_none() {
                    // The calling thread takes the first chunk itself.
                    first = Some((chunk, slot));
                } else {
                    let f = &f;
                    scope.spawn(move || {
                        for (s, item) in slot.iter_mut().zip(chunk) {
                            *s = Some(f(item));
                        }
                    });
                }
                offset += len;
            }
            if let Some((chunk, slot)) = first {
                for (s, item) in slot.iter_mut().zip(chunk) {
                    *s = Some(f(item));
                }
            }
        });
    }
    release_permits(workers);
    out.into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Run `f` on every item in parallel for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_indexed(self.items, f);
    }
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collect results in input order.
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_vec(par_map_indexed(self.items, self.f))
    }
}

/// Targets `collect()` can produce (Vec only, in this shim).
pub trait FromParallelResults<R> {
    /// Build from the ordered result vector.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Sync + 'a;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `par_chunks_mut()` on mutable slices, mirroring rayon's
/// `ParallelSliceMut`. Chunks are disjoint `&mut [T]` windows handed to
/// worker threads via `std::thread::scope`; because every chunk is written
/// by exactly one closure invocation, results never depend on the worker
/// count — only on the (caller-fixed) chunk size.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut { data: self, chunk_size: chunk_size.max(1) }
    }
}

/// A parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

/// An enumerated [`ParChunksMut`]: each closure call receives
/// `(chunk_index, chunk)`.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index, as in `rayon`'s
    /// `par_chunks_mut(n).enumerate()`.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let chunks: Vec<(usize, &mut [T])> =
            self.inner.data.chunks_mut(chunk_size).enumerate().collect();
        let n = chunks.len();
        if n == 0 {
            return;
        }
        let workers = acquire_permits(n.saturating_sub(1));
        if workers == 0 {
            for item in chunks {
                f(item);
            }
            return;
        }
        let groups = workers + 1;
        let group_len = n.div_ceil(groups);
        {
            let mut remaining = chunks;
            std::thread::scope(|scope| {
                let mut first: Option<Vec<(usize, &mut [T])>> = None;
                while !remaining.is_empty() {
                    let take = group_len.min(remaining.len());
                    let rest = remaining.split_off(take);
                    let group = std::mem::replace(&mut remaining, rest);
                    if first.is_none() {
                        // The calling thread takes the first group itself.
                        first = Some(group);
                    } else {
                        let f = &f;
                        scope.spawn(move || {
                            for item in group {
                                f(item);
                            }
                        });
                    }
                }
                if let Some(group) = first {
                    for item in group {
                        f(item);
                    }
                }
            });
        }
        release_permits(workers);
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut, ThreadPoolBuilder};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let parallel: Vec<u64> = items.par_iter().map(|&x| x * x).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..100).collect();
                inner.par_iter().map(|&j| i + j).collect::<Vec<_>>().into_iter().sum()
            })
            .collect();
        assert_eq!(sums.len(), 8);
        assert_eq!(sums[0], (0..100).sum::<usize>());
    }

    #[test]
    fn reconfigure_global_pool() {
        ThreadPoolBuilder::new().num_threads(1).build_global().unwrap();
        let a: Vec<i32> = vec![1, 2, 3].par_iter().map(|&x| x + 1).collect();
        ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let b: Vec<i32> = vec![1, 2, 3].par_iter().map(|&x| x + 1).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        let mut data = vec![0u64; 1003];
        data.as_mut_slice().par_chunks_mut(17).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u64;
            }
        });
        // Every element written exactly once, with its chunk's index.
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (k / 17) as u64, "element {k}");
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_at_any_pool_size() {
        let serial: Vec<u64> = (0..500).map(|x: u64| x * 3 + 1).collect();
        for jobs in [1, 4] {
            ThreadPoolBuilder::new().num_threads(jobs).build_global().unwrap();
            let mut data: Vec<u64> = (0..500).collect();
            data.as_mut_slice().par_chunks_mut(7).for_each(|chunk| {
                for v in chunk.iter_mut() {
                    *v = *v * 3 + 1;
                }
            });
            assert_eq!(data, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_chunks_mut_empty_slice() {
        let mut data: Vec<u8> = Vec::new();
        data.as_mut_slice().par_chunks_mut(4).for_each(|_| unreachable!("no chunks"));
    }
}
