#![forbid(unsafe_code)]
//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the features the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   inner attribute) generating `cases` deterministic inputs per test;
//! - strategies: string regex literals (a pragmatic subset: `\PC`, `[...]`
//!   character classes with ranges, literal characters, and the `*`,
//!   `{n}`, `{m,n}` quantifiers), numeric ranges, tuples,
//!   [`collection::vec`], and [`bool::ANY`];
//! - `prop_assert!` / `prop_assert_eq!` (panicking variants — this shim
//!   does not shrink failures, it reports the failing case directly).
//!
//! Case generation is seeded from the test function's name, so runs are
//! reproducible without a persistence file.

pub use rand::rngs::StdRng;
use rand::Rng;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values for one test case.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, f32, f64);

/// String regex strategies: `"[a-z]{1,20}"` draws matching strings.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        regex_strings::sample_regex(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s of `element` with a length from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `vec(element, 0..20)` — mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, min: sizes.start, max_exclusive: sizes.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.max_exclusive > self.min {
                rng.gen_range(self.min..self.max_exclusive)
            } else {
                self.min
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform true/false.
    pub struct Any;

    /// Mirror of `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

mod regex_strings {
    //! Pragmatic regex-subset string generation.

    use rand::rngs::StdRng;
    use rand::{seq::SliceRandom, Rng};

    enum Atom {
        /// `\PC`: any printable character (drawn from a fixed pool).
        AnyPrintable,
        /// `[...]`: explicit character pool.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Pool for `\PC` — ASCII printables plus a few multibyte characters so
    /// unicode handling gets exercised.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (' '..='~').collect();
        pool.extend(['é', 'ß', 'λ', 'З', '中', '😀', '\u{2014}', '\u{00A0}']);
        pool
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    // Only `\PC` (printable) and escaped literals appear in
                    // the workspace's patterns.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::AnyPrintable
                    } else {
                        let c = *chars.get(i + 1).unwrap_or(&'\\');
                        i += 2;
                        Atom::Literal(c)
                    }
                }
                '[' => {
                    let mut pool = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if chars.get(i + 1) == Some(&'-')
                            && i + 2 < chars.len()
                            && chars[i + 2] != ']'
                        {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            pool.extend(lo..=hi);
                            i += 3;
                        } else {
                            pool.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(pool)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier.
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 64)
                }
                Some('+') => {
                    i += 1;
                    (1, 64)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                    match close {
                        Some(end) => {
                            let body: String = chars[i + 1..end].iter().collect();
                            i = end + 1;
                            match body.split_once(',') {
                                Some((lo, hi)) => (
                                    lo.trim().parse().unwrap_or(0),
                                    hi.trim().parse().unwrap_or(0),
                                ),
                                None => {
                                    let n = body.trim().parse().unwrap_or(1);
                                    (n, n)
                                }
                            }
                        }
                        None => (1, 1),
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
        let printable = printable_pool();
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = if piece.max > piece.min {
                rng.gen_range(piece.min..=piece.max)
            } else {
                piece.min
            };
            for _ in 0..n {
                match &piece.atom {
                    Atom::AnyPrintable => {
                        out.push(*printable.choose(rng).expect("non-empty pool"));
                    }
                    Atom::Class(pool) => {
                        if let Some(c) = pool.choose(rng) {
                            out.push(*c);
                        }
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Seed a test's RNG from its name (FNV-1a) so each test gets a distinct
/// but reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Mirror of proptest's `prop_assert!`: fails the current case. This shim
/// panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Mirror of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` block: each contained `#[test] fn name(arg in strategy,
/// ...) { body }` becomes a regular test running `config.cases` sampled
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[doc = $doc:expr])*
      #[test]
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::StdRng as ::rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = ($strategy).sample(&mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_char_class_with_quantifier() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{1,20}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_any_printable_star() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut empties = 0;
        for _ in 0..300 {
            let s = "\\PC*".sample(&mut rng);
            if s.is_empty() {
                empties += 1;
            }
            assert!(s.chars().count() <= 64);
        }
        assert!(empties > 0, "star should sometimes produce empty strings");
    }

    #[test]
    fn regex_class_with_specials() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = "[a-z .!?]{0,200}".sample(&mut rng);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || " .!?".contains(c)));
        }
    }

    #[test]
    fn vec_of_tuples() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = collection::vec((0u32..64, -5.0f64..5.0), 0..20);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 20);
            for (i, x) in v {
                assert!(i < 64);
                assert!((-5.0..5.0).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself drives cases.
        #[test]
        fn macro_runs_cases(x in 0u64..100, flag in crate::bool::ANY) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
