//! Quickstart: build a benchmark dataset, prompt a simulated LLM, and score
//! it against a trained classical baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use mhd::core::methods::{make_detector, ClassicalKind, MethodSpec, SharedClient};
use mhd::core::pipeline::evaluate;
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::Split;
use mhd::prompts::Strategy;

fn main() {
    // 1. Build the SDCNL-style suicide-vs-depression dataset (quarter size).
    let config = BuildConfig { seed: 42, scale: 0.25, label_noise: None };
    let dataset = build_dataset(DatasetId::SdcnlS, &config);
    println!(
        "dataset {}: {} posts, labels {:?}",
        dataset.name,
        dataset.examples.len(),
        dataset.task.labels
    );

    // 2. Shared simulated-LLM service (deterministic, cached).
    let client = SharedClient::new(1234);

    // 3. Evaluate three methods on the test split.
    let methods = [
        MethodSpec::Classical(ClassicalKind::LogReg),
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::FewShot(4) },
    ];
    println!("\n{:<28} {:>9} {:>12}", "method", "accuracy", "weighted_f1");
    for spec in &methods {
        let mut det = make_detector(spec, &client);
        let r = evaluate(det.as_mut(), &dataset, Split::Test);
        println!(
            "{:<28} {:>9.3} {:>12.3}",
            r.method, r.metrics.accuracy, r.metrics.weighted_f1
        );
    }

    // 4. Show one raw prompt/completion exchange — the honest interface.
    let post = &dataset.split(Split::Test)[0].text;
    let prompt = mhd::prompts::template::build_prompt(
        &dataset.task,
        Strategy::ZeroShot,
        post,
        &[],
    );
    let resp = client
        .complete(&mhd::llm::client::ChatRequest::new("sim-gpt-4", prompt.clone()))
        .expect("completion");
    println!("\n--- prompt ---------------------------------------------------");
    println!("{prompt}");
    println!("--- completion ({} tokens, ${:.5}) ----------------------------",
        resp.usage.completion_tokens, resp.cost_usd);
    println!("{}", resp.text);
}
