//! A realistic deployment scenario: a two-stage triage service for a
//! peer-support platform.
//!
//! Incoming posts flow through a cheap trained classifier first; only the
//! posts it is *uncertain* about are escalated to the (expensive) LLM. The
//! example reports routing statistics, all three accuracies (filter-only,
//! all-LLM, hybrid) and the cost saved relative to sending everything to
//! the LLM — the deployment pattern the survey's cost analysis motivates.
//!
//! Note the honest punchline the numbers give on this benchmark: when the
//! supervised filter already beats the zero-shot LLM (the survey's headline
//! result), escalation is a *cost* optimization for coverage of uncertain
//! posts, not an accuracy optimization.
//!
//! Run with: `cargo run --release --example triage_service`

use mhd::core::methods::SharedClient;
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::Split;
use mhd::llm::client::ChatRequest;
use mhd::models::{LogisticRegression, TextClassifier};
use mhd::prompts::output::parse_label;
use mhd::prompts::template::build_prompt;
use mhd::prompts::Strategy;

/// Escalate to the LLM when the classical model's top probability is below
/// this threshold. The regularized 5-class filter is deliberately
/// soft-calibrated (median top-probability ≈ 0.37), so 0.35 escalates
/// roughly the uncertain third of the stream.
const ESCALATION_THRESHOLD: f64 = 0.35;

fn main() {
    let config = BuildConfig { seed: 7, scale: 0.5, label_noise: None };
    let dataset = build_dataset(DatasetId::SwmhS, &config);
    let train = dataset.split(Split::Train);
    let test = dataset.split(Split::Test);
    println!(
        "triage over {} incoming posts ({} communities)",
        test.len(),
        dataset.task.n_classes()
    );

    // Stage 1: train the cheap filter.
    let mut filter = LogisticRegression::new();
    let texts: Vec<&str> = train.iter().map(|e| e.text.as_str()).collect();
    let labels: Vec<usize> = train.iter().map(|e| e.label).collect();
    filter.fit(&texts, &labels, dataset.task.n_classes());

    // Stage 2: the LLM escalation path.
    let client = SharedClient::new(1234);
    let mut escalated = 0usize;
    let mut correct = 0usize;
    let mut filter_only_correct = 0usize;
    let mut llm_only_correct = 0usize;
    let mut llm_cost = 0.0f64;
    let mut everything_cost = 0.0f64;

    for example in &test {
        let proba = filter.predict_proba(&example.text);
        let (stage1_label, stage1_conf) = proba
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");

        // Cost if we had sent this post to the LLM regardless.
        let prompt = build_prompt(&dataset.task, Strategy::ZeroShot, &example.text, &[]);
        let req = ChatRequest {
            model: "sim-gpt-4".into(),
            prompt,
            temperature: 0.0,
            seed: example.id,
        };
        let resp = client.complete(&req).expect("completion");
        everything_cost += resp.cost_usd;

        let llm_label = parse_label(&resp.text, &dataset.task.labels).0.unwrap_or(stage1_label);
        let final_label = if stage1_conf < ESCALATION_THRESHOLD {
            escalated += 1;
            llm_cost += resp.cost_usd;
            llm_label
        } else {
            stage1_label
        };
        if final_label == example.label {
            correct += 1;
        }
        if stage1_label == example.label {
            filter_only_correct += 1;
        }
        if llm_label == example.label {
            llm_only_correct += 1;
        }
    }

    let n = test.len().max(1);
    println!("\nstage-1 filter handled : {:>5} posts", n - escalated);
    println!("escalated to LLM       : {:>5} posts ({:.0}%)", escalated, 100.0 * escalated as f64 / n as f64);
    println!("accuracy  filter-only  : {:>8.3}", filter_only_correct as f64 / n as f64);
    println!("accuracy  all-LLM      : {:>8.3}", llm_only_correct as f64 / n as f64);
    println!("accuracy  hybrid       : {:>8.3}", correct as f64 / n as f64);
    println!("LLM spend (hybrid)     : ${:>8.4}", llm_cost);
    println!("LLM spend (all-LLM)    : ${:>8.4}", everything_cost);
    println!(
        "saved                  : {:>7.1}% of the all-LLM bill",
        100.0 * (1.0 - llm_cost / everything_cost.max(1e-12))
    );
}
