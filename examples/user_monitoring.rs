//! Longitudinal user-level screening: follow a cohort of users over 60 days
//! and flag those developing depression, comparing aggregation rules on
//! recall, false alarms, and *how early* the flag fires after onset.
//!
//! Run with: `cargo run --release --example user_monitoring`

use mhd::core::experiments_ext::a5_user_level;
use mhd::core::experiments::ExperimentConfig;
use mhd::core::methods::{ClassicalKind, ClassifierDetector};
use mhd::core::user_level::{screen_cohort, Aggregation, UserScreener};
use mhd::core::Detector;
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::longitudinal::{generate_cohort, TimelineConfig};
use mhd::corpus::taxonomy::Task;

fn main() {
    // The standard A5 table first.
    let cfg = ExperimentConfig { seed: 42, scale: 0.4, pretrain_seed: 1234, ..Default::default() };
    print!("{}", a5_user_level(&cfg).to_markdown());

    // Then a narrated single-user trace: watch the screener's evidence
    // accumulate across one positive user's timeline.
    let full = build_dataset(
        DatasetId::SwmhS,
        &BuildConfig { seed: 42, scale: 0.4, label_noise: Some(0.0) },
    );
    let mut binary = full.clone();
    binary.task = Task {
        name: "user_binary",
        description: "whether the poster shows signs of depression",
        labels: vec!["control", "depression"],
    };
    binary.examples = full
        .examples
        .iter()
        .filter(|e| e.label == 0 || e.label == 4)
        .map(|e| {
            let mut e = e.clone();
            e.label = usize::from(e.label == 0);
            e.true_label = e.label;
            e
        })
        .collect();
    let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
    det.prepare(&binary);

    let cohort = generate_cohort(&TimelineConfig {
        n_positive: 5,
        n_control: 0,
        mean_posts: 18.0,
        seed: 7,
        ..Default::default()
    });
    let user = &cohort[0];
    let onset = user.onset_day.expect("positive user");
    println!("\nuser #{} — onset at day {onset}", user.user_id);
    let texts: Vec<&str> = user.posts.iter().map(|p| p.text.as_str()).collect();
    let ids: Vec<u64> = (0..texts.len() as u64).collect();
    let preds = det.detect(&binary.task, &texts, &ids);
    for (post, pred) in user.posts.iter().zip(&preds) {
        let marker = if post.day >= onset { "●" } else { "○" };
        let flag = if pred.label == 1 { "DEPRESSIVE" } else { "          " };
        let head: String = post.text.chars().take(56).collect();
        println!("day {:>3} {marker} p={:.2} {flag} | {head}…", post.day, pred.confidence);
    }
    let screener = UserScreener::new(&det, &binary.task, 1, Aggregation::ConsecutivePositives(2));
    let decision = screener.screen(user);
    match decision.decision_day {
        Some(day) => println!(
            "\nflagged on day {day} — {} days after onset",
            day.saturating_sub(onset)
        ),
        None => println!("\nnever flagged (missed case)"),
    }
    let report = screen_cohort(&screener, &cohort);
    println!("cohort recall at streak_2: {:.2}", report.recall());
}
