//! Fine-tuning study: instruction-fine-tune a small model on increasing
//! amounts of task data and watch it close the gap to the zero-shot large
//! model and the trained discriminative baseline (Figure F5's story).
//!
//! Run with: `cargo run --release --example finetune_study`

use mhd::core::methods::{make_detector, ClassicalKind, MethodSpec, SharedClient};
use mhd::core::pipeline::evaluate;
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::Split;
use mhd::prompts::Strategy;

fn main() {
    let config = BuildConfig { seed: 11, scale: 0.5, label_noise: None };
    let dataset = build_dataset(DatasetId::SdcnlS, &config);
    let client = SharedClient::new(1234);
    let train_len = dataset.split_len(Split::Train);
    println!("dataset {} — {} training posts available\n", dataset.name, train_len);
    println!("{:<28} {:>14} {:>12}", "method", "train_examples", "weighted_f1");

    // References: zero-shot small, zero-shot large, discriminative baseline.
    let refs = [
        MethodSpec::Llm { model: "sim-llama-7b".into(), strategy: Strategy::ZeroShot },
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
        MethodSpec::Classical(ClassicalKind::LogReg),
    ];
    for spec in &refs {
        let mut det = make_detector(spec, &client);
        let r = evaluate(det.as_mut(), &dataset, Split::Test);
        let n = if matches!(spec, MethodSpec::Classical(_)) { train_len } else { 0 };
        println!("{:<28} {:>14} {:>12.3}", r.method, n, r.metrics.weighted_f1);
    }

    // The learning curve.
    for size in [25usize, 50, 100, 200, train_len] {
        let spec = MethodSpec::FineTuned {
            base: "sim-llama-7b".into(),
            max_train: if size == train_len { None } else { Some(size) },
        };
        let mut det = make_detector(&spec, &client);
        let r = evaluate(det.as_mut(), &dataset, Split::Test);
        println!("{:<28} {:>14} {:>12.3}", r.method, size.min(train_len), r.metrics.weighted_f1);
    }
}
