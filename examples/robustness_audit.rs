//! Robustness audit: stress every method with test-time perturbations —
//! typos, elongation, emoji injection, negation deletion, sentence
//! shuffling — and report the weighted-F1 degradation (Table T5's story).
//!
//! Run with: `cargo run --release --example robustness_audit`

use mhd::core::experiments::perturb_test_split;
use mhd::core::methods::{make_detector, ClassicalKind, MethodSpec, SharedClient};
use mhd::core::pipeline::{evaluate, evaluate_prepared};
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::perturb::Perturbation;
use mhd::corpus::Split;
use mhd::prompts::Strategy;

fn main() {
    let config = BuildConfig { seed: 5, scale: 1.0, label_noise: None };
    let dataset = build_dataset(DatasetId::DreadditS, &config);
    let client = SharedClient::new(1234);

    let methods = [
        MethodSpec::Classical(ClassicalKind::Lexicon),
        MethodSpec::Classical(ClassicalKind::NaiveBayes),
        MethodSpec::Classical(ClassicalKind::LogReg),
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
    ];

    print!("{:<24} {:>8}", "method", "clean");
    for p in Perturbation::ALL {
        print!(" {:>16}", p.name());
    }
    println!();

    for spec in &methods {
        let mut det = make_detector(spec, &client);
        det.prepare(&dataset);
        let clean = evaluate_prepared(det.as_ref(), &dataset, Split::Test);
        print!("{:<24} {:>8.3}", clean.method, clean.metrics.weighted_f1);
        for p in Perturbation::ALL {
            let perturbed = perturb_test_split(&dataset, p, 0.5, 99);
            let r = evaluate_prepared(det.as_ref(), &perturbed, Split::Test);
            let delta = r.metrics.weighted_f1 - clean.metrics.weighted_f1;
            print!(" {:>8.3} ({:+.2})", r.metrics.weighted_f1, delta);
        }
        println!();
    }

    // Show one perturbed post so the reader sees what the stressor does.
    let post = &dataset.split(Split::Test)[0].text;
    println!("\noriginal : {post}");
    println!(
        "typos    : {}",
        Perturbation::Typos.apply(post, 0.3, 1)
    );
    println!(
        "negation : {}",
        Perturbation::NegationDrop.apply(post, 1.0, 1)
    );
    // suppress unused-fn warning path for evaluate
    let _ = evaluate;
}
