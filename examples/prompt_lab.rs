//! Prompt lab: watch how prompting strategy and model choice change the raw
//! completion for the same post — including CoT reasoning traces, format
//! drift on small models, and the occasional refusal.
//!
//! Run with: `cargo run --release --example prompt_lab`

use mhd::core::methods::SharedClient;
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::Split;
use mhd::llm::client::ChatRequest;
use mhd::prompts::output::parse_label;
use mhd::prompts::select::{DemoSelector, SelectorKind};
use mhd::prompts::template::build_prompt;
use mhd::prompts::Strategy;

fn main() {
    let config = BuildConfig { seed: 3, scale: 0.2, label_noise: None };
    let dataset = build_dataset(DatasetId::SdcnlS, &config);
    let client = SharedClient::new(1234);

    // A few-shot demonstration pool from the training split.
    let train = dataset.split(Split::Train);
    let selector = DemoSelector::new(
        SelectorKind::Stratified,
        train.iter().map(|e| e.text.clone()).collect(),
        train.iter().map(|e| dataset.task.labels[e.label].to_string()).collect(),
        99,
    );

    let example = &dataset.split(Split::Test)[1];
    let gold = dataset.task.labels[example.label];
    println!("post  : {}", example.text);
    println!("gold  : {gold}\n");

    let strategies = [
        Strategy::ZeroShot,
        Strategy::ZeroShotCot,
        Strategy::FewShot(2),
        Strategy::EmotionEnhanced,
        Strategy::Persona,
    ];
    for model in ["sim-llama-7b", "sim-gpt-4"] {
        println!("================ {model} ================");
        for strategy in strategies {
            let demos = selector.select(&example.text, example.id, strategy.shots());
            let prompt = build_prompt(&dataset.task, strategy, &example.text, &demos);
            let req = ChatRequest {
                model: model.into(),
                prompt,
                temperature: 0.0,
                seed: example.id,
            };
            let resp = client.complete(&req).expect("completion");
            let (parsed, how) = parse_label(&resp.text, &dataset.task.labels);
            let verdict = match parsed {
                Some(i) if dataset.task.labels[i] == gold => "✓",
                Some(_) => "✗",
                None => "?",
            };
            println!("[{:<18}] {} ({how:?})", strategy.name(), verdict);
            println!("    {}", resp.text);
        }
        println!();
    }
}
