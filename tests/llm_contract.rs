//! Contract tests for the simulated LLM API: the invariants a caller may
//! rely on, plus fuzzing of the prompt parser and output parser.

use mhd::llm::client::{ChatRequest, LlmClient, LlmError};
use mhd::llm::parse::parse_prompt;
use mhd::prompts::output::parse_label;
use proptest::prelude::*;

fn client() -> LlmClient {
    LlmClient::new(1234)
}

#[test]
fn identical_requests_identical_responses() {
    let c = client();
    let req = ChatRequest {
        model: "sim-gpt-3.5".into(),
        prompt: "Options: a, b\nPost: i feel sad today\nAnswer:".into(),
        temperature: 0.7,
        seed: 99,
    };
    let r1 = c.complete(&req).expect("ok");
    let r2 = c.complete(&req).expect("ok");
    assert_eq!(r1.text, r2.text);
    assert_eq!(r1.usage, r2.usage);
}

#[test]
fn two_fresh_clients_agree() {
    // Same pretrain seed → identical service behaviour across processes.
    let req = ChatRequest::new(
        "sim-gpt-4",
        "Options: control, depression\nPost: i feel hopeless and empty\nAnswer:",
    );
    let a = client().complete(&req).expect("ok");
    let b = client().complete(&req).expect("ok");
    assert_eq!(a.text, b.text);
}

#[test]
fn usage_accounts_prompt_and_completion() {
    let c = client();
    let short = c
        .complete(&ChatRequest::new("sim-gpt-4", "Options: a, b\nPost: hi\nAnswer:"))
        .expect("ok");
    let long_post = "word ".repeat(300);
    let long = c
        .complete(&ChatRequest::new(
            "sim-gpt-4",
            format!("Options: a, b\nPost: {long_post}\nAnswer:"),
        ))
        .expect("ok");
    assert!(long.usage.prompt_tokens > short.usage.prompt_tokens);
    assert!(long.cost_usd > short.cost_usd);
}

#[test]
fn all_zoo_models_complete() {
    let c = client();
    for model in c.model_names() {
        let req = ChatRequest::new(
            model.clone(),
            "Options: control, depression\nPost: i feel sad\nAnswer:",
        );
        let r = c.complete(&req).unwrap_or_else(|e| panic!("{model}: {e}"));
        assert!(!r.text.is_empty(), "{model} returned empty completion");
    }
}

#[test]
fn unknown_model_and_overflow_are_errors() {
    let c = client();
    assert!(matches!(
        c.complete(&ChatRequest::new("no-such-model", "hi")),
        Err(LlmError::UnknownModel(_))
    ));
    let huge = "w ".repeat(40_000);
    assert!(matches!(
        c.complete(&ChatRequest::new("sim-llama-7b", huge)),
        Err(LlmError::ContextOverflow { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The prompt parser is total.
    #[test]
    fn prompt_parser_total(input in "\\PC{0,400}") {
        let parsed = parse_prompt(&input);
        // Labels, demos and query never alias garbage.
        for l in &parsed.labels {
            prop_assert!(!l.is_empty());
        }
    }

    /// The completion parser is total and in-range.
    #[test]
    fn output_parser_total(input in "\\PC{0,200}") {
        let labels = ["depression", "anxiety", "control"];
        let (idx, _) = parse_label(&input, &labels);
        if let Some(i) = idx {
            prop_assert!(i < labels.len());
        }
    }

    /// The client is total over arbitrary prompts (within context budget).
    #[test]
    fn client_total_over_prompts(input in "\\PC{0,300}", seed in 0u64..1000) {
        let c = client();
        let req = ChatRequest { model: "sim-llama-13b".into(), prompt: input, temperature: 0.0, seed };
        let r = c.complete(&req).expect("short prompts always succeed");
        prop_assert!(!r.text.is_empty());
        prop_assert!(r.cost_usd >= 0.0);
        prop_assert!(r.latency_ms > 0.0);
    }

    /// Completions for label-listing prompts parse back into the label set
    /// with high probability — and always for clean "Answer: x" formats.
    #[test]
    fn round_trip_parseability(seed in 0u64..500) {
        let c = client();
        let req = ChatRequest {
            model: "sim-gpt-4".into(),
            prompt: "Decide.\nOptions: depression, control\nPost: i feel hopeless and empty\nAnswer:".into(),
            temperature: 0.0,
            seed,
        };
        let r = c.complete(&req).expect("ok");
        if r.text.starts_with("Answer: ") {
            let (idx, _) = parse_label(&r.text, &["depression", "control"]);
            prop_assert!(idx.is_some(), "clean answer must parse: {}", r.text);
        }
    }
}
