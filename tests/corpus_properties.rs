//! Property-based and structural tests for the synthetic corpus.

use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::generator::{Generator, PostSpec, Style};
use mhd::corpus::perturb::Perturbation;
use mhd::corpus::taxonomy::{Disorder, Severity};
use mhd::corpus::Split;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any dataset builds a structurally valid corpus for any seed.
    #[test]
    fn any_seed_builds_valid_dataset(seed in 0u64..10_000, idx in 0usize..7) {
        let id = DatasetId::ALL[idx];
        let cfg = BuildConfig { seed, scale: 0.05, label_noise: None };
        let d = build_dataset(id, &cfg);
        // Labels in range, ids unique, every split non-empty.
        let mut ids: Vec<u64> = d.examples.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), d.examples.len(), "duplicate example ids");
        for e in &d.examples {
            prop_assert!(e.label < d.task.n_classes());
            prop_assert!(e.true_label < d.task.n_classes());
            prop_assert!(!e.text.is_empty());
        }
        for s in Split::ALL {
            prop_assert!(d.split_len(s) > 0, "split {} empty", s.name());
        }
    }

    /// The generator is total over its spec space.
    #[test]
    fn generator_total(
        seed in 0u64..50_000,
        d_idx in 0usize..8,
        s_idx in 0usize..4,
        tweet in proptest::bool::ANY,
    ) {
        let spec = PostSpec {
            disorder: Disorder::ALL[d_idx],
            severity: Severity::ALL[s_idx],
            secondary: None,
            style: if tweet { Style::Tweet } else { Style::RedditPost },
        };
        let g = Generator::new();
        let text = g.generate(&spec, &mut StdRng::seed_from_u64(seed));
        prop_assert!(!text.trim().is_empty());
        prop_assert!(text.split_whitespace().count() >= 1);
    }

    /// Perturbations are total over generated posts and all rates.
    #[test]
    fn perturbations_total(seed in 0u64..10_000, rate in 0.0f64..1.0, p_idx in 0usize..5) {
        let g = Generator::new();
        let text = g.generate(
            &PostSpec::simple(Disorder::Stress),
            &mut StdRng::seed_from_u64(seed),
        );
        let p = Perturbation::ALL[p_idx];
        let out = p.apply(&text, rate, seed);
        prop_assert!(!out.trim().is_empty());
    }

    /// Label noise override is respected at 0 and bounded at high rates.
    #[test]
    fn noise_override(seed in 0u64..1_000) {
        let clean = build_dataset(
            DatasetId::SdcnlS,
            &BuildConfig { seed, scale: 0.05, label_noise: Some(0.0) },
        );
        prop_assert_eq!(clean.label_noise_rate(), 0.0);
        for e in &clean.examples {
            prop_assert_eq!(e.label, e.true_label);
        }
    }
}

#[test]
fn splits_are_stratified() {
    // Every class appears in every split at default sizes.
    let d = build_dataset(DatasetId::SwmhS, &BuildConfig { seed: 42, scale: 0.3, label_noise: None });
    for s in Split::ALL {
        let mut seen = vec![false; d.task.n_classes()];
        for e in d.split(s) {
            seen[e.true_label] = true;
        }
        assert!(seen.iter().all(|&b| b), "split {} missing a class", s.name());
    }
}

#[test]
fn class_signal_is_learnable_but_overlapping() {
    // The suicide-vs-depression pair must overlap lexically (the hard-pair
    // property): a depression post should still contain mostly shared
    // vocabulary, with death-category words as the separator.
    use mhd::text::lexicon::{Lexicon, LexiconCategory};
    use mhd::text::tokenize::words;
    let g = Generator::new();
    let lex = Lexicon::standard();
    let mut rng = StdRng::seed_from_u64(1);
    let mut dep_death = 0u32;
    let mut si_death = 0u32;
    let mut dep_sad = 0u32;
    let mut si_sad = 0u32;
    for _ in 0..60 {
        let dep = g.generate(&PostSpec::simple(Disorder::Depression), &mut rng);
        let si = g.generate(&PostSpec::simple(Disorder::SuicidalIdeation), &mut rng);
        let pd = lex.profile(&words(&dep));
        let ps = lex.profile(&words(&si));
        dep_death += pd.count(LexiconCategory::Death);
        si_death += ps.count(LexiconCategory::Death);
        dep_sad += pd.count(LexiconCategory::Sadness);
        si_sad += ps.count(LexiconCategory::Sadness);
    }
    assert!(si_death > dep_death * 3, "death language separates: dep {dep_death} si {si_death}");
    assert!(si_sad * 3 > dep_sad, "sadness language shared: dep {dep_sad} si {si_sad}");
}

#[test]
fn dataset_sizes_scale_proportionally() {
    let small = build_dataset(DatasetId::TsidS, &BuildConfig { seed: 1, scale: 0.25, label_noise: None });
    let full = build_dataset(DatasetId::TsidS, &BuildConfig { seed: 1, scale: 1.0, label_noise: None });
    let ratio = full.examples.len() as f64 / small.examples.len() as f64;
    assert!((ratio - 4.0).abs() < 0.3, "scale ratio {ratio}");
}
