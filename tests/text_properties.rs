//! Property-based tests for the text substrate (proptest).

use mhd::text::bpe::{estimate_tokens, Bpe};
use mhd::text::normalize::{collapse_whitespace, normalize, squash_elongation};
use mhd::text::sparse::SparseVec;
use mhd::text::stem::stem;
use mhd::text::tokenize::{sentences, tokenize, words};
use proptest::prelude::*;

proptest! {
    /// The tokenizer must never panic and must only lowercase word tokens.
    #[test]
    fn tokenizer_total(input in "\\PC*") {
        let toks = tokenize(&input);
        for t in &toks {
            prop_assert!(!t.text.is_empty() || t.text == "<url>");
        }
    }

    /// Sentence splitting never loses non-whitespace content entirely.
    #[test]
    fn sentences_cover_content(input in "[a-z .!?]{0,200}") {
        let sents = sentences(&input);
        let joined: String = sents.join(" ");
        let orig_chars: usize = input.chars().filter(|c| !c.is_whitespace()).count();
        let kept_chars: usize = joined.chars().filter(|c| !c.is_whitespace()).count();
        prop_assert_eq!(orig_chars, kept_chars);
    }

    /// Porter stemming never grows a word and converges (note: Porter is
    /// *not* idempotent in general — "ease"→"eas"→"ea" — so we assert
    /// monotone shrinkage, the property callers actually rely on).
    #[test]
    fn stemmer_shrinks_monotonically(word in "[a-z]{1,20}") {
        let once = stem(&word);
        let twice = stem(&once);
        prop_assert!(once.len() <= word.len() + 1, "{} -> {}", word, once);
        prop_assert!(twice.len() <= once.len(), "{} -> {} -> {}", word, once, twice);
        // And it terminates at a fixed point within a few applications.
        let mut w = twice;
        for _ in 0..5 {
            let next = stem(&w);
            if next == w { break; }
            w = next;
        }
        prop_assert_eq!(stem(&w), w.clone(), "no fixed point reached for {}", word);
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(input in "\\PC{0,200}") {
        let once = normalize(&input);
        prop_assert_eq!(normalize(&once), once.clone());
    }

    /// Elongation squashing caps all runs.
    #[test]
    fn squash_caps_runs(input in "[a-c]{0,50}", max_run in 1usize..4) {
        let out = squash_elongation(&input, max_run);
        let mut run = 0usize;
        let mut prev = None;
        for c in out.chars() {
            if Some(c) == prev { run += 1; } else { run = 1; prev = Some(c); }
            prop_assert!(run <= max_run);
        }
    }

    /// Whitespace collapsing leaves no double spaces and no edge spaces.
    #[test]
    fn collapse_no_double_spaces(input in "\\PC{0,100}") {
        let out = collapse_whitespace(&input);
        prop_assert!(!out.contains("  "));
        prop_assert!(!out.starts_with(' ') && !out.ends_with(' '));
    }

    /// Sparse vector dot product is symmetric and Cauchy–Schwarz holds.
    #[test]
    fn sparse_dot_symmetric(
        a in proptest::collection::vec((0u32..64, -5.0f64..5.0), 0..20),
        b in proptest::collection::vec((0u32..64, -5.0f64..5.0), 0..20),
    ) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
        prop_assert!(va.dot(&vb).abs() <= va.l2_norm() * vb.l2_norm() + 1e-9);
    }

    /// Sparse addition agrees with dense addition.
    #[test]
    fn sparse_add_matches_dense(
        a in proptest::collection::vec((0u32..32, -5.0f64..5.0), 0..16),
        b in proptest::collection::vec((0u32..32, -5.0f64..5.0), 0..16),
    ) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        let sum = va.add(&vb);
        for i in 0..32u32 {
            prop_assert!((sum.get(i) - (va.get(i) + vb.get(i))).abs() < 1e-9);
        }
    }

    /// BPE token counts are bounded by character counts and are stable.
    #[test]
    fn bpe_counts_bounded(text in "[a-z ]{0,120}") {
        let corpus = ["the cat sat on the mat", "a dog ate the food"];
        let bpe = Bpe::train(&corpus, 16);
        let n = bpe.count_tokens(&text);
        let chars = text.chars().filter(|c| !c.is_whitespace()).count();
        prop_assert!(n <= chars + text.split_whitespace().count());
        prop_assert_eq!(n, bpe.count_tokens(&text));
    }

    /// The cheap estimator is monotone in length for repeated text.
    #[test]
    fn estimate_monotone(reps in 1usize..20) {
        let short = "hello world ".repeat(reps);
        let long = "hello world ".repeat(reps + 1);
        prop_assert!(estimate_tokens(&long) > estimate_tokens(&short));
    }

    /// `words` output is always lowercase (lexical tokens only).
    #[test]
    fn words_lowercase(input in "[A-Za-z !?.]{0,100}") {
        for w in words(&input) {
            prop_assert_eq!(w.to_lowercase(), w.clone());
        }
    }
}
