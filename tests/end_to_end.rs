//! Full-pipeline integration tests: artifact generation, determinism and
//! report assembly across every crate.

use mhd::core::experiments::ExperimentConfig;
use mhd::core::report::{full_report, Artifact};
use mhd::eval::table::Table;

fn tiny() -> ExperimentConfig {
    ExperimentConfig { seed: 42, scale: 0.06, ..ExperimentConfig::default() }
}

fn generate(a: Artifact) -> Table {
    a.generate(&tiny())
}

#[test]
fn every_artifact_generates_rows() {
    for a in Artifact::ALL {
        let t = generate(a);
        assert!(t.n_rows() > 0, "{} produced no rows", a.name());
        assert!(!t.headers.is_empty());
        // All rows have header arity (Table enforces on push; re-check).
        for row in t.rows() {
            assert_eq!(row.len(), t.headers.len());
        }
    }
}

#[test]
fn artifacts_are_deterministic() {
    // The whole benchmark is seeded: re-generating any artifact must give
    // byte-identical output.
    for a in [Artifact::T1, Artifact::T3, Artifact::F2] {
        let x = generate(a).to_csv();
        let y = generate(a).to_csv();
        assert_eq!(x, y, "{} not deterministic", a.name());
    }
}

#[test]
fn different_seed_changes_results_not_structure() {
    let a = Artifact::T3.generate(&tiny());
    let b = Artifact::T3.generate(&ExperimentConfig { seed: 7, scale: 0.06, ..tiny() });
    assert_eq!(a.n_rows(), b.n_rows());
    assert_eq!(a.headers, b.headers);
    assert_ne!(a.to_csv(), b.to_csv(), "different seeds must change numbers");
}

#[test]
fn t2_covers_full_roster() {
    use mhd::core::experiments::t2_methods;
    let t = Artifact::T2.generate(&tiny());
    let n_methods = t2_methods().len();
    assert_eq!(t.n_rows(), n_methods * 7, "methods × datasets");
}

#[test]
fn t3_covers_all_strategies() {
    let t = generate(Artifact::T3);
    // 3 models × 6 strategies × 4 datasets.
    assert_eq!(t.n_rows(), 3 * 6 * 4);
    let csv = t.to_csv();
    for s in ["zero_shot", "zero_shot_cot", "few_shot_k4", "few_shot_cot_k4", "emotion_enhanced", "persona"] {
        assert!(csv.contains(s), "missing strategy {s}");
    }
}

#[test]
fn f1_has_five_points_per_dataset() {
    let t = generate(Artifact::F1);
    assert_eq!(t.n_rows(), 5 * 7);
}

#[test]
fn f2_sweeps_k() {
    let t = generate(Artifact::F2);
    assert_eq!(t.n_rows(), 2 * 6 * 4, "models × k values × datasets");
}

#[test]
fn full_report_renders_all_sections() {
    let report = full_report(&tiny());
    for a in Artifact::ALL {
        let title_tag = format!("{}:", a.name().to_uppercase());
        assert!(report.contains(&title_tag), "report missing section {title_tag}");
    }
    assert!(report.len() > 4_000, "report suspiciously short: {} bytes", report.len());
}

#[test]
fn csv_and_markdown_agree_on_content() {
    let t = generate(Artifact::T6);
    let csv = t.to_csv();
    let md = t.to_markdown();
    // Every model name present in both renderings.
    for model in ["sim-llama-7b", "sim-gpt-4"] {
        assert!(csv.contains(model));
        assert!(md.contains(model));
    }
}
