//! The benchmark's headline *shape* assertions (DESIGN.md §4): the
//! qualitative findings the survey reports must emerge from the system.
//! Absolute numbers are not asserted — only orderings and trends.

use mhd::core::methods::{make_detector, ClassicalKind, MethodSpec, SharedClient};
use mhd::core::pipeline::evaluate;
use mhd::corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd::corpus::{Dataset, Split};
use mhd::prompts::Strategy;

const SCALE: f64 = 0.25;

fn dataset(id: DatasetId) -> Dataset {
    build_dataset(id, &BuildConfig { seed: 42, scale: SCALE, label_noise: None })
}

fn wf1(spec: &MethodSpec, client: &SharedClient, d: &Dataset) -> f64 {
    let mut det = make_detector(spec, client);
    evaluate(det.as_mut(), d, Split::Test).metrics.weighted_f1
}

fn zs(model: &str) -> MethodSpec {
    MethodSpec::Llm { model: model.into(), strategy: Strategy::ZeroShot }
}

/// Mean zero-shot weighted F1 over several datasets for one model.
fn mean_zs_wf1(model: &str, client: &SharedClient, datasets: &[Dataset]) -> f64 {
    let total: f64 = datasets.iter().map(|d| wf1(&zs(model), client, d)).sum();
    total / datasets.len() as f64
}

#[test]
fn scale_ordering_holds_on_average() {
    // Bigger models win zero-shot, averaged across the benchmark.
    let client = SharedClient::new(1234);
    let datasets: Vec<Dataset> = [
        DatasetId::DreadditS,
        DatasetId::SdcnlS,
        DatasetId::SwmhS,
        DatasetId::TsidS,
    ]
    .into_iter()
    .map(dataset)
    .collect();
    let f7 = mean_zs_wf1("sim-llama-7b", &client, &datasets);
    let f70 = mean_zs_wf1("sim-llama-70b", &client, &datasets);
    let f4 = mean_zs_wf1("sim-gpt-4", &client, &datasets);
    assert!(f7 < f70, "7b {f7:.3} !< 70b {f70:.3}");
    assert!(f70 <= f4 + 0.02, "70b {f70:.3} should not beat gpt-4 {f4:.3} by much");
    assert!(f4 > f7 + 0.05, "gpt-4 {f4:.3} must clearly beat 7b {f7:.3}");
}

#[test]
fn trained_baselines_beat_zero_shot_llms_on_most_tasks() {
    // The survey's headline finding: supervised discriminative models still
    // beat zero-shot LLMs on a majority of the tasks.
    let client = SharedClient::new(1234);
    let mut wins = 0;
    let mut total = 0;
    for id in [DatasetId::DreadditS, DatasetId::SdcnlS, DatasetId::SwmhS, DatasetId::TsidS] {
        let d = dataset(id);
        let logreg = wf1(&MethodSpec::Classical(ClassicalKind::LogReg), &client, &d);
        let gpt4 = wf1(&zs("sim-gpt-4"), &client, &d);
        total += 1;
        if logreg > gpt4 {
            wins += 1;
        }
    }
    assert!(wins * 2 >= total, "logreg should win on at least half the tasks ({wins}/{total})");
}

#[test]
fn few_shot_helps_over_zero_shot() {
    let client = SharedClient::new(1234);
    let datasets: Vec<Dataset> =
        [DatasetId::SdcnlS, DatasetId::SwmhS, DatasetId::DreadditS].into_iter().map(dataset).collect();
    let model = "sim-gpt-3.5";
    let zero: f64 = datasets.iter().map(|d| wf1(&zs(model), &client, d)).sum();
    let few: f64 = datasets
        .iter()
        .map(|d| {
            wf1(
                &MethodSpec::Llm { model: model.into(), strategy: Strategy::FewShot(8) },
                &client,
                d,
            )
        })
        .sum();
    assert!(few >= zero - 0.02, "few-shot {few:.3} must not lose to zero-shot {zero:.3}");
}

#[test]
fn cot_helps_large_models_more_than_small() {
    let client = SharedClient::new(1234);
    let datasets: Vec<Dataset> =
        [DatasetId::SdcnlS, DatasetId::SwmhS, DatasetId::DreadditS, DatasetId::TsidS]
            .into_iter()
            .map(dataset)
            .collect();
    let gain = |model: &str| -> f64 {
        datasets
            .iter()
            .map(|d| {
                let cot = wf1(
                    &MethodSpec::Llm { model: model.into(), strategy: Strategy::ZeroShotCot },
                    &client,
                    d,
                );
                cot - wf1(&zs(model), &client, d)
            })
            .sum::<f64>()
            / datasets.len() as f64
    };
    let small = gain("sim-llama-7b");
    let large = gain("sim-gpt-4");
    assert!(large > small, "CoT gain: gpt-4 {large:+.3} must exceed llama-7b {small:+.3}");
}

#[test]
fn finetuning_beats_zero_shot_of_same_model() {
    let client = SharedClient::new(1234);
    for id in [DatasetId::SdcnlS, DatasetId::DreadditS] {
        let d = dataset(id);
        let zero = wf1(&zs("sim-llama-7b"), &client, &d);
        let ft = wf1(
            &MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: None },
            &client,
            &d,
        );
        assert!(ft > zero, "{}: fine-tuned {ft:.3} must beat zero-shot {zero:.3}", d.name);
    }
}

#[test]
fn majority_floor_is_lowest_reasonable_method() {
    let client = SharedClient::new(1234);
    let d = dataset(DatasetId::SwmhS);
    let majority = wf1(&MethodSpec::Classical(ClassicalKind::Majority), &client, &d);
    for spec in [
        MethodSpec::Classical(ClassicalKind::NaiveBayes),
        MethodSpec::Classical(ClassicalKind::LogReg),
        zs("sim-gpt-4"),
    ] {
        let f = wf1(&spec, &client, &d);
        assert!(f > majority, "{} ({f:.3}) must beat majority ({majority:.3})", spec.name());
    }
}

#[test]
fn small_models_fail_format_more_often() {
    // Parse-rate ordering: the 7b chat model drifts from the requested
    // format more than the API-polished models.
    let client = SharedClient::new(1234);
    let d = dataset(DatasetId::SwmhS);
    let parse_rate = |model: &str| {
        let mut det = make_detector(&zs(model), &client);
        evaluate(det.as_mut(), &d, Split::Test).parse_rate()
    };
    let small = parse_rate("sim-llama-7b");
    let large = parse_rate("sim-gpt-4");
    assert!(large >= small, "gpt-4 parse rate {large:.3} must be ≥ llama-7b {small:.3}");
}
