//! `mhd-fault` — a deterministic, seeded fault-injection plane for the
//! serving stack.
//!
//! Real LLM deployments in the mental-health detection space are
//! dominated by partial failures: API rate limits and timeouts, stalled
//! batches, torn checkpoint writes, crashing workers. This crate gives
//! the repo a *reproducible* model of those failures so chaos runs are
//! regression tests, not flakes:
//!
//! * [`FaultPlan`] — a pure function of `(scenario, seed, site, op)`
//!   deciding which operations fault. Two runs with the same seed make
//!   identical decisions for identical operation indices, regardless of
//!   thread interleaving; the zero-fault plan never fires.
//! * [`FaultInjector`] — a shared handle carrying a plan plus per-site
//!   atomic operation counters. Injection seams in `mhd-serve`
//!   (the [`BatchModel`] wrapper), `mhd-nn` (the checkpoint readers) and
//!   `mhd-llm` (the chat client) consult it on every operation.
//! * [`retry`] — seeded exponential-backoff-with-jitter retry for
//!   transient faults. Jitter is a hash of `(seed, salt, attempt)` —
//!   no ambient RNG, so lint rule R1 stays clean.
//!
//! Nothing in this crate reads a clock, draws OS entropy, or panics on
//! the decision path (rules R1/R2/R5); the *injected* faults are the
//! only panics, and they live behind the seams that supervise them.
//!
//! [`BatchModel`]: ../mhd_serve/service/trait.BatchModel.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod retry;

pub use plan::{Fault, FaultInjector, FaultPlan, Scenario, Site};
pub use retry::{backoff_us, retry_transient, RetryPolicy};
