//! The fault plan: a seeded, scenario-shaped schedule of faults.
//!
//! A plan never holds mutable state — [`FaultPlan::decide`] is a pure
//! function of `(scenario, seed, site, op)`, so the schedule is fully
//! determined the moment the plan is built. The [`FaultInjector`] layers
//! per-site atomic operation counters on top so concurrent call sites
//! can draw operation indices without coordination; which *index*
//! faults is identical across runs even when which *thread* draws it
//! is not.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a fault can be injected. Each site is one seam in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A `BatchModel::predict_batch` call in the serving shard pool.
    ModelForward,
    /// A checkpoint file read (`Checkpoint::load` / `Checkpoint::map`).
    CheckpointRead,
    /// An `LlmClient::complete` request.
    LlmRequest,
}

impl Site {
    /// All sites, in stable order.
    pub const ALL: [Site; 3] = [Site::ModelForward, Site::CheckpointRead, Site::LlmRequest];

    fn index(self) -> usize {
        match self {
            Site::ModelForward => 0,
            Site::CheckpointRead => 1,
            Site::LlmRequest => 2,
        }
    }

    /// Stable name used in metrics (`fault.injected.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Site::ModelForward => "model_forward",
            Site::CheckpointRead => "checkpoint_read",
            Site::LlmRequest => "llm_request",
        }
    }
}

/// One injected fault. What a site does with it is the site's contract:
/// the model wrapper panics or stalls, the checkpoint reader corrupts or
/// errors, the LLM client returns a transient typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation panics (a crashing model shard).
    Panic,
    /// The operation completes, but only after stalling this long.
    Stall {
        /// Injected delay in microseconds.
        micros: u64,
    },
    /// A transient I/O error: the next attempt may succeed.
    TransientIo,
    /// One byte of the read buffer is flipped (a torn/corrupted file).
    CorruptByte {
        /// Seed for the corrupted position; readers reduce it modulo
        /// the buffer length.
        offset: u64,
    },
    /// The simulated LLM API rejected the request with a rate limit.
    RateLimited {
        /// Modelled `Retry-After` hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The simulated LLM API timed out.
    TimedOut {
        /// Modelled elapsed time before the timeout, in milliseconds.
        after_ms: u64,
    },
}

/// Named fault storms. Each scenario shapes which sites fault and how
/// often; the seed picks the concrete schedule within that shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// No faults, ever. The service must be byte-identical to a build
    /// without the fault plane.
    ZeroFault,
    /// A few percent of model forwards panic (crashing shards).
    ShardPanic,
    /// Every model forward panics — drives the restart-storm cap.
    PanicStorm,
    /// Model forwards stall long enough to blow request deadlines.
    StalledBatch,
    /// Checkpoint reads fail transiently or return corrupted bytes.
    CorruptCheckpoint,
    /// The LLM API rate-limits in bursts with occasional timeouts.
    RateLimitBurst,
    /// A little of everything, at lower per-site rates.
    Mixed,
}

impl Scenario {
    /// Every scenario, in stable order (CLI help, test sweeps).
    pub const ALL: [Scenario; 7] = [
        Scenario::ZeroFault,
        Scenario::ShardPanic,
        Scenario::PanicStorm,
        Scenario::StalledBatch,
        Scenario::CorruptCheckpoint,
        Scenario::RateLimitBurst,
        Scenario::Mixed,
    ];

    /// Stable name (CLI argument and metric label).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::ZeroFault => "zero_fault",
            Scenario::ShardPanic => "shard_panic",
            Scenario::PanicStorm => "panic_storm",
            Scenario::StalledBatch => "stalled_batch",
            Scenario::CorruptCheckpoint => "corrupt_checkpoint",
            Scenario::RateLimitBurst => "rate_limit_burst",
            Scenario::Mixed => "mixed",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Scenario, String> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| format!("unknown chaos scenario `{s}` (one of: {})", scenario_names()))
    }
}

/// Comma-joined list of every scenario name, for CLI help text.
pub fn scenario_names() -> String {
    Scenario::ALL.map(Scenario::name).join(", ")
}

/// splitmix64 finaliser — a strong, dependency-free bit mixer. The plan
/// only needs decisions to be *deterministic and well-spread*, not
/// cryptographic.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic fault schedule: seed + scenario → for every
/// `(site, op)` pair, the same decision, forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    scenario: Scenario,
    seed: u64,
}

impl FaultPlan {
    /// Build the plan for a scenario and seed.
    pub fn new(scenario: Scenario, seed: u64) -> FaultPlan {
        FaultPlan { scenario, seed }
    }

    /// The plan that never faults.
    pub fn zero() -> FaultPlan {
        FaultPlan { scenario: Scenario::ZeroFault, seed: 0 }
    }

    /// The scenario this plan runs.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The seed this plan runs with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hash stream `k` for `(site, op)` — independent well-mixed words
    /// derived from the plan identity.
    fn word(&self, site: Site, op: u64, k: u64) -> u64 {
        mix64(
            self.seed
                ^ (site.index() as u64).rotate_left(48)
                ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ k.rotate_left(24),
        )
    }

    /// Decide whether operation `op` at `site` faults, and how. Pure:
    /// the same arguments always return the same decision.
    pub fn decide(&self, site: Site, op: u64) -> Option<Fault> {
        // Per-mille roll in [0, 10000): one ten-thousandth resolution.
        let roll = self.word(site, op, 0) % 10_000;
        let aux = self.word(site, op, 1);
        match (self.scenario, site) {
            (Scenario::ZeroFault, _) => None,
            (Scenario::ShardPanic, Site::ModelForward) if roll < 700 => Some(Fault::Panic),
            (Scenario::PanicStorm, Site::ModelForward) => Some(Fault::Panic),
            (Scenario::StalledBatch, Site::ModelForward) if roll < 1_500 => {
                Some(Fault::Stall { micros: 1_500 + aux % 2_500 })
            }
            (Scenario::CorruptCheckpoint, Site::CheckpointRead) if roll < 6_000 => {
                Some(if aux & 1 == 0 {
                    Fault::TransientIo
                } else {
                    Fault::CorruptByte { offset: aux >> 1 }
                })
            }
            (Scenario::RateLimitBurst, Site::LlmRequest) => {
                // Burst windows: 12-op bursts every 48 ops, phase-shifted
                // by the seed so different seeds storm different spans.
                let phase = mix64(self.seed ^ 0x5bd1_e995) % 48;
                let in_burst = (op + phase) % 48 < 12;
                if in_burst && roll < 8_000 {
                    Some(Fault::RateLimited { retry_after_ms: 1 + aux % 50 })
                } else if roll < 300 {
                    Some(Fault::TimedOut { after_ms: 100 + aux % 900 })
                } else {
                    None
                }
            }
            (Scenario::Mixed, Site::ModelForward) if roll < 300 => Some(Fault::Panic),
            (Scenario::Mixed, Site::ModelForward) if roll < 800 => {
                Some(Fault::Stall { micros: 500 + aux % 1_500 })
            }
            (Scenario::Mixed, Site::CheckpointRead) if roll < 2_000 => Some(if aux & 1 == 0 {
                Fault::TransientIo
            } else {
                Fault::CorruptByte { offset: aux >> 1 }
            }),
            (Scenario::Mixed, Site::LlmRequest) if roll < 1_000 => {
                Some(Fault::RateLimited { retry_after_ms: 1 + aux % 50 })
            }
            (Scenario::Mixed, Site::LlmRequest) if roll < 1_300 => {
                Some(Fault::TimedOut { after_ms: 100 + aux % 900 })
            }
            _ => None,
        }
    }
}

/// The shared injection handle: one [`FaultPlan`] plus per-site atomic
/// operation counters. Cloning shares the counters (`Arc` inside), so a
/// shard pool, a zoo loader, and an LLM client can all draw from one
/// schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    ops: Arc<[AtomicU64; 3]>,
}

impl FaultInjector {
    /// A shared injector over `plan`, counters at zero.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, ops: Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]) }
    }

    /// An injector that never faults (the zero plan).
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultPlan::zero())
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Draw the next operation index for `site` and return its fault
    /// decision, counting injections in the obs sink and appending a
    /// `fault_injected` entry to the event journal.
    pub fn next(&self, site: Site) -> Option<Fault> {
        let op = self.ops[site.index()].fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.decide(site, op);
        if fault.is_some() && mhd_obs::is_enabled() {
            mhd_obs::counter_add(injected_counter(site), 1);
            mhd_obs::journal_record(mhd_obs::EventKind::FaultInjected {
                site: site.name().to_string(),
            });
        }
        fault
    }

    /// How many operations `site` has drawn so far.
    pub fn ops(&self, site: Site) -> u64 {
        self.ops[site.index()].load(Ordering::Relaxed)
    }
}

/// Static metric name for injections at `site` (static so the counter
/// map never allocates per call).
fn injected_counter(site: Site) -> &'static str {
    match site {
        Site::ModelForward => "fault.injected.model_forward",
        Site::CheckpointRead => "fault.injected.checkpoint_read",
        Site::LlmRequest => "fault.injected.llm_request",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for scenario in Scenario::ALL {
            let a = FaultPlan::new(scenario, 42);
            let b = FaultPlan::new(scenario, 42);
            for site in Site::ALL {
                for op in 0..2_000 {
                    assert_eq!(a.decide(site, op), b.decide(site, op), "{scenario} {site:?} {op}");
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(Scenario::ShardPanic, 1);
        let b = FaultPlan::new(Scenario::ShardPanic, 2);
        let decisions = |p: &FaultPlan| -> Vec<Option<Fault>> {
            (0..2_000).map(|op| p.decide(Site::ModelForward, op)).collect()
        };
        assert_ne!(decisions(&a), decisions(&b));
    }

    #[test]
    fn zero_fault_never_fires() {
        let p = FaultPlan::zero();
        for site in Site::ALL {
            for op in 0..5_000 {
                assert_eq!(p.decide(site, op), None);
            }
        }
    }

    #[test]
    fn scenario_rates_are_plausible() {
        let count = |scenario, site| -> usize {
            let p = FaultPlan::new(scenario, 7);
            (0..10_000u64).filter(|&op| p.decide(site, op).is_some()).count()
        };
        let panics = count(Scenario::ShardPanic, Site::ModelForward);
        assert!((300..1_500).contains(&panics), "shard_panic rate ~7%, got {panics}/10000");
        assert_eq!(count(Scenario::PanicStorm, Site::ModelForward), 10_000);
        assert_eq!(count(Scenario::ShardPanic, Site::LlmRequest), 0, "off-site stays clean");
        let stalls = count(Scenario::StalledBatch, Site::ModelForward);
        assert!((800..2_500).contains(&stalls), "stall rate ~15%, got {stalls}/10000");
        let rl = count(Scenario::RateLimitBurst, Site::LlmRequest);
        assert!((1_000..4_000).contains(&rl), "burst rate ~20%, got {rl}/10000");
    }

    #[test]
    fn rate_limit_bursts_cluster() {
        let p = FaultPlan::new(Scenario::RateLimitBurst, 11);
        // Rate limits only occur inside 12-op windows: the gap between
        // the first and last rate-limit in any 48-op period is < 12.
        for period in 0..40u64 {
            let hits: Vec<u64> = (period * 48..(period + 1) * 48)
                .filter(|&op| {
                    matches!(p.decide(Site::LlmRequest, op), Some(Fault::RateLimited { .. }))
                })
                .collect();
            if let (Some(first), Some(last)) = (hits.first(), hits.last()) {
                assert!(last - first < 12, "rate limits span {first}..{last} in one period");
            }
        }
    }

    #[test]
    fn injector_counts_ops_and_shares_counters() {
        let inj = FaultInjector::new(FaultPlan::new(Scenario::ShardPanic, 3));
        let clone = inj.clone();
        for _ in 0..10 {
            let _ = inj.next(Site::ModelForward);
        }
        for _ in 0..5 {
            let _ = clone.next(Site::ModelForward);
        }
        assert_eq!(inj.ops(Site::ModelForward), 15, "clones share one op stream");
        assert_eq!(inj.ops(Site::LlmRequest), 0);
        assert!(FaultInjector::disabled().next(Site::ModelForward).is_none());
    }

    #[test]
    fn scenario_parse_roundtrip() {
        for s in Scenario::ALL {
            assert_eq!(s.name().parse::<Scenario>(), Ok(s));
        }
        assert!("nope".parse::<Scenario>().unwrap_err().contains("zero_fault"));
        assert_eq!(Scenario::Mixed.to_string(), "mixed");
    }
}
