//! Seeded exponential-backoff-with-jitter retry for transient faults.
//!
//! The delay schedule is a pure function of `(policy seed, salt,
//! attempt)`: exponential growth capped at `max_us`, with half-interval
//! jitter drawn from a hash — no ambient RNG (rule R1), no clock types
//! (rule R5; sleeping goes through `std::thread::sleep` on a
//! `Duration`). Every retry is recorded in the obs sink: the
//! `serve.retries` counter and the `serve.backoff_us` delay histogram.

use std::time::Duration;

/// Retry shape for one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Normalised to at least 1.
    pub max_attempts: u32,
    /// Base delay before the first retry, microseconds.
    pub base_us: u64,
    /// Upper bound on any single delay, microseconds.
    pub max_us: u64,
    /// Jitter seed; the same seed reproduces the same delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_us: 200, max_us: 20_000, seed: 0 }
    }
}

/// splitmix64 finaliser (same mixer as the fault plan).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The backoff delay before retry number `attempt` (0-based: the delay
/// after the first failure has `attempt == 0`). Deterministic:
/// exponential envelope `base · 2^attempt` capped at `max_us`, then
/// half-interval jitter — the delay lands in `[envelope/2, envelope]`.
pub fn backoff_us(policy: &RetryPolicy, salt: u64, attempt: u32) -> u64 {
    let envelope = policy
        .base_us
        .saturating_mul(1u64 << attempt.min(20))
        .clamp(1, policy.max_us.max(1));
    let jitter = mix64(policy.seed ^ salt.rotate_left(16) ^ attempt as u64) % (envelope / 2 + 1);
    envelope - jitter
}

/// Run `op` until it succeeds, retrying transient errors with seeded
/// backoff. `op` receives the 0-based attempt number; `is_transient`
/// classifies errors (a non-transient error returns immediately). The
/// final attempt's error is returned when the budget is exhausted.
pub fn retry_transient<T, E>(
    policy: &RetryPolicy,
    salt: u64,
    mut is_transient: impl FnMut(&E) -> bool,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt + 1 >= attempts || !is_transient(&e) {
                    return Err(e);
                }
                let delay = backoff_us(policy, salt, attempt);
                if mhd_obs::is_enabled() {
                    mhd_obs::counter_add("serve.retries", 1);
                    mhd_obs::hist_record("serve.backoff_us", delay);
                }
                std::thread::sleep(Duration::from_micros(delay));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy { max_attempts: 6, base_us: 100, max_us: 5_000, seed: 9 };
        for attempt in 0..8 {
            let a = backoff_us(&p, 77, attempt);
            let b = backoff_us(&p, 77, attempt);
            assert_eq!(a, b, "same inputs, same delay");
            let envelope = (100u64 << attempt.min(20)).clamp(1, 5_000);
            assert!(a >= envelope / 2 && a <= envelope, "attempt {attempt}: {a} vs {envelope}");
        }
        // Different salts jitter differently somewhere in the schedule.
        let a: Vec<u64> = (0..8).map(|k| backoff_us(&p, 1, k)).collect();
        let b: Vec<u64> = (0..8).map(|k| backoff_us(&p, 2, k)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let p = RetryPolicy { max_attempts: 5, base_us: 1, max_us: 10, seed: 0 };
        let mut calls = 0u32;
        let out: Result<u32, &str> = retry_transient(&p, 0, |_| true, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let p = RetryPolicy { max_attempts: 3, base_us: 1, max_us: 5, seed: 0 };
        let mut calls = 0u32;
        let out: Result<(), &str> = retry_transient(&p, 0, |_| true, |_| {
            calls += 1;
            Err("still down")
        });
        assert_eq!(out, Err("still down"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_transient_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut calls = 0u32;
        let out: Result<(), &str> = retry_transient(&p, 0, |e| *e != "fatal", |_| {
            calls += 1;
            Err("fatal")
        });
        assert_eq!(out, Err("fatal"));
        assert_eq!(calls, 1, "fatal errors must not retry");
    }

    #[test]
    fn zero_attempt_policy_still_runs_once() {
        let p = RetryPolicy { max_attempts: 0, base_us: 1, max_us: 1, seed: 0 };
        let out: Result<u32, &str> = retry_transient(&p, 0, |_| true, |_| Ok(7));
        assert_eq!(out, Ok(7));
    }
}
