//! The `Detector` trait: one interface over every method class.

use mhd_corpus::dataset::Dataset;
use mhd_corpus::taxonomy::Task;

/// One prediction for one post.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted label index into the task's label list.
    pub label: usize,
    /// Confidence in the predicted label (0..=1).
    pub confidence: f64,
    /// The method produced unparseable output and fell back to a default
    /// (LLM methods only).
    pub parse_failed: bool,
    /// The model refused to answer (LLM methods only).
    pub refused: bool,
}

impl Prediction {
    /// A clean prediction.
    pub fn new(label: usize, confidence: f64) -> Self {
        Prediction { label, confidence, parse_failed: false, refused: false }
    }
}

/// A detection method: anything that can be prepared on a dataset's training
/// split and then asked to label posts.
///
/// `Send` is a supertrait so prepared detectors can be moved into the
/// worker threads of a parallel sweep.
pub trait Detector: Send {
    /// Method name used in result tables.
    fn name(&self) -> String;

    /// Prepare on the dataset (training/pool building uses the Train split
    /// only; implementations must not touch Test).
    fn prepare(&mut self, dataset: &Dataset);

    /// Label a batch of posts. `ids` are stable per-example identifiers
    /// used to seed any per-example randomness deterministically.
    fn detect(&self, task: &Task, texts: &[&str], ids: &[u64]) -> Vec<Prediction>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_constructor() {
        let p = Prediction::new(2, 0.9);
        assert_eq!(p.label, 2);
        assert!(!p.parse_failed);
        assert!(!p.refused);
    }
}
