//! Experiment generators — one function per table/figure of the survey.
//!
//! Every function returns a long-format [`Table`] whose rows are the series
//! the paper plots/tabulates. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured commentary.
//!
//! ## Parallelism
//!
//! The method × dataset sweeps enumerate their cells up front, evaluate
//! them on the rayon pool, and collect results **in cell order**, so every
//! table is byte-identical to the serial nested loops regardless of worker
//! count. Each cell builds its own detector (so per-cell RNG state is
//! isolated); datasets and TF-IDF fits are shared through
//! [`FeatureCache`]. Fine-tune ids (`ft:<base>:<n>`) are assigned in
//! scheduling order, but they never appear in any table and the simulated
//! fine-tuned family neither refuses nor varies output by id, so the
//! counter is output-neutral.

use crate::features::FeatureCache;
use crate::methods::{make_detector_with, ClassicalKind, MethodSpec, SharedClient};
// Re-exported so config consumers (the repro CLI) can parse a precision
// without depending on mhd-models/mhd-nn directly.
pub use mhd_models::Precision;
use crate::pipeline::{evaluate, evaluate_prepared, EvalResult};
use mhd_corpus::builders::{BuildConfig, DatasetId};
use mhd_corpus::dataset::{Dataset, Split};
use mhd_corpus::perturb::Perturbation;
use mhd_corpus::registry::DatasetCard;
use mhd_eval::calibration::calibration;
use mhd_eval::confusion::ConfusionMatrix;
use mhd_eval::table::{fmt0, fmt1, fmt2, fmt3, fmt4, fmt_pct, fmt_range1, Table};
use mhd_prompts::template::Strategy;
use rayon::prelude::*;
use std::sync::Arc;

/// Shared configuration for all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset generation seed.
    pub seed: u64,
    /// Dataset size multiplier (1.0 = full benchmark sizes).
    pub scale: f64,
    /// LLM pretraining seed.
    pub pretrain_seed: u64,
    /// Inference precision for the neural baseline (`bert_mini`). Training
    /// always runs in f32; [`Precision::Int8`] switches batched inference
    /// to the quantized kernels. Other methods ignore the switch.
    pub precision: Precision,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { seed: 42, scale: 1.0, pretrain_seed: 1234, precision: Precision::F32 }
    }
}

impl ExperimentConfig {
    /// A reduced-size configuration for quick runs and CI.
    pub fn fast() -> Self {
        ExperimentConfig { scale: 0.15, ..ExperimentConfig::default() }
    }

    fn build_config(&self) -> BuildConfig {
        BuildConfig { seed: self.seed, scale: self.scale, label_noise: None }
    }

    /// Build one dataset under this config, via the process-wide feature
    /// cache: each `(id, seed, scale)` corpus is generated exactly once no
    /// matter how many artifacts request it.
    pub fn dataset(&self, id: DatasetId) -> Arc<Dataset> {
        FeatureCache::global().dataset(id, &self.build_config())
    }
}

/// The four datasets used by the prompt-ablation and few-shot experiments
/// (one binary, one hard pair, one multi-class, one short-text).
const ABLATION_DATASETS: [DatasetId; 4] =
    [DatasetId::DreadditS, DatasetId::SdcnlS, DatasetId::SwmhS, DatasetId::TsidS];

/// The three datasets used by fine-tuning experiments.
const FT_DATASETS: [DatasetId; 3] = [DatasetId::DreadditS, DatasetId::SdcnlS, DatasetId::SwmhS];

/// The zero-shot model ladder (F1's x-axis).
const SCALE_LADDER: [&str; 5] =
    ["sim-llama-7b", "sim-llama-13b", "sim-llama-70b", "sim-gpt-3.5", "sim-gpt-4"];

fn eval_method(
    spec: &MethodSpec,
    client: &SharedClient,
    dataset: &Dataset,
    precision: Precision,
) -> EvalResult {
    let mut det = make_detector_with(spec, client, precision);
    evaluate(det.as_mut(), dataset, Split::Test)
}

/// Evaluate a list of `(dataset, method)` cells on the rayon pool,
/// returning results in cell order (deterministic output).
fn eval_cells(
    client: &SharedClient,
    cells: &[(Arc<Dataset>, MethodSpec)],
    precision: Precision,
) -> Vec<EvalResult> {
    let parent = mhd_obs::current();
    cells
        .par_iter()
        .map(|(dataset, spec)| {
            let _s = mhd_obs::span_under(parent, &format!("eval:{}", spec.name()));
            eval_method(spec, client, dataset, precision)
        })
        .collect()
}

fn push_result(t: &mut Table, r: &EvalResult) {
    t.push_row(vec![
        r.method.clone(),
        r.dataset.clone(),
        fmt3(r.metrics.accuracy),
        fmt3(r.metrics.weighted_f1),
        fmt3(r.metrics.macro_f1),
        fmt_pct(r.parse_rate()),
    ]);
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// **T1** — dataset statistics.
pub fn t1_dataset_stats(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new(
        "T1: Benchmark dataset statistics",
        &["dataset", "task", "classes", "posts", "train/val/test", "imbalance", "avg_tokens", "label_noise"],
    );
    for id in DatasetId::ALL {
        let card = DatasetCard::of(&cfg.dataset(id));
        t.push_row(vec![
            card.name.to_string(),
            card.task.to_string(),
            card.n_classes.to_string(),
            card.n_examples.to_string(),
            format!("{}/{}/{}", card.split_sizes.0, card.split_sizes.1, card.split_sizes.2),
            fmt1(card.imbalance),
            fmt0(card.avg_tokens),
            fmt_pct(card.label_noise),
        ]);
    }
    t
}

/// The T2 method roster.
pub fn t2_methods() -> Vec<MethodSpec> {
    let mut methods: Vec<MethodSpec> = vec![
        MethodSpec::Classical(ClassicalKind::Majority),
        MethodSpec::Classical(ClassicalKind::Lexicon),
        MethodSpec::Classical(ClassicalKind::NaiveBayes),
        MethodSpec::Classical(ClassicalKind::LogReg),
        MethodSpec::Classical(ClassicalKind::Svm),
        MethodSpec::Classical(ClassicalKind::BertMini),
    ];
    for model in SCALE_LADDER {
        methods.push(MethodSpec::Llm { model: model.into(), strategy: Strategy::ZeroShot });
    }
    methods.push(MethodSpec::Llm { model: "sim-flan-t5-xxl".into(), strategy: Strategy::ZeroShot });
    methods.push(MethodSpec::Llm { model: "sim-gpt-3.5".into(), strategy: Strategy::FewShot(4) });
    methods.push(MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::FewShot(4) });
    methods.push(MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: None });
    methods
}

/// **T2** — main results: every method × every dataset.
pub fn t2_main_results(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "T2: Main results (test split)",
        &["method", "dataset", "accuracy", "weighted_f1", "macro_f1", "parse_rate"],
    );
    let mut cells = Vec::new();
    for id in DatasetId::ALL {
        let dataset = cfg.dataset(id);
        for spec in t2_methods() {
            cells.push((dataset.clone(), spec));
        }
    }
    for r in eval_cells(&client, &cells, cfg.precision) {
        push_result(&mut t, &r);
    }
    t
}

/// **T3** — prompt-engineering ablation on two models × four datasets.
pub fn t3_prompting(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "T3: Prompting-strategy ablation",
        &["method", "dataset", "accuracy", "weighted_f1", "macro_f1", "parse_rate"],
    );
    let mut cells = Vec::new();
    for id in ABLATION_DATASETS {
        let dataset = cfg.dataset(id);
        for model in ["sim-gpt-4", "sim-llama-13b", "sim-llama-7b"] {
            for strategy in Strategy::ALL {
                cells.push((dataset.clone(), MethodSpec::Llm { model: model.into(), strategy }));
            }
        }
    }
    for r in eval_cells(&client, &cells, cfg.precision) {
        push_result(&mut t, &r);
    }
    t
}

/// Fine-tuning training-set sizes swept by T4/F5.
pub const FT_SIZES: [usize; 4] = [100, 300, 600, usize::MAX];

/// **T4 / F5** — fine-tuning study: zero-shot vs fine-tuned at several
/// training-set sizes vs the discriminative baseline.
pub fn t4_finetune(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "T4: Instruction fine-tuning study",
        &["method", "dataset", "train_examples", "accuracy", "weighted_f1"],
    );
    // Cells carry the "train_examples" column alongside the method spec:
    // zero-shot reference, fine-tunes at each size, then the
    // discriminative reference, per dataset.
    let mut cells = Vec::new();
    let mut train_cols = Vec::new();
    for id in FT_DATASETS {
        let dataset = cfg.dataset(id);
        let train_len = dataset.split_len(Split::Train);
        cells.push((
            dataset.clone(),
            MethodSpec::Llm { model: "sim-llama-7b".into(), strategy: Strategy::ZeroShot },
        ));
        train_cols.push("0".to_string());
        for &size in &FT_SIZES {
            cells.push((
                dataset.clone(),
                MethodSpec::FineTuned {
                    base: "sim-llama-7b".into(),
                    max_train: if size == usize::MAX { None } else { Some(size) },
                },
            ));
            train_cols.push(size.min(train_len).to_string());
        }
        cells.push((dataset.clone(), MethodSpec::Classical(ClassicalKind::BertMini)));
        train_cols.push(train_len.to_string());
    }
    for (r, train_col) in eval_cells(&client, &cells, cfg.precision).iter().zip(train_cols) {
        t.push_row(vec![
            r.method.clone(),
            r.dataset.clone(),
            train_col,
            fmt3(r.metrics.accuracy),
            fmt3(r.metrics.weighted_f1),
        ]);
    }
    t
}

/// Methods stressed by the robustness table.
fn t5_methods() -> Vec<MethodSpec> {
    vec![
        MethodSpec::Classical(ClassicalKind::Lexicon),
        MethodSpec::Classical(ClassicalKind::NaiveBayes),
        MethodSpec::Classical(ClassicalKind::LogReg),
        MethodSpec::Classical(ClassicalKind::BertMini),
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
    ]
}

/// **T5** — robustness under test-time perturbation (dreaddit-s).
pub fn t5_robustness(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let dataset = cfg.dataset(DatasetId::DreadditS);
    let mut t = Table::new(
        "T5: Robustness to test-time perturbations (dreaddit-s, weighted F1)",
        &["method", "clean", "typos", "elongation", "emoticons", "negation_drop", "sentence_shuffle"],
    );
    // Perturbed copies are built once, shared read-only by all workers.
    // Intensity 0.5: strong enough for measurable degradation at benchmark
    // dataset sizes (see EXPERIMENTS.md).
    let perturbed: Vec<Dataset> =
        Perturbation::ALL.iter().map(|&p| perturb_test_split(&dataset, p, 0.5, cfg.seed)).collect();
    let methods = t5_methods();
    let parent = mhd_obs::current();
    let rows: Vec<Vec<String>> = methods
        .par_iter()
        .map(|spec| {
            let _s = mhd_obs::span_under(parent, &format!("eval:{}", spec.name()));
            let mut det = make_detector_with(spec, &client, cfg.precision);
            det.prepare(&dataset);
            let clean = evaluate_prepared(det.as_ref(), &dataset, Split::Test);
            let mut row = vec![clean.method.clone(), fmt3(clean.metrics.weighted_f1)];
            for p in &perturbed {
                let r = evaluate_prepared(det.as_ref(), p, Split::Test);
                row.push(fmt3(r.metrics.weighted_f1));
            }
            row
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Clone a dataset with its test split perturbed.
pub fn perturb_test_split(
    dataset: &Dataset,
    perturbation: Perturbation,
    rate: f64,
    seed: u64,
) -> Dataset {
    let mut out = dataset.clone();
    for e in &mut out.examples {
        if e.split == Split::Test {
            e.text = perturbation.apply(&e.text, rate, seed ^ e.id);
        }
    }
    out
}

/// **T6** — efficiency: tokens, dollars and latency per 1 000 posts.
pub fn t6_cost(cfg: &ExperimentConfig) -> Table {
    let dataset = cfg.dataset(DatasetId::SwmhS);
    let mut t = Table::new(
        "T6: Efficiency per 1k posts (swmh-s, zero-shot)",
        &["model", "prompt_tok/post", "completion_tok/post", "usd/1k_posts", "latency_s/post"],
    );
    // Each model gets its own client so cost totals stay isolated under
    // parallel evaluation — equivalent to the serial reset-then-read
    // pattern, because responses (and therefore recorded costs) are a pure
    // function of (pretrain_seed, request).
    let parent = mhd_obs::current();
    let rows: Vec<Vec<String>> = SCALE_LADDER
        .par_iter()
        .map(|model| {
            let _s = mhd_obs::span_under(parent, &format!("eval:{model}/zero_shot"));
            let client = SharedClient::new(cfg.pretrain_seed);
            let spec = MethodSpec::Llm { model: (*model).into(), strategy: Strategy::ZeroShot };
            let r = eval_method(&spec, &client, &dataset, cfg.precision);
            let n = r.pred.len().max(1) as f64;
            let totals = client.tracker().totals(model);
            vec![
                model.to_string(),
                fmt0(totals.prompt_tokens as f64 / n),
                fmt1(totals.completion_tokens as f64 / n),
                fmt4(totals.usd / n * 1000.0),
                fmt2(totals.latency_ms / n / 1000.0),
            ]
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

/// **F1** — weighted F1 vs model scale, per dataset.
pub fn f1_scale_curve(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "F1: Zero-shot weighted F1 vs model scale",
        &["model", "params_b", "dataset", "weighted_f1"],
    );
    let mut cells = Vec::new();
    let mut models = Vec::new();
    for id in DatasetId::ALL {
        let dataset = cfg.dataset(id);
        for model in SCALE_LADDER {
            cells.push((
                dataset.clone(),
                MethodSpec::Llm { model: model.into(), strategy: Strategy::ZeroShot },
            ));
            models.push(model);
        }
    }
    for (r, model) in eval_cells(&client, &cells, cfg.precision).iter().zip(models) {
        // mhd-lint: allow(R2, R6) — SCALE_LADDER names come from the built-in zoo the client registers at construction
        let params = client.spec(model).expect("ladder model exists").params_b;
        t.push_row(vec![
            model.to_string(),
            format!("{params}"),
            r.dataset.clone(),
            fmt3(r.metrics.weighted_f1),
        ]);
    }
    t
}

/// The k values swept by F2.
pub const FEWSHOT_KS: [usize; 6] = [0, 1, 2, 4, 8, 16];

/// **F2** — few-shot k sweep.
pub fn f2_fewshot_sweep(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "F2: Few-shot demonstration sweep (weighted F1)",
        &["model", "k", "dataset", "weighted_f1"],
    );
    let mut cells = Vec::new();
    let mut keys = Vec::new();
    for id in ABLATION_DATASETS {
        let dataset = cfg.dataset(id);
        for model in ["sim-gpt-3.5", "sim-llama-13b"] {
            for &k in &FEWSHOT_KS {
                let strategy = if k == 0 { Strategy::ZeroShot } else { Strategy::FewShot(k) };
                cells.push((dataset.clone(), MethodSpec::Llm { model: model.into(), strategy }));
                keys.push((model, k));
            }
        }
    }
    for (r, (model, k)) in eval_cells(&client, &cells, cfg.precision).iter().zip(keys) {
        t.push_row(vec![
            model.to_string(),
            k.to_string(),
            r.dataset.clone(),
            fmt3(r.metrics.weighted_f1),
        ]);
    }
    t
}

/// **F3** — calibration: reliability bins + ECE per model.
pub fn f3_calibration(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "F3: Calibration on sdcnl-s (10 reliability bins + ECE)",
        &["model", "bin", "mean_confidence", "accuracy", "count", "ece"],
    );
    let dataset = cfg.dataset(DatasetId::SdcnlS);
    let models = ["sim-llama-13b", "sim-gpt-3.5", "sim-gpt-4"];
    let parent = mhd_obs::current();
    let rows: Vec<Vec<Vec<String>>> = models
        .par_iter()
        .map(|model| {
            let _s = mhd_obs::span_under(parent, &format!("eval:{model}/zero_shot"));
            let spec = MethodSpec::Llm { model: (*model).into(), strategy: Strategy::ZeroShot };
            let r = eval_method(&spec, &client, &dataset, cfg.precision);
            let correct = r.correct_flags();
            let cal = calibration(&r.confidence, &correct, 10);
            cal.bins
                .iter()
                .enumerate()
                .map(|(i, bin)| {
                    vec![
                        model.to_string(),
                        fmt_range1(bin.lo, bin.hi),
                        fmt3(bin.mean_confidence),
                        fmt3(bin.accuracy),
                        bin.count.to_string(),
                        if i == 0 { fmt3(cal.ece) } else { String::new() },
                    ]
                })
                .collect()
        })
        .collect();
    for row in rows.into_iter().flatten() {
        t.push_row(row);
    }
    t
}

/// **F4** — confusion matrix of the best LLM on the triage task.
pub fn f4_confusion(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let dataset = cfg.dataset(DatasetId::SwmhS);
    let spec = MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot };
    let r = eval_method(&spec, &client, &dataset, cfg.precision);
    let cm = ConfusionMatrix::from_pairs(&r.gold, &r.pred, dataset.task.n_classes());
    let norm = cm.normalized();
    let mut t = Table::new(
        "F4: sim-gpt-4 zero-shot confusion on swmh-s (row-normalized)",
        &["gold\\pred", "depression", "anxiety", "bipolar", "suicidewatch", "offmychest"],
    );
    for (g, label) in dataset.task.labels.iter().enumerate() {
        let mut row = vec![label.to_string()];
        row.extend(norm[g].iter().map(|&v| fmt3(v)));
        t.push_row(row);
    }
    t
}

/// **F5** — fine-tuning learning curves (same sweep as T4, curve format).
pub fn f5_finetune_curve(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "F5: Fine-tuning data-size learning curves (weighted F1)",
        &["dataset", "train_examples", "weighted_f1"],
    );
    let mut cells = Vec::new();
    let mut train_cols = Vec::new();
    for id in FT_DATASETS {
        let dataset = cfg.dataset(id);
        let train_len = dataset.split_len(Split::Train);
        for &size in &FT_SIZES {
            cells.push((
                dataset.clone(),
                MethodSpec::FineTuned {
                    base: "sim-llama-7b".into(),
                    max_train: if size == usize::MAX { None } else { Some(size) },
                },
            ));
            train_cols.push(size.min(train_len).to_string());
        }
    }
    for (r, train_col) in eval_cells(&client, &cells, cfg.precision).iter().zip(train_cols) {
        t.push_row(vec![r.dataset.clone(), train_col, fmt3(r.metrics.weighted_f1)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig { seed: 42, scale: 0.06, pretrain_seed: 1234, precision: Precision::F32 }
    }

    #[test]
    fn t1_covers_all_datasets() {
        let t = t1_dataset_stats(&tiny());
        assert_eq!(t.n_rows(), 7);
        assert!(t.row_by_key("dreaddit-s").is_some());
    }

    #[test]
    fn t6_cost_ordering() {
        let t = t6_cost(&tiny());
        assert_eq!(t.n_rows(), 5);
        // gpt-4 must cost more per 1k posts than llama-7b.
        let usd = |name: &str| -> f64 {
            t.row_by_key(name).expect("row")[3].parse().expect("number")
        };
        assert!(usd("sim-gpt-4") > usd("sim-llama-7b"));
    }

    #[test]
    fn f4_confusion_rows_normalized() {
        let t = f4_confusion(&tiny());
        assert_eq!(t.n_rows(), 5);
        for row in t.rows() {
            let sum: f64 = row[1..].iter().map(|c| c.parse::<f64>().expect("number")).sum();
            assert!((sum - 1.0).abs() < 0.01, "row sums to {sum}");
        }
    }

    #[test]
    fn perturb_only_touches_test() {
        let d = tiny().dataset(DatasetId::DreadditS);
        let p = perturb_test_split(&d, Perturbation::Elongation, 1.0, 1);
        for (a, b) in d.examples.iter().zip(&p.examples) {
            if a.split == Split::Test {
                assert!(b.text.len() >= a.text.len());
            } else {
                assert_eq!(a.text, b.text, "non-test split must be untouched");
            }
        }
    }
}
