//! The benchmark's method roster and detector factory.

use crate::detector::{Detector, Prediction};
use crate::features::FeatureCache;
use mhd_corpus::dataset::{Dataset, Split};
use mhd_corpus::taxonomy::Task;
use mhd_llm::client::{ChatRequest, LlmClient};
use mhd_llm::finetune::FineTuneJob;
use mhd_models::{
    EncoderClassifier, EncoderClfConfig, LexiconRule, LinearSvm, LogisticRegression, Majority,
    NaiveBayes, Precision, TextClassifier, UniformRandom,
};
use mhd_prompts::select::{DemoSelector, SelectorKind};
use mhd_prompts::template::{build_prompt, Strategy};
use mhd_prompts::output::parse_label;
use mhd_text::tfidf::TfidfConfig;
use std::sync::Arc;

/// A shared handle to the simulated LLM service. The client is `Send + Sync`
/// (all interior mutation is behind locks), so one handle can be cloned into
/// every worker of a parallel sweep; clones share the response cache and
/// cost tracker. Derefs to [`LlmClient`] for direct API calls.
#[derive(Clone)]
pub struct SharedClient(Arc<LlmClient>);

impl SharedClient {
    /// Create a service with the given pretraining seed.
    pub fn new(pretrain_seed: u64) -> Self {
        SharedClient(Arc::new(LlmClient::new(pretrain_seed)))
    }

    /// The underlying client.
    pub fn client(&self) -> &LlmClient {
        &self.0
    }
}

impl std::ops::Deref for SharedClient {
    type Target = LlmClient;

    fn deref(&self) -> &LlmClient {
        &self.0
    }
}

/// Which classical baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassicalKind {
    /// Majority-class floor.
    Majority,
    /// Uniform random floor.
    Random,
    /// Lexicon nearest-centroid rule.
    Lexicon,
    /// Multinomial Naive Bayes.
    NaiveBayes,
    /// Logistic regression over TF-IDF.
    LogReg,
    /// Linear SVM over TF-IDF.
    Svm,
    /// "bert-mini" neural encoder.
    BertMini,
}

impl ClassicalKind {
    /// The full classical roster.
    pub const ALL: [ClassicalKind; 7] = [
        ClassicalKind::Majority,
        ClassicalKind::Random,
        ClassicalKind::Lexicon,
        ClassicalKind::NaiveBayes,
        ClassicalKind::LogReg,
        ClassicalKind::Svm,
        ClassicalKind::BertMini,
    ];
}

/// Full method specification — a row of Table T2.
#[derive(Debug, Clone)]
pub enum MethodSpec {
    /// A trained non-LLM baseline.
    Classical(ClassicalKind),
    /// A prompted LLM.
    Llm {
        /// Model id in the zoo.
        model: String,
        /// Prompting strategy.
        strategy: Strategy,
    },
    /// An instruction-fine-tuned LLM.
    FineTuned {
        /// Base model id.
        base: String,
        /// Cap on fine-tuning examples (None = full train split).
        max_train: Option<usize>,
    },
}

impl MethodSpec {
    /// Table row name.
    pub fn name(&self) -> String {
        match self {
            MethodSpec::Classical(k) => match k {
                ClassicalKind::Majority => "majority".to_string(),
                ClassicalKind::Random => "random".to_string(),
                ClassicalKind::Lexicon => "lexicon".to_string(),
                ClassicalKind::NaiveBayes => "naive_bayes".to_string(),
                ClassicalKind::LogReg => "logreg_tfidf".to_string(),
                ClassicalKind::Svm => "svm_tfidf".to_string(),
                ClassicalKind::BertMini => "bert_mini".to_string(),
            },
            MethodSpec::Llm { model, strategy } => format!("{model}/{}", strategy.name()),
            MethodSpec::FineTuned { base, max_train } => match max_train {
                Some(n) => format!("ft:{base}@{n}"),
                None => format!("ft:{base}"),
            },
        }
    }
}

/// Build a ready-to-prepare detector from a spec (f32 inference).
pub fn make_detector(spec: &MethodSpec, client: &SharedClient) -> Box<dyn Detector> {
    make_detector_with(spec, client, Precision::F32)
}

/// Build a detector with an explicit inference precision. Only the neural
/// `bert_mini` baseline has an int8 path; every other method ignores the
/// switch (they are already integer/sparse or served by the LLM client).
pub fn make_detector_with(
    spec: &MethodSpec,
    client: &SharedClient,
    precision: Precision,
) -> Box<dyn Detector> {
    match spec {
        MethodSpec::Classical(kind) => {
            Box::new(ClassifierDetector::with_precision(*kind, precision))
        }
        MethodSpec::Llm { model, strategy } => Box::new(PromptDetector::new(
            client.clone(),
            model.clone(),
            *strategy,
            SelectorKind::Stratified,
        )),
        MethodSpec::FineTuned { base, max_train } => {
            Box::new(FineTunedDetector::new(client.clone(), base.clone(), *max_train))
        }
    }
}

// ---------------------------------------------------------------------------
// Classical detector
// ---------------------------------------------------------------------------

/// Wraps any [`TextClassifier`] as a [`Detector`].
pub struct ClassifierDetector {
    kind: ClassicalKind,
    precision: Precision,
    model: Option<Box<dyn TextClassifier + Send>>,
}

impl ClassifierDetector {
    /// New, unprepared, f32 inference.
    pub fn new(kind: ClassicalKind) -> Self {
        Self::with_precision(kind, Precision::F32)
    }

    /// New with an explicit inference precision (only `BertMini` routes it).
    pub fn with_precision(kind: ClassicalKind, precision: Precision) -> Self {
        ClassifierDetector { kind, precision, model: None }
    }

    fn build(kind: ClassicalKind, precision: Precision) -> Box<dyn TextClassifier + Send> {
        match kind {
            ClassicalKind::Majority => Box::new(Majority::new()),
            ClassicalKind::Random => Box::new(UniformRandom::new(7)),
            ClassicalKind::Lexicon => Box::new(LexiconRule::new()),
            ClassicalKind::NaiveBayes => Box::new(NaiveBayes::new()),
            ClassicalKind::LogReg => Box::new(LogisticRegression::new()),
            ClassicalKind::Svm => Box::new(LinearSvm::new()),
            ClassicalKind::BertMini => Box::new(EncoderClassifier::with_config(
                EncoderClfConfig { precision, ..EncoderClfConfig::default() },
            )),
        }
    }
}

impl Detector for ClassifierDetector {
    fn name(&self) -> String {
        MethodSpec::Classical(self.kind).name()
    }

    fn prepare(&mut self, dataset: &Dataset) {
        let train = dataset.split(Split::Train);
        let texts: Vec<&str> = train.iter().map(|e| e.text.as_str()).collect();
        let labels: Vec<usize> = train.iter().map(|e| e.label).collect();
        let n_classes = dataset.task.n_classes();
        // LogReg and SVM share one TF-IDF fit per train split through the
        // process-wide feature cache (training itself is unchanged).
        let model: Box<dyn TextClassifier + Send> = match self.kind {
            ClassicalKind::LogReg => {
                let fitted =
                    FeatureCache::global().tfidf_for(&texts, &TfidfConfig::default());
                let mut m = LogisticRegression::new();
                m.fit_vectorized(
                    fitted.vectorizer.clone(),
                    &fitted.train_matrix,
                    &labels,
                    n_classes,
                );
                Box::new(m)
            }
            ClassicalKind::Svm => {
                let fitted =
                    FeatureCache::global().tfidf_for(&texts, &TfidfConfig::default());
                let mut m = LinearSvm::new();
                m.fit_vectorized(
                    fitted.vectorizer.clone(),
                    &fitted.train_matrix,
                    &labels,
                    n_classes,
                );
                Box::new(m)
            }
            _ => {
                let mut m = Self::build(self.kind, self.precision);
                m.fit(&texts, &labels, n_classes);
                m
            }
        };
        self.model = Some(model);
    }

    fn detect(&self, _task: &Task, texts: &[&str], _ids: &[u64]) -> Vec<Prediction> {
        // mhd-lint: allow(R6) — Detector contract: prepare() runs before detect(); the pipeline enforces the order
        let model = self.model.as_ref().expect("prepare before detect");
        // Batched scoring: one whole-split vectorization + parallel kernel
        // for the TF-IDF models, with output identical to per-text calls.
        model
            .predict_proba_batch(texts)
            .into_iter()
            .map(|proba| {
                let label = argmax(&proba);
                Prediction::new(label, proba[label])
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Prompted-LLM detector
// ---------------------------------------------------------------------------

/// Prompts a (simulated) LLM per post and parses the completion.
pub struct PromptDetector {
    client: SharedClient,
    model: String,
    strategy: Strategy,
    selector_kind: SelectorKind,
    selector: Option<DemoSelector>,
    fallback_label: usize,
    temperature: f64,
}

impl PromptDetector {
    /// New detector for a model/strategy pair.
    pub fn new(
        client: SharedClient,
        model: String,
        strategy: Strategy,
        selector_kind: SelectorKind,
    ) -> Self {
        PromptDetector {
            client,
            model,
            strategy,
            selector_kind,
            selector: None,
            fallback_label: 0,
            temperature: 0.0,
        }
    }

    /// Override the sampling temperature (default 0).
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }
}

impl Detector for PromptDetector {
    fn name(&self) -> String {
        format!("{}/{}", self.model, self.strategy.name())
    }

    fn prepare(&mut self, dataset: &Dataset) {
        let train = dataset.split(Split::Train);
        // Majority train class as parse-failure fallback (papers' default).
        let mut counts = vec![0usize; dataset.task.n_classes()];
        for e in &train {
            counts[e.label] += 1;
        }
        self.fallback_label = argmax_usize(&counts);
        if self.strategy.shots() > 0 {
            let texts: Vec<String> = train.iter().map(|e| e.text.clone()).collect();
            let labels: Vec<String> =
                train.iter().map(|e| dataset.task.labels[e.label].to_string()).collect();
            self.selector = Some(DemoSelector::new(self.selector_kind, texts, labels, 77));
        }
    }

    fn detect(&self, task: &Task, texts: &[&str], ids: &[u64]) -> Vec<Prediction> {
        assert_eq!(texts.len(), ids.len());
        let client = self.client.client();
        texts
            .iter()
            .zip(ids)
            .map(|(text, &id)| {
                let demos = match &self.selector {
                    Some(sel) => sel.select(text, id, self.strategy.shots()),
                    None => Vec::new(),
                };
                let prompt = build_prompt(task, self.strategy, text, &demos);
                let req = ChatRequest {
                    model: self.model.clone(),
                    prompt,
                    temperature: self.temperature,
                    seed: id,
                };
                match client.complete(&req) {
                    Ok(resp) => {
                        let (label, _outcome) = parse_label(&resp.text, &task.labels);
                        match label {
                            Some(l) => Prediction {
                                label: l,
                                confidence: resp.top_prob.unwrap_or(0.5),
                                parse_failed: false,
                                refused: resp.refused,
                            },
                            None => {
                                mhd_obs::counter_add("llm.parse_failures", 1);
                                Prediction {
                                    label: self.fallback_label,
                                    confidence: 1.0 / task.n_classes() as f64,
                                    parse_failed: true,
                                    refused: resp.refused,
                                }
                            }
                        }
                    }
                    Err(_) => {
                        mhd_obs::counter_add("llm.parse_failures", 1);
                        Prediction {
                            label: self.fallback_label,
                            confidence: 1.0 / task.n_classes() as f64,
                            parse_failed: true,
                            refused: false,
                        }
                    }
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Fine-tuned-LLM detector
// ---------------------------------------------------------------------------

/// Instruction-fine-tunes a base model on the training split, then prompts
/// the fine-tuned model.
pub struct FineTunedDetector {
    client: SharedClient,
    base: String,
    max_train: Option<usize>,
    ft_model: Option<String>,
    fallback_label: usize,
}

impl FineTunedDetector {
    /// New detector; fine-tuning happens in `prepare`.
    pub fn new(client: SharedClient, base: String, max_train: Option<usize>) -> Self {
        FineTunedDetector { client, base, max_train, ft_model: None, fallback_label: 0 }
    }

    /// The fine-tuned model id (after `prepare`).
    pub fn model_id(&self) -> Option<&str> {
        self.ft_model.as_deref()
    }
}

impl Detector for FineTunedDetector {
    fn name(&self) -> String {
        MethodSpec::FineTuned { base: self.base.clone(), max_train: self.max_train }.name()
    }

    fn prepare(&mut self, dataset: &Dataset) {
        let train = dataset.split(Split::Train);
        let mut counts = vec![0usize; dataset.task.n_classes()];
        for e in &train {
            counts[e.label] += 1;
        }
        self.fallback_label = argmax_usize(&counts);
        let cap = self.max_train.unwrap_or(usize::MAX);
        let examples: Vec<(String, String)> = train
            .iter()
            .take(cap)
            .map(|e| {
                let prompt = build_prompt(&dataset.task, Strategy::ZeroShot, &e.text, &[]);
                (prompt, dataset.task.labels[e.label].to_string())
            })
            .collect();
        let job = FineTuneJob::new(self.base.clone(), examples);
        let ft_id = self
            .client
            .fine_tune(&job)
            // mhd-lint: allow(R6) — jobs built by build_job from a non-empty split are well-formed by construction
            .expect("fine-tune jobs built from a dataset are well-formed");
        self.ft_model = Some(ft_id);
    }

    fn detect(&self, task: &Task, texts: &[&str], ids: &[u64]) -> Vec<Prediction> {
        // mhd-lint: allow(R6) — Detector contract: prepare() runs before detect(); the pipeline enforces the order
        let model = self.ft_model.clone().expect("prepare before detect");
        let client = self.client.client();
        texts
            .iter()
            .zip(ids)
            .map(|(text, &id)| {
                let prompt = build_prompt(task, Strategy::ZeroShot, text, &[]);
                let req = ChatRequest { model: model.clone(), prompt, temperature: 0.0, seed: id };
                match client.complete(&req) {
                    Ok(resp) => match parse_label(&resp.text, &task.labels).0 {
                        Some(l) => Prediction::new(l, 0.9),
                        None => {
                            mhd_obs::counter_add("llm.parse_failures", 1);
                            Prediction {
                                label: self.fallback_label,
                                confidence: 1.0 / task.n_classes() as f64,
                                parse_failed: true,
                                refused: resp.refused,
                            }
                        }
                    },
                    Err(_) => {
                        mhd_obs::counter_add("llm.parse_failures", 1);
                        Prediction {
                            label: self.fallback_label,
                            confidence: 1.0 / task.n_classes() as f64,
                            parse_failed: true,
                            refused: false,
                        }
                    }
                }
            })
            .collect()
    }
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

fn argmax_usize(xs: &[usize]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};

    fn tiny_dataset() -> Dataset {
        build_dataset(DatasetId::SdcnlS, &BuildConfig { seed: 5, scale: 0.15, label_noise: Some(0.0) })
    }

    #[test]
    fn classical_detector_runs() {
        let d = tiny_dataset();
        let mut det = ClassifierDetector::new(ClassicalKind::NaiveBayes);
        det.prepare(&d);
        let test = d.split(Split::Test);
        let texts: Vec<&str> = test.iter().map(|e| e.text.as_str()).collect();
        let ids: Vec<u64> = test.iter().map(|e| e.id).collect();
        let preds = det.detect(&d.task, &texts, &ids);
        assert_eq!(preds.len(), texts.len());
        assert!(preds.iter().all(|p| p.label < d.task.n_classes()));
    }

    #[test]
    fn logreg_and_svm_share_one_tfidf_fit() {
        // Seed 91 is unique to this test, so no other test touches this
        // cache key; delta assertions use >= because the global cache is
        // shared across concurrently running tests.
        let d = build_dataset(
            DatasetId::SdcnlS,
            &BuildConfig { seed: 91, scale: 0.1, label_noise: Some(0.0) },
        );
        let before = FeatureCache::global().stats();
        let mut lr = ClassifierDetector::new(ClassicalKind::LogReg);
        lr.prepare(&d);
        let mid = FeatureCache::global().stats();
        assert!(mid.tfidf_misses > before.tfidf_misses, "first prepare fits");
        let mut svm = ClassifierDetector::new(ClassicalKind::Svm);
        svm.prepare(&d);
        let after = FeatureCache::global().stats();
        // (No equality assertion on misses: concurrent tests share the
        // global cache and may add their own misses in between.)
        assert!(after.tfidf_hits > mid.tfidf_hits, "svm must reuse logreg's fit");
    }

    #[test]
    fn prompt_detector_zero_shot() {
        // Scale 0.5 (test n=79) rather than the tiny 0.15 split (n=23): the
        // vendored StdRng stream differs from upstream rand's, and at n=23
        // the accuracy estimate swings ±0.10 — too noisy to pin a floor.
        let d = build_dataset(
            DatasetId::SdcnlS,
            &BuildConfig { seed: 5, scale: 0.5, label_noise: Some(0.0) },
        );
        let client = SharedClient::new(1234);
        let mut det = PromptDetector::new(
            client,
            "sim-gpt-4".into(),
            Strategy::ZeroShot,
            SelectorKind::Stratified,
        );
        det.prepare(&d);
        let test = d.split(Split::Test);
        let texts: Vec<&str> = test.iter().map(|e| e.text.as_str()).collect();
        let ids: Vec<u64> = test.iter().map(|e| e.id).collect();
        let preds = det.detect(&d.task, &texts, &ids);
        let correct = preds
            .iter()
            .zip(&test)
            .filter(|(p, e)| p.label == e.label)
            .count();
        let acc = correct as f64 / preds.len() as f64;
        assert!(acc > 0.55, "gpt-4 zero-shot accuracy on sdcnl-s: {acc}");
    }

    #[test]
    fn few_shot_detector_uses_selector() {
        let d = tiny_dataset();
        let client = SharedClient::new(1234);
        let mut det = PromptDetector::new(
            client,
            "sim-gpt-3.5".into(),
            Strategy::FewShot(4),
            SelectorKind::Stratified,
        );
        det.prepare(&d);
        let preds = det.detect(&d.task, &["i want to end my life, goodbye"], &[0]);
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn finetuned_detector_roundtrip() {
        let d = tiny_dataset();
        let client = SharedClient::new(1234);
        let mut det = FineTunedDetector::new(client, "sim-llama-7b".into(), Some(40));
        det.prepare(&d);
        assert!(det.model_id().expect("ft id").starts_with("ft:sim-llama-7b"));
        let test = d.split(Split::Test);
        let texts: Vec<&str> = test.iter().map(|e| e.text.as_str()).collect();
        let ids: Vec<u64> = test.iter().map(|e| e.id).collect();
        let preds = det.detect(&d.task, &texts, &ids);
        let acc = preds.iter().zip(&test).filter(|(p, e)| p.label == e.label).count() as f64
            / preds.len() as f64;
        assert!(acc > 0.55, "fine-tuned accuracy {acc}");
    }

    #[test]
    fn method_spec_names() {
        assert_eq!(MethodSpec::Classical(ClassicalKind::LogReg).name(), "logreg_tfidf");
        assert_eq!(
            MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot }.name(),
            "sim-gpt-4/zero_shot"
        );
        assert_eq!(
            MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: Some(100) }.name(),
            "ft:sim-llama-7b@100"
        );
    }

    #[test]
    #[should_panic(expected = "prepare before detect")]
    fn detect_requires_prepare() {
        let d = tiny_dataset();
        let det = ClassifierDetector::new(ClassicalKind::Majority);
        det.detect(&d.task, &["x"], &[0]);
    }
}
