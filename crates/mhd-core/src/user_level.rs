//! User-level detection over longitudinal timelines.
//!
//! Post-level detectors answer "is this *post* symptomatic?"; deployments
//! and the CLPsych/eRisk line of work need "is this *user* at risk, and how
//! early can we tell?". This module aggregates post-level probabilities
//! into user-level decisions and scores both accuracy and *earliness*
//! (an ERDE-style latency-weighted metric).

use crate::detector::Detector;
use mhd_corpus::longitudinal::UserTimeline;
use mhd_corpus::taxonomy::Task;
use mhd_eval::table::fmt2;

/// How per-post positive probabilities combine into a user decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// User is positive when the fraction of positive posts exceeds the
    /// threshold.
    VoteFraction(f64),
    /// User is positive when the mean positive probability exceeds the
    /// threshold.
    MeanProb(f64),
    /// User is positive as soon as `n` consecutive posts are positive — the
    /// streak rule used by early-risk systems to suppress one-off spikes.
    ConsecutivePositives(usize),
}

impl Aggregation {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            Aggregation::VoteFraction(t) => format!("vote>{}", fmt2(*t)),
            Aggregation::MeanProb(t) => format!("mean_prob>{}", fmt2(*t)),
            Aggregation::ConsecutivePositives(n) => format!("streak_{n}"),
        }
    }
}

/// Outcome of screening one user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserDecision {
    /// Flagged as at-risk?
    pub positive: bool,
    /// Day of the first post that completed the positive evidence (None when
    /// never flagged). Used for earliness scoring.
    pub decision_day: Option<u32>,
}

/// A user-level screener: a post-level detector + an aggregation rule.
///
/// The detector must already be prepared on a *post-level* dataset whose
/// task has the positive class at index `positive_class`.
pub struct UserScreener<'a> {
    detector: &'a dyn Detector,
    task: &'a Task,
    positive_class: usize,
    aggregation: Aggregation,
}

impl<'a> UserScreener<'a> {
    /// Create a screener.
    pub fn new(
        detector: &'a dyn Detector,
        task: &'a Task,
        positive_class: usize,
        aggregation: Aggregation,
    ) -> Self {
        assert!(positive_class < task.n_classes(), "positive class out of range");
        UserScreener { detector, task, positive_class, aggregation }
    }

    /// Screen one user over their whole timeline.
    pub fn screen(&self, user: &UserTimeline) -> UserDecision {
        let texts: Vec<&str> = user.posts.iter().map(|p| p.text.as_str()).collect();
        let ids: Vec<u64> = (0..texts.len() as u64)
            .map(|i| user.user_id.wrapping_mul(100_000) + i)
            .collect();
        let predictions = self.detector.detect(self.task, &texts, &ids);
        let positives: Vec<bool> =
            predictions.iter().map(|p| p.label == self.positive_class).collect();
        let probs: Vec<f64> = predictions
            .iter()
            .map(|p| if p.label == self.positive_class { p.confidence } else { 1.0 - p.confidence })
            .collect();
        match self.aggregation {
            Aggregation::VoteFraction(threshold) => {
                // Walk the timeline; flag at the first prefix whose positive
                // fraction exceeds the threshold with ≥3 posts seen.
                let mut n_pos = 0usize;
                for (i, &is_pos) in positives.iter().enumerate() {
                    if is_pos {
                        n_pos += 1;
                    }
                    let seen = i + 1;
                    if seen >= 3 && n_pos as f64 / seen as f64 > threshold {
                        return UserDecision { positive: true, decision_day: Some(user.posts[i].day) };
                    }
                }
                UserDecision { positive: false, decision_day: None }
            }
            Aggregation::MeanProb(threshold) => {
                let mut sum = 0.0;
                for (i, &p) in probs.iter().enumerate() {
                    sum += p;
                    let seen = (i + 1) as f64;
                    if i + 1 >= 3 && sum / seen > threshold {
                        return UserDecision { positive: true, decision_day: Some(user.posts[i].day) };
                    }
                }
                UserDecision { positive: false, decision_day: None }
            }
            Aggregation::ConsecutivePositives(n) => {
                let n = n.max(1);
                let mut streak = 0usize;
                for (i, &is_pos) in positives.iter().enumerate() {
                    streak = if is_pos { streak + 1 } else { 0 };
                    if streak >= n {
                        return UserDecision { positive: true, decision_day: Some(user.posts[i].day) };
                    }
                }
                UserDecision { positive: false, decision_day: None }
            }
        }
    }
}

/// Cohort-level screening results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningReport {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
    /// Mean detection delay in days after onset, over true positives
    /// flagged at-or-after onset.
    pub mean_delay_days: f64,
    /// Fraction of true positives flagged *before* onset was half-expressed
    /// (decision_day < onset + 14): the "early" detections.
    pub early_fraction: f64,
}

impl ScreeningReport {
    /// User-level F1 on the positive class.
    pub fn f1(&self) -> f64 {
        let p = self.tp as f64 / (self.tp + self.fp).max(1) as f64;
        let r = self.tp as f64 / (self.tp + self.fn_).max(1) as f64;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// User-level recall (sensitivity) — the screening metric that matters.
    pub fn recall(&self) -> f64 {
        self.tp as f64 / (self.tp + self.fn_).max(1) as f64
    }

    /// False-positive rate over controls.
    pub fn false_positive_rate(&self) -> f64 {
        self.fp as f64 / (self.fp + self.tn).max(1) as f64
    }
}

/// Screen a whole cohort and report.
pub fn screen_cohort(screener: &UserScreener<'_>, cohort: &[UserTimeline]) -> ScreeningReport {
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    let mut tn = 0;
    let mut delays = Vec::new();
    let mut early = 0usize;
    for user in cohort {
        let decision = screener.screen(user);
        match (user.is_positive(), decision.positive) {
            (true, true) => {
                tp += 1;
                // mhd-lint: allow(R6) — corpus invariant: is_positive() implies onset_day is Some (generator sets both)
                let onset = user.onset_day.expect("positive user has onset");
                if let Some(day) = decision.decision_day {
                    if day >= onset {
                        delays.push((day - onset) as f64);
                    }
                    if day < onset + 14 {
                        early += 1;
                    }
                }
            }
            (true, false) => fn_ += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
    }
    let mean_delay_days =
        if delays.is_empty() { f64::NAN } else { delays.iter().sum::<f64>() / delays.len() as f64 };
    let early_fraction = if tp == 0 { 0.0 } else { early as f64 / tp as f64 };
    ScreeningReport { tp, fp, fn_, tn, mean_delay_days, early_fraction }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{ClassifierDetector, ClassicalKind};
    use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};
    use mhd_corpus::longitudinal::{generate_cohort, TimelineConfig};

    /// Train a post-level detector on tsid-style control-vs-depression data
    /// reduced to binary.
    fn prepared_detector() -> (ClassifierDetector, mhd_corpus::dataset::Dataset) {
        // DepSign binary-ized: use sdcnl-like but we need control class →
        // use dreaddit? Condition is depression; train on a bespoke binary
        // dataset: depsign-s with 4 classes won't do. We use the swmh-s
        // depression/offmychest pair via a filtered dataset.
        let full = build_dataset(
            DatasetId::SwmhS,
            &BuildConfig { seed: 9, scale: 0.4, label_noise: Some(0.0) },
        );
        // Build a binary view: offmychest (control-ish, class 4) vs
        // depression (class 0).
        let mut binary = full.clone();
        binary.task = mhd_corpus::taxonomy::Task {
            name: "user_binary",
            description: "whether the poster shows signs of depression",
            labels: vec!["control", "depression"],
        };
        binary.examples = full
            .examples
            .iter()
            .filter(|e| e.label == 0 || e.label == 4)
            .map(|e| {
                let mut e = e.clone();
                e.label = if e.label == 0 { 1 } else { 0 };
                e.true_label = e.label;
                e
            })
            .collect();
        let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
        det.prepare(&binary);
        (det, binary)
    }

    fn cohort() -> Vec<mhd_corpus::longitudinal::UserTimeline> {
        generate_cohort(&TimelineConfig {
            n_positive: 12,
            n_control: 12,
            mean_posts: 16.0,
            ..Default::default()
        })
    }

    #[test]
    fn screening_separates_users() {
        let (det, ds) = prepared_detector();
        let screener = UserScreener::new(&det, &ds.task, 1, Aggregation::VoteFraction(0.4));
        let report = screen_cohort(&screener, &cohort());
        assert!(report.recall() > 0.6, "recall {} ({report:?})", report.recall());
        assert!(report.false_positive_rate() < 0.4, "fpr {} ({report:?})", report.false_positive_rate());
        assert!(report.f1() > 0.6, "f1 {}", report.f1());
    }

    #[test]
    fn streak_rule_suppresses_one_off_spikes() {
        let (det, ds) = prepared_detector();
        let loose = UserScreener::new(&det, &ds.task, 1, Aggregation::ConsecutivePositives(1));
        let strict = UserScreener::new(&det, &ds.task, 1, Aggregation::ConsecutivePositives(4));
        let c = cohort();
        let loose_report = screen_cohort(&loose, &c);
        let strict_report = screen_cohort(&strict, &c);
        assert!(
            strict_report.fp <= loose_report.fp,
            "longer streak must not raise FP: {} vs {}",
            strict_report.fp,
            loose_report.fp
        );
        assert!(strict_report.tp <= loose_report.tp, "…at some recall cost");
    }

    #[test]
    fn detection_happens_after_onset() {
        let (det, ds) = prepared_detector();
        let screener = UserScreener::new(&det, &ds.task, 1, Aggregation::VoteFraction(0.4));
        let report = screen_cohort(&screener, &cohort());
        if report.tp > 0 && !report.mean_delay_days.is_nan() {
            assert!(report.mean_delay_days >= 0.0);
            assert!(report.mean_delay_days < 60.0, "delay {}", report.mean_delay_days);
        }
    }

    #[test]
    fn aggregation_names() {
        assert_eq!(Aggregation::VoteFraction(0.5).name(), "vote>0.50");
        assert_eq!(Aggregation::MeanProb(0.6).name(), "mean_prob>0.60");
        assert_eq!(Aggregation::ConsecutivePositives(3).name(), "streak_3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_positive_class_rejected() {
        let (det, ds) = prepared_detector();
        UserScreener::new(&det, &ds.task, 9, Aggregation::MeanProb(0.5));
    }
}
