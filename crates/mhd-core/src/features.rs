//! Process-wide feature cache: each corpus and each TF-IDF fit happens
//! exactly once per process, no matter how many experiment cells need it.
//!
//! Two layers:
//!
//! 1. **Dataset cache** — keyed by `(DatasetId, seed, scale, label_noise)`.
//!    A full repro run asks for the same seven corpora in nearly every
//!    artifact; building them is pure, so the first requester builds and
//!    everyone else shares the [`Arc`].
//! 2. **TF-IDF cache** — keyed by a fingerprint of the training texts plus
//!    the [`TfidfConfig`]. LogReg and SVM both vectorize the train split
//!    with the default config; the first fit is reused, CSR train matrix
//!    included.
//!
//! Both layers use the map-of-cells pattern: a short-lived [`Mutex`] guards
//! only the key → [`OnceLock`] map, and the expensive build runs inside
//! `OnceLock::get_or_init` — concurrent requests for the *same* key block
//! until the single build finishes, while different keys build in parallel.
//! Hit/miss counters make the "vectorized at most once" guarantee testable.
//!
//! ## Byte budget
//!
//! By default the cache is unbounded (every table generator assumes shared
//! corpora stay resident for the whole run). Setting the `MHD_CACHE_BYTES`
//! environment variable — read once when the process-wide cache is first
//! touched — caps the *approximate* resident bytes of completed builds.
//! When an insert pushes the total over budget, the oldest completed
//! entries are evicted (insertion order) until the cache fits; the entry
//! just inserted is never evicted, so an oversized corpus stays resident
//! instead of rebuilding on every request. Entries still shared via `Arc`
//! stay alive until their last holder drops — eviction only stops the
//! cache from handing them out again.

use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd_corpus::dataset::Dataset;
use mhd_text::hashing::fnv1a;
use mhd_text::sparse::CsrMatrix;
use mhd_text::tfidf::{TfidfConfig, TfidfVectorizer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A TF-IDF vectorizer fitted on one training corpus, with the corpus
/// already transformed to CSR.
#[derive(Debug)]
pub struct FittedTfidf {
    /// The fitted vectorizer (shared by every model that uses this corpus).
    pub vectorizer: Arc<TfidfVectorizer>,
    /// The training split as a CSR matrix.
    pub train_matrix: CsrMatrix,
}

impl FittedTfidf {
    /// Approximate resident size in bytes (vectorizer + CSR train matrix),
    /// used by cache byte-budget accounting.
    pub fn approx_bytes(&self) -> usize {
        self.vectorizer.approx_bytes() + self.train_matrix.approx_bytes()
    }
}

/// Dataset-cache key: id, seed, scale bits, label-noise bits (or the
/// sentinel `u64::MAX` for `None` — an f64's bit pattern never equals it
/// for valid noise rates).
type DatasetKey = (DatasetId, u64, u64, u64);

/// Counter snapshot from [`FeatureCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Dataset requests served from cache.
    pub dataset_hits: usize,
    /// Dataset requests that triggered a build.
    pub dataset_misses: usize,
    /// TF-IDF requests served from cache.
    pub tfidf_hits: usize,
    /// TF-IDF requests that triggered a fit + transform.
    pub tfidf_misses: usize,
    /// Entries evicted to stay inside the byte budget (plus `clear` calls).
    pub evictions: usize,
    /// Approximate bytes of completed builds currently resident (tracked
    /// only when a byte budget is set; always 0 on unbounded caches).
    pub used_bytes: usize,
}

/// Budget-ledger key: which map an entry lives in, and under which key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKey {
    Dataset(DatasetKey),
    Tfidf(u64),
}

/// Completed builds in insertion order (oldest first) with their
/// approximate sizes, plus the running total.
#[derive(Default)]
struct Ledger {
    entries: VecDeque<(EntryKey, usize)>,
    used: usize,
}

/// The cache. Obtain the process-wide instance with
/// [`FeatureCache::global`], or construct a private one for tests.
#[derive(Default)]
pub struct FeatureCache {
    datasets: Mutex<HashMap<DatasetKey, Arc<OnceLock<Arc<Dataset>>>>>,
    tfidf: Mutex<HashMap<u64, Arc<OnceLock<Arc<FittedTfidf>>>>>,
    /// `None` = unbounded (the default).
    budget_bytes: Option<usize>,
    ledger: Mutex<Ledger>,
    dataset_hits: AtomicUsize,
    dataset_misses: AtomicUsize,
    tfidf_hits: AtomicUsize,
    tfidf_misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl FeatureCache {
    /// A fresh, empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh cache with an approximate byte budget (`None` = unbounded).
    pub fn with_budget(budget_bytes: Option<usize>) -> Self {
        FeatureCache { budget_bytes, ..Self::default() }
    }

    /// The process-wide cache shared by all experiment cells. Its byte
    /// budget comes from `MHD_CACHE_BYTES`, read exactly once here;
    /// unset/unparsable means unbounded (historical behavior).
    pub fn global() -> &'static FeatureCache {
        static CACHE: OnceLock<FeatureCache> = OnceLock::new();
        CACHE.get_or_init(|| {
            // mhd-lint: allow(R7) — budget only bounds cache residency; hits and recomputes yield identical vectors
            let budget = std::env::var("MHD_CACHE_BYTES").ok().and_then(|v| v.parse().ok());
            FeatureCache::with_budget(budget)
        })
    }

    /// Build-or-fetch a dataset. The build runs at most once per key.
    pub fn dataset(&self, id: DatasetId, cfg: &BuildConfig) -> Arc<Dataset> {
        let key: DatasetKey = (
            id,
            cfg.seed,
            cfg.scale.to_bits(),
            cfg.label_noise.map_or(u64::MAX, f64::to_bits),
        );
        let cell = {
            let mut map = self.datasets.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        };
        let mut built = false;
        let dataset = cell.get_or_init(|| {
            built = true;
            let _s = mhd_obs::span("dataset.build");
            Arc::new(build_dataset(id, cfg))
        });
        if built {
            self.dataset_misses.fetch_add(1, Ordering::Relaxed);
            mhd_obs::counter_add("feature_cache.dataset.miss", 1);
            self.record(EntryKey::Dataset(key), dataset.approx_bytes());
        } else {
            self.dataset_hits.fetch_add(1, Ordering::Relaxed);
            mhd_obs::counter_add("feature_cache.dataset.hit", 1);
        }
        Arc::clone(dataset)
    }

    /// Fit-or-fetch a TF-IDF vectorizer (plus CSR train matrix) for a
    /// training corpus. The fit runs at most once per (corpus, config).
    pub fn tfidf_for(&self, texts: &[&str], config: &TfidfConfig) -> Arc<FittedTfidf> {
        let key = tfidf_fingerprint(texts, config);
        let cell = {
            let mut map = self.tfidf.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key).or_default())
        };
        let mut built = false;
        let fitted = cell.get_or_init(|| {
            built = true;
            let _s = mhd_obs::span("tfidf.fit");
            let vectorizer = TfidfVectorizer::fit(texts, config.clone());
            let train_matrix = vectorizer.transform_csr(texts);
            Arc::new(FittedTfidf { vectorizer: Arc::new(vectorizer), train_matrix })
        });
        if built {
            self.tfidf_misses.fetch_add(1, Ordering::Relaxed);
            mhd_obs::counter_add("feature_cache.tfidf.miss", 1);
            self.record(EntryKey::Tfidf(key), fitted.approx_bytes());
        } else {
            self.tfidf_hits.fetch_add(1, Ordering::Relaxed);
            mhd_obs::counter_add("feature_cache.tfidf.hit", 1);
        }
        Arc::clone(fitted)
    }

    /// Account for a completed build and evict the oldest entries if the
    /// byte budget is exceeded. No-op on unbounded caches. The entry just
    /// recorded is never evicted: an over-budget singleton stays resident
    /// rather than rebuilding on every request.
    fn record(&self, key: EntryKey, bytes: usize) {
        let Some(budget) = self.budget_bytes else { return };
        let victims: Vec<EntryKey> = {
            let mut ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
            ledger.entries.push_back((key, bytes));
            ledger.used = ledger.used.saturating_add(bytes);
            let mut victims = Vec::new();
            while ledger.used > budget && ledger.entries.len() > 1 {
                if let Some((k, b)) = ledger.entries.pop_front() {
                    ledger.used = ledger.used.saturating_sub(b);
                    victims.push(k);
                }
            }
            victims
        };
        if victims.is_empty() {
            return;
        }
        for victim in &victims {
            match victim {
                EntryKey::Dataset(k) => {
                    let mut map = self.datasets.lock().unwrap_or_else(|e| e.into_inner());
                    map.remove(k);
                }
                EntryKey::Tfidf(k) => {
                    let mut map = self.tfidf.lock().unwrap_or_else(|e| e.into_inner());
                    map.remove(k);
                }
            }
        }
        self.evictions.fetch_add(victims.len(), Ordering::Relaxed);
        mhd_obs::counter_add("feature_cache.evictions", victims.len() as u64);
    }

    /// Evict every cached dataset and TF-IDF fit, keeping the hit/miss
    /// counters. Entries still shared via `Arc` elsewhere stay alive until
    /// their last holder drops; the cache just stops handing them out.
    pub fn clear(&self) {
        let evicted = {
            let mut datasets = self.datasets.lock().unwrap_or_else(|e| e.into_inner());
            let n = datasets.len();
            datasets.clear();
            n
        } + {
            let mut tfidf = self.tfidf.lock().unwrap_or_else(|e| e.into_inner());
            let n = tfidf.len();
            tfidf.clear();
            n
        };
        {
            let mut ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
            ledger.entries.clear();
            ledger.used = 0;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        mhd_obs::counter_add("feature_cache.evictions", evicted as u64);
    }

    /// Current hit/miss/eviction counters and resident-byte estimate.
    pub fn stats(&self) -> CacheStats {
        let used_bytes = {
            let ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
            ledger.used
        };
        CacheStats {
            dataset_hits: self.dataset_hits.load(Ordering::Relaxed),
            dataset_misses: self.dataset_misses.load(Ordering::Relaxed),
            tfidf_hits: self.tfidf_hits.load(Ordering::Relaxed),
            tfidf_misses: self.tfidf_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            used_bytes,
        }
    }
}

/// FNV-1a fingerprint of a training corpus + vectorizer configuration.
/// Text boundaries are length-prefixed so concatenation ambiguities cannot
/// collide.
fn tfidf_fingerprint(texts: &[&str], config: &TfidfConfig) -> u64 {
    let mut acc = fnv1a(
        format!(
            "tfidf|{}|{}|{}|{}|{}|{}",
            config.min_df,
            config.max_features,
            config.ngram_max,
            config.stem,
            config.remove_stopwords,
            config.sublinear_tf
        )
        .as_bytes(),
    );
    for t in texts {
        acc ^= fnv1a(&(t.len() as u64).to_le_bytes());
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        acc ^= fnv1a(t.as_bytes());
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXTS: [&str; 4] = [
        "i feel hopeless and empty",
        "great day at the beach",
        "cannot sleep, racing thoughts",
        "lovely dinner with family",
    ];

    #[test]
    fn tfidf_fit_happens_exactly_once() {
        let cache = FeatureCache::new();
        let a = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        let b = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        assert!(Arc::ptr_eq(&a, &b), "second request must share the first fit");
        let s = cache.stats();
        assert_eq!(s.tfidf_misses, 1, "corpus vectorized more than once");
        assert_eq!(s.tfidf_hits, 1);
    }

    #[test]
    fn tfidf_distinguishes_corpus_and_config() {
        let cache = FeatureCache::new();
        let base = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        let other_corpus = cache.tfidf_for(&TEXTS[..3], &TfidfConfig::default());
        let other_config =
            cache.tfidf_for(&TEXTS, &TfidfConfig { ngram_max: 1, ..TfidfConfig::default() });
        assert!(!Arc::ptr_eq(&base, &other_corpus));
        assert!(!Arc::ptr_eq(&base, &other_config));
        assert_eq!(cache.stats().tfidf_misses, 3);
    }

    #[test]
    fn cached_fit_equals_fresh_fit() {
        let cache = FeatureCache::new();
        let fitted = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        let fresh = TfidfVectorizer::fit(&TEXTS, TfidfConfig::default());
        for (i, t) in TEXTS.iter().enumerate() {
            assert_eq!(fitted.train_matrix.row_to_sparse(i), fresh.transform(t));
            assert_eq!(fitted.vectorizer.transform(t), fresh.transform(t));
        }
    }

    #[test]
    fn dataset_built_exactly_once_per_key() {
        let cache = FeatureCache::new();
        let cfg = BuildConfig { seed: 3, scale: 0.05, label_noise: None };
        let a = cache.dataset(DatasetId::DreadditS, &cfg);
        let b = cache.dataset(DatasetId::DreadditS, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let other = cache.dataset(DatasetId::DreadditS, &BuildConfig { seed: 4, ..cfg });
        assert!(!Arc::ptr_eq(&a, &other));
        let s = cache.stats();
        assert_eq!(s.dataset_misses, 2);
        assert_eq!(s.dataset_hits, 1);
    }

    #[test]
    fn clear_evicts_but_keeps_counters() {
        let cache = FeatureCache::new();
        let a = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        cache.clear();
        let b = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        assert!(!Arc::ptr_eq(&a, &b), "cleared cache must refit");
        let s = cache.stats();
        assert_eq!(s.tfidf_misses, 2);
        assert_eq!(s.tfidf_hits, 0);
    }

    #[test]
    fn byte_budget_evicts_oldest_insertion_first() {
        // Budget of 1 byte: any second insert pushes the total over budget
        // and evicts everything except the entry just inserted.
        let cache = FeatureCache::with_budget(Some(1));
        let a1 = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        assert_eq!(cache.stats().evictions, 0, "a lone over-budget entry stays resident");
        let a_again = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        assert!(Arc::ptr_eq(&a1, &a_again), "resident entry still served");
        let b1 = cache.tfidf_for(&TEXTS[..3], &TfidfConfig::default());
        assert_eq!(cache.stats().evictions, 1, "inserting B evicts the older A");
        let b2 = cache.tfidf_for(&TEXTS[..3], &TfidfConfig::default());
        assert!(Arc::ptr_eq(&b1, &b2), "newest entry survives the eviction");
        let a2 = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        assert!(!Arc::ptr_eq(&a1, &a2), "evicted entry must be rebuilt");
        let s = cache.stats();
        assert_eq!(s.tfidf_misses, 3, "A, B, then A again");
        assert_eq!(s.tfidf_hits, 2);
        assert_eq!(s.evictions, 2, "re-inserting A evicts B");
    }

    #[test]
    fn byte_budget_spans_datasets_and_tfidf() {
        // One ledger covers both layers: a dataset build can evict an older
        // TF-IDF fit.
        let cache = FeatureCache::with_budget(Some(1));
        let f1 = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        let cfg = BuildConfig { seed: 3, scale: 0.05, label_noise: None };
        let d1 = cache.dataset(DatasetId::DreadditS, &cfg);
        assert_eq!(cache.stats().evictions, 1, "dataset insert evicts the tfidf fit");
        let d2 = cache.dataset(DatasetId::DreadditS, &cfg);
        assert!(Arc::ptr_eq(&d1, &d2), "dataset (newest) stays resident");
        let f2 = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        assert!(!Arc::ptr_eq(&f1, &f2), "tfidf fit was evicted and refits");
    }

    #[test]
    fn generous_budget_keeps_everything() {
        let cache = FeatureCache::with_budget(Some(usize::MAX));
        let a = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        let b = cache.tfidf_for(&TEXTS[..3], &TfidfConfig::default());
        assert!(Arc::ptr_eq(&a, &cache.tfidf_for(&TEXTS, &TfidfConfig::default())));
        assert!(Arc::ptr_eq(&b, &cache.tfidf_for(&TEXTS[..3], &TfidfConfig::default())));
        let s = cache.stats();
        assert_eq!(s.evictions, 0);
        assert!(s.used_bytes > 0, "budgeted caches track resident bytes");
    }

    #[test]
    fn unbounded_cache_never_evicts_or_tracks() {
        let cache = FeatureCache::new();
        let _ = cache.tfidf_for(&TEXTS, &TfidfConfig::default());
        let _ = cache.tfidf_for(&TEXTS[..3], &TfidfConfig::default());
        let s = cache.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!(s.used_bytes, 0, "no budget, no bookkeeping");
    }

    #[test]
    fn concurrent_requests_share_one_build() {
        let cache = FeatureCache::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.tfidf_for(&TEXTS, &TfidfConfig::default())))
                .collect();
            let fitted: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for f in &fitted[1..] {
                assert!(Arc::ptr_eq(&fitted[0], f));
            }
        });
        assert_eq!(cache.stats().tfidf_misses, 1, "exactly one fit under contention");
    }
}
