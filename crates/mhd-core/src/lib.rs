#![forbid(unsafe_code)]
//! # mhd-core — the benchmark's public API
//!
//! Ties the substrate crates into the system a downstream user consumes:
//!
//! - [`detector`] — the [`detector::Detector`] trait unifying
//!   classical classifiers, the neural baseline, prompted LLMs and
//!   fine-tuned LLMs behind one interface;
//! - [`methods`] — the benchmark's method roster and detector factory;
//! - [`features`] — the process-wide dataset + TF-IDF feature cache
//!   (every corpus built and vectorized at most once per run);
//! - [`pipeline`] — run a detector over a dataset split and score it;
//! - [`experiments`] — one function per table/figure of the survey
//!   (T1–T6, F1–F5), each returning a renderable [`mhd_eval::Table`];
//! - [`report`] — assemble full benchmark reports;
//! - [`user_level`] — longitudinal user-level screening (CLPsych/eRisk
//!   style) with earliness metrics.
//!
//! ## Quickstart
//!
//! ```
//! use mhd_core::methods::{make_detector, MethodSpec, SharedClient};
//! use mhd_core::pipeline::evaluate;
//! use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};
//! use mhd_corpus::Split;
//! use mhd_prompts::Strategy;
//!
//! let cfg = BuildConfig { seed: 42, scale: 0.05, label_noise: None };
//! let dataset = build_dataset(DatasetId::SdcnlS, &cfg);
//! let client = SharedClient::new(1234);
//! let mut detector = make_detector(
//!     &MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
//!     &client,
//! );
//! let result = evaluate(detector.as_mut(), &dataset, Split::Test);
//! assert!(result.metrics.accuracy > 0.5);
//! ```

pub mod detector;
pub mod experiments;
pub mod experiments_ext;
pub mod features;
pub mod methods;
pub mod pipeline;
pub mod report;
pub mod user_level;

pub use detector::{Detector, Prediction};
pub use methods::{make_detector, MethodSpec, SharedClient};
pub use pipeline::{evaluate, try_evaluate, EvalResult, PipelineError};
