//! Run a detector over a dataset split and score it.

use crate::detector::Detector;
use mhd_corpus::dataset::{Dataset, Split};
use mhd_eval::metrics::Metrics;

/// Evaluation outcome for one (method, dataset, split) triple.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Gold labels in split order.
    pub gold: Vec<usize>,
    /// Predicted labels in split order.
    pub pred: Vec<usize>,
    /// Prediction confidences in split order.
    pub confidence: Vec<f64>,
    /// Number of unparseable LLM completions (fallback used).
    pub n_parse_failures: usize,
    /// Number of refusals.
    pub n_refusals: usize,
    /// Computed metrics.
    pub metrics: Metrics,
}

impl EvalResult {
    /// Parse-success rate.
    pub fn parse_rate(&self) -> f64 {
        if self.pred.is_empty() {
            return 1.0;
        }
        1.0 - self.n_parse_failures as f64 / self.pred.len() as f64
    }

    /// Per-example correctness flags (for McNemar and calibration).
    pub fn correct_flags(&self) -> Vec<bool> {
        self.gold.iter().zip(&self.pred).map(|(g, p)| g == p).collect()
    }
}

/// A malformed evaluation, reported instead of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The detector returned a different number of predictions than posts.
    PredictionCountMismatch {
        /// Offending method.
        method: String,
        /// Posts in the split.
        expected: usize,
        /// Predictions returned.
        got: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::PredictionCountMismatch { method, expected, got } => write!(
                f,
                "detector {method} must label every post: {expected} posts, {got} predictions"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Prepare the detector on the dataset and evaluate it on `split`.
///
/// Panics if the detector mislabels the split; use [`try_evaluate`] to
/// handle that as an error instead.
pub fn evaluate(detector: &mut dyn Detector, dataset: &Dataset, split: Split) -> EvalResult {
    // mhd-lint: allow(R2, R6) — documented panicking wrapper; the fallible form is try_evaluate
    try_evaluate(detector, dataset, split).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`evaluate`].
pub fn try_evaluate(
    detector: &mut dyn Detector,
    dataset: &Dataset,
    split: Split,
) -> Result<EvalResult, PipelineError> {
    {
        let _s = mhd_obs::span("prepare");
        detector.prepare(dataset);
    }
    try_evaluate_prepared(detector, dataset, split)
}

/// Evaluate an already-prepared detector (used when one preparation serves
/// several evaluations, e.g. the robustness table).
///
/// Panics if the detector mislabels the split; use
/// [`try_evaluate_prepared`] to handle that as an error instead.
pub fn evaluate_prepared(detector: &dyn Detector, dataset: &Dataset, split: Split) -> EvalResult {
    // mhd-lint: allow(R2, R6) — documented panicking wrapper; the fallible form is try_evaluate_prepared
    try_evaluate_prepared(detector, dataset, split).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`evaluate_prepared`].
pub fn try_evaluate_prepared(
    detector: &dyn Detector,
    dataset: &Dataset,
    split: Split,
) -> Result<EvalResult, PipelineError> {
    let _s = mhd_obs::span("detect");
    let examples = dataset.split(split);
    let texts: Vec<&str> = examples.iter().map(|e| e.text.as_str()).collect();
    let ids: Vec<u64> = examples.iter().map(|e| e.id).collect();
    let gold: Vec<usize> = examples.iter().map(|e| e.label).collect();
    let predictions = detector.detect(&dataset.task, &texts, &ids);
    if predictions.len() != texts.len() {
        return Err(PipelineError::PredictionCountMismatch {
            method: detector.name(),
            expected: texts.len(),
            got: predictions.len(),
        });
    }
    let pred: Vec<usize> = predictions.iter().map(|p| p.label).collect();
    let confidence: Vec<f64> = predictions.iter().map(|p| p.confidence).collect();
    let n_parse_failures = predictions.iter().filter(|p| p.parse_failed).count();
    let n_refusals = predictions.iter().filter(|p| p.refused).count();
    let metrics = Metrics::compute(&gold, &pred, dataset.task.n_classes());
    Ok(EvalResult {
        method: detector.name(),
        dataset: dataset.name.to_string(),
        gold,
        pred,
        confidence,
        n_parse_failures,
        n_refusals,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{ClassifierDetector, ClassicalKind};
    use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};

    fn tiny() -> Dataset {
        build_dataset(DatasetId::DreadditS, &BuildConfig { seed: 9, scale: 0.08, label_noise: Some(0.0) })
    }

    #[test]
    fn evaluate_produces_aligned_outputs() {
        let d = tiny();
        let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
        let r = evaluate(&mut det, &d, Split::Test);
        assert_eq!(r.gold.len(), d.split_len(Split::Test));
        assert_eq!(r.gold.len(), r.pred.len());
        assert_eq!(r.gold.len(), r.confidence.len());
        assert_eq!(r.method, "logreg_tfidf");
        assert_eq!(r.dataset, "dreaddit-s");
        assert_eq!(r.n_parse_failures, 0);
        assert_eq!(r.parse_rate(), 1.0);
    }

    #[test]
    fn trained_model_beats_chance_on_clean_data() {
        let d = tiny();
        let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
        let r = evaluate(&mut det, &d, Split::Test);
        assert!(r.metrics.accuracy > 0.7, "accuracy {}", r.metrics.accuracy);
    }

    #[test]
    fn short_prediction_vector_is_an_error_not_a_panic() {
        use crate::detector::Prediction;
        use mhd_corpus::taxonomy::Task;

        struct DropsLast;
        impl Detector for DropsLast {
            fn name(&self) -> String {
                "drops_last".into()
            }
            fn prepare(&mut self, _dataset: &Dataset) {}
            fn detect(&self, _task: &Task, texts: &[&str], _ids: &[u64]) -> Vec<Prediction> {
                texts.iter().skip(1).map(|_| Prediction::new(0, 1.0)).collect()
            }
        }

        let d = tiny();
        let err = try_evaluate(&mut DropsLast, &d, Split::Test).unwrap_err();
        let expected = d.split_len(Split::Test);
        assert_eq!(
            err,
            PipelineError::PredictionCountMismatch {
                method: "drops_last".into(),
                expected,
                got: expected - 1,
            }
        );
        assert!(err.to_string().contains("drops_last"));
    }

    #[test]
    fn correct_flags_align() {
        let d = tiny();
        let mut det = ClassifierDetector::new(ClassicalKind::Majority);
        let r = evaluate(&mut det, &d, Split::Test);
        let flags = r.correct_flags();
        let acc = flags.iter().filter(|&&b| b).count() as f64 / flags.len() as f64;
        assert!((acc - r.metrics.accuracy).abs() < 1e-12);
    }
}
