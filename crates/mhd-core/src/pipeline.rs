//! Run a detector over a dataset split and score it.

use crate::detector::Detector;
use mhd_corpus::dataset::{Dataset, Split};
use mhd_eval::metrics::Metrics;

/// Evaluation outcome for one (method, dataset, split) triple.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Gold labels in split order.
    pub gold: Vec<usize>,
    /// Predicted labels in split order.
    pub pred: Vec<usize>,
    /// Prediction confidences in split order.
    pub confidence: Vec<f64>,
    /// Number of unparseable LLM completions (fallback used).
    pub n_parse_failures: usize,
    /// Number of refusals.
    pub n_refusals: usize,
    /// Computed metrics.
    pub metrics: Metrics,
}

impl EvalResult {
    /// Parse-success rate.
    pub fn parse_rate(&self) -> f64 {
        if self.pred.is_empty() {
            return 1.0;
        }
        1.0 - self.n_parse_failures as f64 / self.pred.len() as f64
    }

    /// Per-example correctness flags (for McNemar and calibration).
    pub fn correct_flags(&self) -> Vec<bool> {
        self.gold.iter().zip(&self.pred).map(|(g, p)| g == p).collect()
    }
}

/// Prepare the detector on the dataset and evaluate it on `split`.
pub fn evaluate(detector: &mut dyn Detector, dataset: &Dataset, split: Split) -> EvalResult {
    detector.prepare(dataset);
    evaluate_prepared(detector, dataset, split)
}

/// Evaluate an already-prepared detector (used when one preparation serves
/// several evaluations, e.g. the robustness table).
pub fn evaluate_prepared(detector: &dyn Detector, dataset: &Dataset, split: Split) -> EvalResult {
    let examples = dataset.split(split);
    let texts: Vec<&str> = examples.iter().map(|e| e.text.as_str()).collect();
    let ids: Vec<u64> = examples.iter().map(|e| e.id).collect();
    let gold: Vec<usize> = examples.iter().map(|e| e.label).collect();
    let predictions = detector.detect(&dataset.task, &texts, &ids);
    assert_eq!(predictions.len(), texts.len(), "detector must label every post");
    let pred: Vec<usize> = predictions.iter().map(|p| p.label).collect();
    let confidence: Vec<f64> = predictions.iter().map(|p| p.confidence).collect();
    let n_parse_failures = predictions.iter().filter(|p| p.parse_failed).count();
    let n_refusals = predictions.iter().filter(|p| p.refused).count();
    let metrics = Metrics::compute(&gold, &pred, dataset.task.n_classes());
    EvalResult {
        method: detector.name(),
        dataset: dataset.name.to_string(),
        gold,
        pred,
        confidence,
        n_parse_failures,
        n_refusals,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{ClassifierDetector, ClassicalKind};
    use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};

    fn tiny() -> Dataset {
        build_dataset(DatasetId::DreadditS, &BuildConfig { seed: 9, scale: 0.08, label_noise: Some(0.0) })
    }

    #[test]
    fn evaluate_produces_aligned_outputs() {
        let d = tiny();
        let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
        let r = evaluate(&mut det, &d, Split::Test);
        assert_eq!(r.gold.len(), d.split_len(Split::Test));
        assert_eq!(r.gold.len(), r.pred.len());
        assert_eq!(r.gold.len(), r.confidence.len());
        assert_eq!(r.method, "logreg_tfidf");
        assert_eq!(r.dataset, "dreaddit-s");
        assert_eq!(r.n_parse_failures, 0);
        assert_eq!(r.parse_rate(), 1.0);
    }

    #[test]
    fn trained_model_beats_chance_on_clean_data() {
        let d = tiny();
        let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
        let r = evaluate(&mut det, &d, Split::Test);
        assert!(r.metrics.accuracy > 0.7, "accuracy {}", r.metrics.accuracy);
    }

    #[test]
    fn correct_flags_align() {
        let d = tiny();
        let mut det = ClassifierDetector::new(ClassicalKind::Majority);
        let r = evaluate(&mut det, &d, Split::Test);
        let flags = r.correct_flags();
        let acc = flags.iter().filter(|&&b| b).count() as f64 / flags.len() as f64;
        assert!((acc - r.metrics.accuracy).abs() < 1e-12);
    }
}
