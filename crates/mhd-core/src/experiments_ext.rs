//! Extension experiments (appendix A-series).
//!
//! Ablations of the design choices DESIGN.md calls out, beyond the paper's
//! main tables:
//!
//! - **A1** — few-shot demonstration-selector ablation
//!   (random vs stratified vs similarity retrieval);
//! - **A2** — McNemar significance tests between the headline method pairs;
//! - **A3** — label-noise sensitivity: trained baselines degrade twice
//!   (corrupted training *and* evaluation), zero-shot LLMs only once;
//! - **A4** — sampling-temperature sensitivity: accuracy and parse rate
//!   erode as temperature rises;
//! - **A5** — user-level screening: aggregation-rule comparison on a
//!   longitudinal cohort with earliness metrics;
//! - **A6** — dense scaling-law sweep over synthetic 1B–700B models.

use crate::detector::Detector;
use crate::experiments::ExperimentConfig;
use crate::methods::{
    make_detector_with, ClassicalKind, ClassifierDetector, MethodSpec, PromptDetector,
    SharedClient,
};
use crate::pipeline::{evaluate, evaluate_prepared};
use crate::user_level::{screen_cohort, Aggregation, UserScreener};
use mhd_corpus::builders::{build_dataset, BuildConfig, DatasetId};
use mhd_corpus::dataset::Split;
use mhd_corpus::longitudinal::{generate_cohort, TimelineConfig};
use mhd_corpus::taxonomy::Task;
use mhd_eval::mcnemar::mcnemar;
use mhd_eval::table::{fmt1, fmt3, fmt_pct, Table};
use mhd_prompts::select::SelectorKind;
use mhd_prompts::template::Strategy;
use rayon::prelude::*;

/// **A1** — demonstration-selector ablation at k = 8.
pub fn a1_selector_ablation(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "A1: Few-shot demonstration-selector ablation (k=8, sim-gpt-3.5)",
        &["selector", "dataset", "accuracy", "weighted_f1"],
    );
    let mut cells = Vec::new();
    for id in [DatasetId::SdcnlS, DatasetId::SwmhS, DatasetId::SadS] {
        let dataset = cfg.dataset(id);
        for kind in SelectorKind::ALL {
            cells.push((dataset.clone(), kind));
        }
    }
    let rows: Vec<Vec<String>> = cells
        .par_iter()
        .map(|(dataset, kind)| {
            let mut det = Box::new(PromptDetector::new(
                client.clone(),
                "sim-gpt-3.5".into(),
                Strategy::FewShot(8),
                *kind,
            ));
            let r = evaluate(det.as_mut(), dataset, Split::Test);
            vec![
                kind.name().to_string(),
                r.dataset.clone(),
                fmt3(r.metrics.accuracy),
                fmt3(r.metrics.weighted_f1),
            ]
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// **A2** — McNemar significance tests between headline method pairs.
pub fn a2_significance(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "A2: McNemar paired significance (dreaddit-s test split)",
        &["method_a", "method_b", "a_only_correct", "b_only_correct", "chi2", "p_value", "sig@0.05"],
    );
    let dataset = cfg.dataset(DatasetId::DreadditS);
    let specs = [
        MethodSpec::Classical(ClassicalKind::LogReg),
        MethodSpec::Classical(ClassicalKind::BertMini),
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
        MethodSpec::Llm { model: "sim-llama-7b".into(), strategy: Strategy::ZeroShot },
        MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: None },
    ];
    let results: Vec<_> = specs
        .par_iter()
        .map(|s| {
            let mut det = make_detector_with(s, &client, cfg.precision);
            evaluate(det.as_mut(), &dataset, Split::Test)
        })
        .collect();
    let pairs = [(0, 2), (1, 2), (2, 3), (4, 3), (0, 4)];
    for (a, b) in pairs {
        let ra = &results[a];
        let rb = &results[b];
        let m = mcnemar(&ra.gold, &ra.pred, &rb.pred);
        t.push_row(vec![
            ra.method.clone(),
            rb.method.clone(),
            m.b.to_string(),
            m.c.to_string(),
            fmt3(m.statistic),
            fmt3(m.p_value),
            if m.significant(0.05) { "yes".into() } else { "no".into() },
        ]);
    }
    t
}

/// Label-noise levels swept by A3.
pub const NOISE_LEVELS: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

/// **A3** — label-noise sensitivity. Trained methods see the noise twice
/// (train + eval); zero-shot LLMs only through the evaluation ceiling.
pub fn a3_label_noise(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "A3: Label-noise sensitivity (dreaddit-s, weighted F1)",
        &["noise", "logreg_tfidf", "naive_bayes", "sim-gpt-4/zero_shot"],
    );
    let rows: Vec<Vec<String>> = NOISE_LEVELS
        .par_iter()
        .map(|&noise| {
            let dataset = build_dataset(
                DatasetId::DreadditS,
                &BuildConfig { seed: cfg.seed, scale: cfg.scale, label_noise: Some(noise) },
            );
            let mut row = vec![fmt_pct(noise)];
            for spec in [
                MethodSpec::Classical(ClassicalKind::LogReg),
                MethodSpec::Classical(ClassicalKind::NaiveBayes),
                MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
            ] {
                let mut det = make_detector_with(&spec, &client, cfg.precision);
                let r = evaluate(det.as_mut(), &dataset, Split::Test);
                row.push(fmt3(r.metrics.weighted_f1));
            }
            row
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Temperatures swept by A4.
pub const TEMPERATURES: [f64; 5] = [0.0, 0.3, 0.7, 1.2, 2.0];

/// **A4** — sampling-temperature sensitivity for sim-gpt-3.5.
pub fn a4_temperature(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let dataset = cfg.dataset(DatasetId::SdcnlS);
    let mut t = Table::new(
        "A4: Temperature sensitivity (sim-gpt-3.5, sdcnl-s)",
        &["temperature", "accuracy", "weighted_f1", "parse_rate"],
    );
    let rows: Vec<Vec<String>> = TEMPERATURES
        .par_iter()
        .map(|&temp| {
            let mut det = PromptDetector::new(
                client.clone(),
                "sim-gpt-3.5".into(),
                Strategy::ZeroShot,
                SelectorKind::Stratified,
            )
            .with_temperature(temp);
            det.prepare(&dataset);
            let r = evaluate_prepared(&det, &dataset, Split::Test);
            vec![
                fmt1(temp),
                fmt3(r.metrics.accuracy),
                fmt3(r.metrics.weighted_f1),
                fmt_pct(r.parse_rate()),
            ]
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// **A5** — user-level screening with different aggregation rules.
pub fn a5_user_level(cfg: &ExperimentConfig) -> Table {
    // Post-level detector: logreg on a binary depression-vs-control view of
    // swmh-s (depression = class 0, offmychest = class 4).
    let full = build_dataset(
        DatasetId::SwmhS,
        &BuildConfig { seed: cfg.seed, scale: cfg.scale.max(0.2), label_noise: Some(0.0) },
    );
    let mut binary = full.clone();
    binary.task = Task {
        name: "user_binary",
        description: "whether the poster shows signs of depression",
        labels: vec!["control", "depression"],
    };
    binary.examples = full
        .examples
        .iter()
        .filter(|e| e.label == 0 || e.label == 4)
        .map(|e| {
            let mut e = e.clone();
            e.label = usize::from(e.label == 0);
            e.true_label = e.label;
            e
        })
        .collect();
    let mut det = ClassifierDetector::new(ClassicalKind::LogReg);
    det.prepare(&binary);
    let cohort = generate_cohort(&TimelineConfig {
        n_positive: (40.0 * cfg.scale.max(0.2)) as usize,
        n_control: (60.0 * cfg.scale.max(0.2)) as usize,
        seed: cfg.seed,
        ..Default::default()
    });
    let mut t = Table::new(
        "A5: User-level screening (logreg post model, depression cohort)",
        &["aggregation", "recall", "fpr", "f1", "mean_delay_days", "early_fraction"],
    );
    for agg in [
        Aggregation::VoteFraction(0.3),
        Aggregation::VoteFraction(0.5),
        Aggregation::MeanProb(0.5),
        Aggregation::ConsecutivePositives(2),
        Aggregation::ConsecutivePositives(4),
    ] {
        let screener = UserScreener::new(&det, &binary.task, 1, agg);
        let report = screen_cohort(&screener, &cohort);
        t.push_row(vec![
            agg.name(),
            fmt3(report.recall()),
            fmt3(report.false_positive_rate()),
            fmt3(report.f1()),
            if report.mean_delay_days.is_nan() {
                "-".into()
            } else {
                fmt1(report.mean_delay_days)
            },
            fmt3(report.early_fraction),
        ]);
    }
    t
}

/// Parameter counts (billions) swept by A6.
pub const SWEEP_PARAMS: [f64; 7] = [1.0, 3.0, 7.0, 20.0, 70.0, 200.0, 700.0];

/// **A6** — dense scaling-law sweep: register synthetic models along the
/// parameter axis and measure zero-shot weighted F1, exposing the smooth
/// emergent curve the coarse built-in ladder (F1) samples.
pub fn a6_scaling_sweep(cfg: &ExperimentConfig) -> Table {
    use mhd_llm::zoo::{ModelFamily, ModelSpec};
    let client = SharedClient::new(cfg.pretrain_seed);
    // Register the sweep points, keeping each point's capability so workers
    // never need a fallible zoo lookup. The client is freshly constructed
    // and sweep names don't collide with the built-in zoo, so a duplicate-
    // name error cannot occur; if one ever did, the pre-registered spec is
    // identical and evaluation is unaffected.
    let points: Vec<(f64, f64)> = SWEEP_PARAMS
        .iter()
        .map(|&p| {
            let spec = ModelSpec::synthetic(format!("sweep-{p}b"), p, ModelFamily::OpenChat);
            let capability = spec.capability();
            let _ = client.register_model(spec);
            (p, capability)
        })
        .collect();
    let mut t = Table::new(
        "A6: Dense scaling-law sweep (zero-shot weighted F1)",
        &["params_b", "capability", "dreaddit-s", "swmh-s"],
    );
    // All sweep models are registered above, before any parallel eval, so
    // workers only read the zoo.
    let d1 = cfg.dataset(DatasetId::DreadditS);
    let d2 = cfg.dataset(DatasetId::SwmhS);
    let rows: Vec<Vec<String>> = points
        .par_iter()
        .map(|&(p, capability)| {
            let name = format!("sweep-{p}b");
            let mut row = vec![format!("{p}"), fmt3(capability)];
            for d in [&d1, &d2] {
                let spec = MethodSpec::Llm { model: name.clone(), strategy: Strategy::ZeroShot };
                let mut det = make_detector_with(&spec, &client, cfg.precision);
                let r = evaluate(det.as_mut(), d, Split::Test);
                row.push(fmt3(r.metrics.weighted_f1));
            }
            row
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// **A7** — ordinal evaluation of the graded tasks: plain accuracy hides
/// how *far* wrong a grade prediction is; MAE and quadratic weighted kappa
/// expose it.
pub fn a7_ordinal(cfg: &ExperimentConfig) -> Table {
    use mhd_eval::ordinal::{ordinal_mae, quadratic_weighted_kappa};
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "A7: Ordinal metrics on graded tasks",
        &["method", "dataset", "accuracy", "mae", "qwk"],
    );
    let mut cells = Vec::new();
    for id in [DatasetId::DepSignS, DatasetId::CssrsS] {
        let dataset = cfg.dataset(id);
        for spec in [
            MethodSpec::Classical(ClassicalKind::Majority),
            MethodSpec::Classical(ClassicalKind::LogReg),
            MethodSpec::Classical(ClassicalKind::NaiveBayes),
            MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
            MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: None },
        ] {
            cells.push((dataset.clone(), spec));
        }
    }
    let rows: Vec<Vec<String>> = cells
        .par_iter()
        .map(|(dataset, spec)| {
            let mut det = make_detector_with(spec, &client, cfg.precision);
            let r = evaluate(det.as_mut(), dataset, Split::Test);
            vec![
                r.method.clone(),
                r.dataset.clone(),
                fmt3(r.metrics.accuracy),
                fmt3(ordinal_mae(&r.gold, &r.pred)),
                fmt3(quadratic_weighted_kappa(&r.gold, &r.pred, dataset.task.n_classes())),
            ]
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// **A8** — rationale faithfulness: when a model is asked to reason first
/// (CoT), do the evidence words it cites actually (a) occur in the post and
/// (b) belong to lexicon categories consistent with its *answer*? The
/// interpretability-evaluation axis of the MentaLLaMA line.
pub fn a8_rationale_quality(cfg: &ExperimentConfig) -> Table {
    use mhd_llm::client::ChatRequest;
    use mhd_prompts::template::build_prompt;
    use mhd_text::lexicon::Lexicon;
    use mhd_text::tokenize::words;

    let client = SharedClient::new(cfg.pretrain_seed);
    let lexicon = Lexicon::standard();
    let dataset = cfg.dataset(DatasetId::SdcnlS);
    let test = dataset.split(Split::Test);
    let mut t = Table::new(
        "A8: CoT rationale quality (sdcnl-s)",
        &["model", "rationale_rate", "grounded_rate", "mean_cited_words"],
    );
    let models = ["sim-llama-7b", "sim-gpt-4"];
    let rows: Vec<Vec<String>> = models
        .par_iter()
        .map(|model| {
        let mut with_rationale = 0usize;
        let mut grounded = 0usize;
        let mut cited_total = 0usize;
        let mut cited_in_post = 0usize;
        for e in &test {
            let prompt = build_prompt(&dataset.task, Strategy::ZeroShotCot, &e.text, &[]);
            let req =
                ChatRequest { model: (*model).into(), prompt, temperature: 0.0, seed: e.id };
            let Ok(resp) = client.complete(&req) else { continue };
            let cited = extract_cited_words(&resp.text);
            if cited.is_empty() {
                continue;
            }
            with_rationale += 1;
            cited_total += cited.len();
            let post_words = words(&e.text);
            let all_in_post = cited.iter().all(|w| post_words.contains(w));
            cited_in_post += cited.iter().filter(|w| post_words.contains(*w)).count();
            // Grounded: every cited word appears in the post and at least
            // one carries lexicon signal.
            let any_signal = cited.iter().any(|w| !lexicon.categories(w).is_empty());
            if all_in_post && any_signal {
                grounded += 1;
            }
        }
        let n = test.len().max(1) as f64;
        let _ = cited_in_post;
        vec![
            model.to_string(),
            fmt3(with_rationale as f64 / n),
            fmt3(if with_rationale == 0 { 0.0 } else { grounded as f64 / with_rationale as f64 }),
            fmt1(if with_rationale == 0 { 0.0 } else { cited_total as f64 / with_rationale as f64 }),
        ]
        })
        .collect();
    for row in rows {
        t.push_row(row);
    }
    t
}

/// Seeds used by the A9 variance study.
pub const VARIANCE_SEEDS: [u64; 3] = [42, 7, 2024];

/// **A9** — seed variance: mean ± spread of weighted F1 over independent
/// dataset-generation seeds, for one method per family. The "we report the
/// mean over three runs" hygiene every benchmark paper owes its readers.
pub fn a9_seed_variance(cfg: &ExperimentConfig) -> Table {
    let client = SharedClient::new(cfg.pretrain_seed);
    let mut t = Table::new(
        "A9: Weighted-F1 variance over dataset seeds (dreaddit-s)",
        &["method", "mean", "min", "max", "spread"],
    );
    let specs = [
        MethodSpec::Classical(ClassicalKind::LogReg),
        MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot },
        MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: None },
    ];
    // Cells = spec × seed so the 9 evaluations spread over the pool; the
    // per-seed datasets are rebuilt per cell exactly as the serial loop did.
    let cells: Vec<(usize, u64)> = (0..specs.len())
        .flat_map(|si| VARIANCE_SEEDS.iter().map(move |&seed| (si, seed)))
        .collect();
    let scores: Vec<f64> = cells
        .par_iter()
        .map(|&(si, seed)| {
            let dataset = build_dataset(
                DatasetId::DreadditS,
                &BuildConfig { seed, scale: cfg.scale, label_noise: None },
            );
            let mut det = make_detector_with(&specs[si], &client, cfg.precision);
            let r = evaluate(det.as_mut(), &dataset, Split::Test);
            r.metrics.weighted_f1
        })
        .collect();
    for (si, spec) in specs.iter().enumerate() {
        let s = &scores[si * VARIANCE_SEEDS.len()..(si + 1) * VARIANCE_SEEDS.len()];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        t.push_row(vec![
            spec.name(),
            fmt3(mean),
            fmt3(min),
            fmt3(max),
            fmt3(max - min),
        ]);
    }
    t
}

/// Pull the quoted evidence words out of a CoT completion
/// (`Reasoning: the post mentions "w1", "w2"…`).
fn extract_cited_words(completion: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = completion;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        let word = &after[..end];
        if !word.is_empty() && word.len() < 24 && !word.contains(' ') {
            out.push(word.to_lowercase());
        }
        rest = &after[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig { seed: 42, scale: 0.08, pretrain_seed: 1234, ..Default::default() }
    }

    #[test]
    fn a1_covers_selectors() {
        let t = a1_selector_ablation(&tiny());
        assert_eq!(t.n_rows(), 3 * 3);
        assert!(t.to_csv().contains("similarity"));
    }

    #[test]
    fn a2_has_pairs_and_valid_pvalues() {
        let t = a2_significance(&tiny());
        assert_eq!(t.n_rows(), 5);
        for row in t.rows() {
            let p: f64 = row[5].parse().expect("p-value number");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn a3_sweeps_noise() {
        let t = a3_label_noise(&tiny());
        assert_eq!(t.n_rows(), NOISE_LEVELS.len());
        // Performance at 30% noise must be below performance at 0% for the
        // trained baseline (column 1 = logreg).
        let first: f64 = t.rows()[0][1].parse().expect("number");
        let last: f64 = t.rows()[NOISE_LEVELS.len() - 1][1].parse().expect("number");
        assert!(last < first, "label noise must hurt trained models: {first} -> {last}");
    }

    #[test]
    fn a4_temperature_erodes_parse_rate() {
        let t = a4_temperature(&tiny());
        assert_eq!(t.n_rows(), TEMPERATURES.len());
        let parse_at = |i: usize| -> f64 {
            t.rows()[i][3].trim_end_matches('%').parse().expect("pct")
        };
        assert!(parse_at(TEMPERATURES.len() - 1) <= parse_at(0));
    }

    #[test]
    fn a6_sweep_monotone_capability() {
        let t = a6_scaling_sweep(&tiny());
        assert_eq!(t.n_rows(), SWEEP_PARAMS.len());
        let caps: Vec<f64> =
            t.rows().iter().map(|r| r[1].parse().expect("number")).collect();
        for w in caps.windows(2) {
            assert!(w[0] < w[1], "capability must rise with scale: {caps:?}");
        }
    }

    #[test]
    fn a7_ordinal_metrics_sane() {
        let t = a7_ordinal(&tiny());
        assert_eq!(t.n_rows(), 2 * 5);
        for row in t.rows() {
            let mae: f64 = row[3].parse().expect("mae");
            let qwk: f64 = row[4].parse().expect("qwk");
            assert!(mae >= 0.0);
            assert!((-1.0..=1.0).contains(&qwk));
        }
    }

    #[test]
    fn a8_extracts_rationales() {
        let t = a8_rationale_quality(&tiny());
        assert_eq!(t.n_rows(), 2);
        for row in t.rows() {
            let rate: f64 = row[1].parse().expect("rate");
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn cited_word_extraction() {
        let cited = extract_cited_words(
            "Reasoning: the post mentions \"hopeless\", \"empty\", consistent. Answer: x",
        );
        assert_eq!(cited, vec!["hopeless", "empty"]);
        assert!(extract_cited_words("no quotes here").is_empty());
    }

    #[test]
    fn a9_variance_bounds_sane() {
        let t = a9_seed_variance(&tiny());
        assert_eq!(t.n_rows(), 3);
        for row in t.rows() {
            let mean: f64 = row[1].parse().expect("mean");
            let min: f64 = row[2].parse().expect("min");
            let max: f64 = row[3].parse().expect("max");
            assert!(min <= mean && mean <= max, "{row:?}");
        }
    }

    #[test]
    fn a5_reports_all_aggregations() {
        let t = a5_user_level(&tiny());
        assert_eq!(t.n_rows(), 5);
        assert!(t.to_csv().contains("streak_4"));
    }
}
