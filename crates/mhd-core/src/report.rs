//! Assemble full benchmark reports.

use crate::experiments::{
    f1_scale_curve, f2_fewshot_sweep, f3_calibration, f4_confusion, f5_finetune_curve,
    t1_dataset_stats, t2_main_results, t3_prompting, t4_finetune, t5_robustness, t6_cost,
    ExperimentConfig,
};
use crate::experiments_ext::{
    a1_selector_ablation, a2_significance, a3_label_noise, a4_temperature, a5_user_level,
    a6_scaling_sweep, a7_ordinal, a8_rationale_quality, a9_seed_variance,
};
use mhd_eval::table::Table;
use rayon::prelude::*;

/// Identifier of a reproducible artifact (table or figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// Dataset statistics.
    T1,
    /// Main results.
    T2,
    /// Prompting ablation.
    T3,
    /// Fine-tuning study.
    T4,
    /// Robustness.
    T5,
    /// Cost/efficiency.
    T6,
    /// Scale curve.
    F1,
    /// Few-shot sweep.
    F2,
    /// Calibration.
    F3,
    /// Confusion matrix.
    F4,
    /// Fine-tune learning curve.
    F5,
    /// Appendix: demonstration-selector ablation.
    A1,
    /// Appendix: McNemar significance tests.
    A2,
    /// Appendix: label-noise sensitivity.
    A3,
    /// Appendix: temperature sensitivity.
    A4,
    /// Appendix: user-level screening.
    A5,
    /// Appendix: dense scaling-law sweep.
    A6,
    /// Appendix: ordinal metrics on graded tasks.
    A7,
    /// Appendix: CoT rationale quality.
    A8,
    /// Appendix: seed variance.
    A9,
}

impl Artifact {
    /// All artifacts in report order.
    pub const ALL: [Artifact; 20] = [
        Artifact::T1,
        Artifact::T2,
        Artifact::T3,
        Artifact::T4,
        Artifact::T5,
        Artifact::T6,
        Artifact::F1,
        Artifact::F2,
        Artifact::F3,
        Artifact::F4,
        Artifact::F5,
        Artifact::A1,
        Artifact::A2,
        Artifact::A3,
        Artifact::A4,
        Artifact::A5,
        Artifact::A6,
        Artifact::A7,
        Artifact::A8,
        Artifact::A9,
    ];

    /// Parse "t1"…"f5" (case-insensitive).
    pub fn from_name(name: &str) -> Option<Artifact> {
        Some(match name.to_lowercase().as_str() {
            "t1" => Artifact::T1,
            "t2" => Artifact::T2,
            "t3" => Artifact::T3,
            "t4" => Artifact::T4,
            "t5" => Artifact::T5,
            "t6" => Artifact::T6,
            "f1" => Artifact::F1,
            "f2" => Artifact::F2,
            "f3" => Artifact::F3,
            "f4" => Artifact::F4,
            "f5" => Artifact::F5,
            "a1" => Artifact::A1,
            "a2" => Artifact::A2,
            "a3" => Artifact::A3,
            "a4" => Artifact::A4,
            "a5" => Artifact::A5,
            "a6" => Artifact::A6,
            "a7" => Artifact::A7,
            "a8" => Artifact::A8,
            "a9" => Artifact::A9,
            _ => return None,
        })
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::T1 => "t1",
            Artifact::T2 => "t2",
            Artifact::T3 => "t3",
            Artifact::T4 => "t4",
            Artifact::T5 => "t5",
            Artifact::T6 => "t6",
            Artifact::F1 => "f1",
            Artifact::F2 => "f2",
            Artifact::F3 => "f3",
            Artifact::F4 => "f4",
            Artifact::F5 => "f5",
            Artifact::A1 => "a1",
            Artifact::A2 => "a2",
            Artifact::A3 => "a3",
            Artifact::A4 => "a4",
            Artifact::A5 => "a5",
            Artifact::A6 => "a6",
            Artifact::A7 => "a7",
            Artifact::A8 => "a8",
            Artifact::A9 => "a9",
        }
    }

    /// Generate the artifact's table, under a span named after it.
    pub fn generate(self, cfg: &ExperimentConfig) -> Table {
        let _s = mhd_obs::span(self.name());
        self.dispatch(cfg)
    }

    /// Span-free body of [`Artifact::generate`]; [`full_report`] wraps it
    /// in `span_under` instead so rayon workers credit the report span.
    fn dispatch(self, cfg: &ExperimentConfig) -> Table {
        match self {
            Artifact::T1 => t1_dataset_stats(cfg),
            Artifact::T2 => t2_main_results(cfg),
            Artifact::T3 => t3_prompting(cfg),
            Artifact::T4 => t4_finetune(cfg),
            Artifact::T5 => t5_robustness(cfg),
            Artifact::T6 => t6_cost(cfg),
            Artifact::F1 => f1_scale_curve(cfg),
            Artifact::F2 => f2_fewshot_sweep(cfg),
            Artifact::F3 => f3_calibration(cfg),
            Artifact::F4 => f4_confusion(cfg),
            Artifact::F5 => f5_finetune_curve(cfg),
            Artifact::A1 => a1_selector_ablation(cfg),
            Artifact::A2 => a2_significance(cfg),
            Artifact::A3 => a3_label_noise(cfg),
            Artifact::A4 => a4_temperature(cfg),
            Artifact::A5 => a5_user_level(cfg),
            Artifact::A6 => a6_scaling_sweep(cfg),
            Artifact::A7 => a7_ordinal(cfg),
            Artifact::A8 => a8_rationale_quality(cfg),
            Artifact::A9 => a9_seed_variance(cfg),
        }
    }
}

/// Generate every artifact and render one markdown report.
///
/// Artifacts are generated on the rayon pool and stitched together in
/// report order, so the output is byte-identical to a serial run. Each
/// artifact's own sweep also parallelizes internally; the shim pool runs
/// nested parallel sections inline on the already-parallel workers.
pub fn full_report(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    out.push_str("# mhd benchmark report\n\n");
    out.push_str(&format!(
        "seed = {}, dataset scale = {}, pretrain seed = {}\n\n",
        cfg.seed, cfg.scale, cfg.pretrain_seed
    ));
    // Capture the dispatching span before fanning out: rayon workers have
    // their own (empty) span stacks, so each artifact span is re-parented
    // explicitly onto this thread's current span.
    let parent = mhd_obs::current();
    let sections: Vec<String> = Artifact::ALL
        .par_iter()
        .map(|artifact| {
            let _s = mhd_obs::span_under(parent, artifact.name());
            artifact.dispatch(cfg).to_markdown()
        })
        .collect();
    for section in sections {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_roundtrip() {
        for a in Artifact::ALL {
            assert_eq!(Artifact::from_name(a.name()), Some(a));
        }
        assert_eq!(Artifact::from_name("T2"), Some(Artifact::T2));
        assert_eq!(Artifact::from_name("nope"), None);
    }

    #[test]
    fn single_artifact_generates() {
        let cfg = ExperimentConfig { seed: 1, scale: 0.06, pretrain_seed: 1234, ..Default::default() };
        let t = Artifact::T1.generate(&cfg);
        assert!(t.n_rows() > 0);
        assert!(t.to_markdown().contains("T1"));
    }
}
