//! Property tests for the bucketed quantile estimator: on arbitrary
//! seeded samples, every estimate must sit within the documented
//! relative-error bound of the exact nearest-rank quantile. This is the
//! contract DESIGN.md §14 states and the telemetry exporter relies on.

use mhd_obs::{BucketHist, REL_ERROR};
use proptest::prelude::*;

/// Exact nearest-rank quantile on a sorted slice.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or(0)
}

fn assert_within_bound(samples: &[u64], q: f64) {
    let mut h = BucketHist::new();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let exact = exact_quantile(&sorted, q);
    let est = h.quantile(q);
    // The documented contract: within REL_ERROR of the exact value,
    // plus one for integer-midpoint rounding.
    let bound = (exact as f64 * REL_ERROR) as u64 + 1;
    assert!(
        est.abs_diff(exact) <= bound,
        "q={q}: estimate {est} vs exact {exact} (bound {bound}, n={})",
        samples.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantiles_within_relative_error_uniform(
        samples in proptest::collection::vec(0u64..1_000_000, 1..400),
        q in 0.0f64..=1.0,
    ) {
        assert_within_bound(&samples, q);
    }

    #[test]
    fn quantiles_within_relative_error_heavy_tail(
        // Latency-shaped data: many small values, a few enormous ones.
        small in proptest::collection::vec(1u64..2_000, 1..200),
        tail in proptest::collection::vec(1u64 << 20..1u64 << 40, 0..20),
        q in 0.0f64..=1.0,
    ) {
        let mut samples = small;
        samples.extend(tail);
        assert_within_bound(&samples, q);
    }

    #[test]
    fn count_sum_min_max_stay_exact(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..300),
    ) {
        let mut h = BucketHist::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), samples.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(h.max(), samples.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn delta_since_equals_histogram_of_the_tail(
        head in proptest::collection::vec(0u64..100_000, 0..150),
        tail in proptest::collection::vec(0u64..100_000, 0..150),
    ) {
        let mut h = BucketHist::new();
        for &v in &head {
            h.record(v);
        }
        let snap = h.clone();
        for &v in &tail {
            h.record(v);
        }
        let win = h.delta_since(&snap);
        prop_assert_eq!(win.count(), tail.len() as u64);
        prop_assert_eq!(win.sum(), tail.iter().sum::<u64>());
        // Window quantiles obey the same bound against the tail alone.
        if !tail.is_empty() {
            let mut sorted = tail.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.95, 0.99] {
                let exact = exact_quantile(&sorted, q);
                let est = win.quantile(q);
                // Window extremes are bucket edges, so allow one bucket
                // width of slack on top of the midpoint bound.
                let bound = (exact as f64 * 2.0 * REL_ERROR) as u64 + 1;
                prop_assert!(
                    est.abs_diff(exact) <= bound,
                    "window q={q}: {est} vs {exact} (bound {bound})"
                );
            }
        }
    }
}
