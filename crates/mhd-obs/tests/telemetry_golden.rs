//! Golden-file schema test for the telemetry exporter's two output
//! formats: the JSONL time series and the Prometheus-style exposition.
//!
//! The run is fully deterministic — logical time comes from a manual
//! tick source and every recorded value is fixed — so the outputs are
//! compared byte-for-byte. Schema drift (field renames, ordering
//! changes, format tweaks) fails here first; regenerate deliberately
//! with `MHD_REGEN_GOLDEN=1 cargo test -p mhd-obs --test
//! telemetry_golden` after bumping `TELEMETRY_SCHEMA`.

use std::sync::atomic::Ordering;

use mhd_obs::{
    counter_add, gauge_set, hist_record, install_manual_ticks, install_wall_ticks,
    journal_record, EventKind, Exporter, TelemetryConfig,
};

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("MHD_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path).expect("read golden");
    assert_eq!(
        actual, golden,
        "{name} drifted; bump TELEMETRY_SCHEMA and regenerate with MHD_REGEN_GOLDEN=1"
    );
}

#[test]
fn exporter_outputs_match_golden_files() {
    mhd_obs::enable();
    mhd_obs::reset();
    let ticks = install_manual_ticks();
    let dir = std::env::temp_dir().join(format!("mhd_obs_golden_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let prefix = dir.join("run").to_string_lossy().into_owned();
    let cfg = TelemetryConfig::at_prefix(&prefix, 10_000);
    let mut exporter = Exporter::create(cfg.clone()).expect("create exporter");

    // Window 0: a healthy burst.
    counter_add("serve.completed", 64);
    counter_add("serve.submitted", 64);
    gauge_set("serve.queue_depth", 2);
    gauge_set("serve.queue_depth", 9);
    gauge_set("serve.queue_depth", 4);
    for v in [120u64, 180, 240, 310, 420, 650, 900, 1_400, 2_100, 4_800] {
        hist_record("serve.latency_us", v);
    }
    ticks.store(10_000, Ordering::Relaxed);
    exporter.poll().expect("poll window 0");

    // Window 1: a fault storm — failures, events, an SLO-busting tail.
    counter_add("serve.completed", 30);
    counter_add("serve.submitted", 32);
    counter_add("serve.failed", 2);
    gauge_set("serve.queue_depth", 31);
    journal_record(EventKind::FaultInjected { site: "model_forward".to_string() });
    ticks.store(13_500, Ordering::Relaxed);
    journal_record(EventKind::ShardPanic { shard: 1 });
    journal_record(EventKind::ShardRestart { shard: 1 });
    journal_record(EventKind::DegradedEnter);
    journal_record(EventKind::QueueFull);
    for v in [200u64, 350, 7_000, 12_000, 40_000] {
        hist_record("serve.latency_us", v);
    }
    ticks.store(20_000, Ordering::Relaxed);
    journal_record(EventKind::DegradedExit);
    exporter.finish().expect("finish");

    let series = std::fs::read_to_string(&cfg.series_path).expect("read series");
    let expo = std::fs::read_to_string(&cfg.exposition_path).expect("read exposition");
    let journal = std::fs::read_to_string(&cfg.journal_path).expect("read journal");

    install_wall_ticks();
    mhd_obs::disable();
    mhd_obs::reset();
    let _ = std::fs::remove_dir_all(&dir);

    check_golden("golden_series.jsonl", &series);
    check_golden("golden_exposition.prom", &expo);
    check_golden("golden_journal.jsonl", &journal);
}
