//! `mhd-obs`: zero-dependency structured tracing, metrics, and run manifests.
//!
//! The crate is a single process-global sink that is **off by default**.
//! Instrumented call sites in the rest of the workspace go through the
//! free functions here ([`span`], [`counter_add`], [`StatTimer::start`], …)
//! which early-return on a single relaxed atomic load when tracing is
//! disabled, so the instrumented hot paths stay near-no-ops.
//!
//! Determinism contract: nothing recorded here may flow back into report
//! tables or figures. Wall-clock readings exist only in the side-channel
//! `RUN_MANIFEST.json` / `--trace-summary` output (see DESIGN.md §9).
//! This crate is also the only place in the workspace allowed to touch
//! `std::time` directly — mhd-lint rule R5 enforces that boundary.
//!
//! Sink anatomy:
//! - [`span`] / [`span_under`]: a parent/child span tree with call counts
//!   and cumulative wall-clock, tracked per-thread via a span stack.
//!   `span_under` re-parents work executed on rayon workers onto the span
//!   that dispatched it.
//! - [`StatCell`] / [`StatTimer`]: static atomic cells for hot kernels
//!   (GEMM, per-epoch timers) that must not take a lock per call.
//! - [`counter_add`] / [`gauge_set`] / [`hist_record`]: named metrics for
//!   low-frequency events (cache hits, LLM token counts, latencies).
//! - [`manifest::render_manifest`]: serialises everything into a
//!   schema-stable JSON document.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod bucket;
mod console;
pub mod journal;
pub mod manifest;
mod metrics;
mod span;
pub mod telemetry;
pub mod time;

pub use bucket::{BucketHist, REL_ERROR};
pub use console::{is_quiet, progress, set_quiet};
pub use journal::{
    journal_len, journal_record, journal_snapshot, parse_journal_line, render_journal_jsonl,
    render_timeline, Event, EventKind,
};
pub use manifest::{render_manifest, render_summary, RunHeader};
pub use metrics::{
    counter_add, counter_get, counters_snapshot, gauge_set, gauges_snapshot,
    gauges_window_take, hist_buckets_snapshot, hist_record, hist_record_many, hist_snapshot,
    kernels_snapshot, GaugeWindow, HistSummary, KernelStat, StatCell, StatTimer,
};
pub use span::{current, span, span_under, spans_snapshot, SpanGuard, SpanId, SpanSnapshot};
pub use telemetry::{
    install_manual_ticks, install_wall_ticks, tick_now_us, Exporter, Poller, SloConfig,
    SloSummary, TelemetryConfig, TickSource, TELEMETRY_SCHEMA,
};

/// Process-global on/off switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the sink on. Instrumented paths start recording from here on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the sink off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the sink is currently recording.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded spans, counters, gauges, histograms, kernel
/// stats, and journal events. The enabled flag is left as-is. Intended
/// for tests and for tools that emit several independent manifests in
/// one process.
pub fn reset() {
    span::reset();
    metrics::reset();
    journal::reset();
}

/// Tests across this crate toggle the process-global enabled flag, so
/// they serialise on one lock to stay independent of harness threading.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggles() {
        let _g = test_guard();
        // Note: tests in other modules enable/disable the global sink, so
        // only check the toggle round-trips rather than the initial state.
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }
}
