//! Parent/child span tree with per-thread span stacks.
//!
//! Span identity is `(parent, name)`: entering the same name under the
//! same parent twice accumulates into one node (calls += 1, total_ns +=
//! elapsed) rather than creating siblings, which keeps the manifest
//! schema stable across `--jobs` counts and repeated stages.

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};

use crate::time::Stopwatch;

/// Index of a node in the global span tree. `SpanId(0)` is the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) usize);

impl SpanId {
    /// The implicit root every top-level span hangs off.
    pub const ROOT: SpanId = SpanId(0);
}

struct Node {
    name: String,
    calls: u64,
    total_ns: u64,
    children: Vec<usize>,
}

struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new() -> Self {
        Tree {
            nodes: vec![Node {
                name: "run".to_string(),
                calls: 0,
                total_ns: 0,
                children: Vec::new(),
            }],
        }
    }

    /// Find or create the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &str) -> usize {
        let hit = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        match hit {
            Some(c) => c,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    name: name.to_string(),
                    calls: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                self.nodes[parent].children.push(id);
                id
            }
        }
    }
}

fn tree() -> &'static Mutex<Tree> {
    static TREE: OnceLock<Mutex<Tree>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(Tree::new()))
}

thread_local! {
    /// Stack of open span ids on this thread; the top is the current span.
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Clear the tree (back to a lone root). Open guards on other threads
/// will still record into fresh node ids, so only call between runs.
pub(crate) fn reset() {
    let mut t = tree().lock().unwrap_or_else(|e| e.into_inner());
    *t = Tree::new();
}

/// The innermost open span on this thread, or [`SpanId::ROOT`].
///
/// Capture this *before* a rayon fan-out and hand it to [`span_under`]
/// inside the parallel closure so worker-thread time is credited to the
/// dispatching span instead of dangling off the root.
pub fn current() -> SpanId {
    SpanId(STACK.with(|s| s.borrow().last().copied().unwrap_or(0)))
}

/// Open a span as a child of this thread's current span.
///
/// Returns a guard that records elapsed wall-clock into the tree when
/// dropped. When the sink is disabled this is a single atomic load.
#[must_use = "the span records on Drop; binding to _ closes it immediately"]
pub fn span(name: &str) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { live: None };
    }
    open(current(), name)
}

/// Open a span as a child of an explicit parent (rayon attribution).
#[must_use = "the span records on Drop; binding to _ closes it immediately"]
pub fn span_under(parent: SpanId, name: &str) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { live: None };
    }
    open(parent, name)
}

fn open(parent: SpanId, name: &str) -> SpanGuard {
    let id = {
        let mut t = tree().lock().unwrap_or_else(|e| e.into_inner());
        t.child(parent.0, name)
    };
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard { live: Some((id, Stopwatch::start())) }
}

/// Open span handle; commits `(calls += 1, total_ns += elapsed)` on Drop.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<(usize, Stopwatch)>,
}

impl SpanGuard {
    /// The id of the span this guard holds open (root if inert).
    pub fn id(&self) -> SpanId {
        SpanId(self.live.as_ref().map_or(0, |(id, _)| *id))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((id, sw)) = self.live.take() {
            let ns = sw.elapsed_ns();
            STACK.with(|s| {
                let mut st = s.borrow_mut();
                if st.last() == Some(&id) {
                    st.pop();
                }
            });
            let mut t = tree().lock().unwrap_or_else(|e| e.into_inner());
            if let Some(node) = t.nodes.get_mut(id) {
                node.calls += 1;
                node.total_ns += ns;
            }
        }
    }
}

/// Immutable copy of one span node for rendering; children sorted by name.
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Span name ("run" for the root).
    pub name: String,
    /// Completed enter/exit pairs.
    pub calls: u64,
    /// Cumulative wall-clock across calls, nanoseconds.
    pub total_ns: u64,
    /// Child spans, sorted by name for schema stability.
    pub children: Vec<SpanSnapshot>,
}

/// Snapshot the whole tree rooted at "run".
pub fn spans_snapshot() -> SpanSnapshot {
    let t = tree().lock().unwrap_or_else(|e| e.into_inner());
    fn copy(t: &Tree, id: usize) -> SpanSnapshot {
        let n = &t.nodes[id];
        let mut children: Vec<SpanSnapshot> =
            n.children.iter().map(|&c| copy(t, c)).collect();
        children.sort_by(|a, b| a.name.cmp(&b.name));
        SpanSnapshot {
            name: n.name.clone(),
            calls: n.calls,
            total_ns: n.total_ns,
            children,
        }
    }
    copy(&t, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span tree is process-global, so every test here runs in one
    // #[test] body to avoid cross-test interference under the parallel
    // test harness.
    #[test]
    fn nesting_attribution_and_disabled_paths() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();

        // Nested spans chain through the thread-local stack.
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                assert_eq!(current(), _inner.id());
            }
            let _inner2 = span("inner");
        }
        // Same (parent, name) accumulates instead of duplicating.
        let snap = spans_snapshot();
        assert_eq!(snap.name, "run");
        assert_eq!(snap.children.len(), 1);
        let outer = &snap.children[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].calls, 2);

        // span_under credits worker threads to the dispatching span.
        crate::reset();
        let parent_id = {
            let g = span("dispatch");
            let pid = g.id();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(move || {
                        let _w = span_under(pid, "work");
                        let _n = span("nested");
                    });
                }
            });
            pid
        };
        assert_ne!(parent_id, SpanId::ROOT);
        let snap = spans_snapshot();
        let dispatch = &snap.children[0];
        assert_eq!(dispatch.name, "dispatch");
        assert_eq!(dispatch.children.len(), 1);
        assert_eq!(dispatch.children[0].name, "work");
        assert_eq!(dispatch.children[0].calls, 4);
        assert_eq!(dispatch.children[0].children[0].calls, 4);

        // Disabled: no recording, current() stays at root.
        crate::disable();
        crate::reset();
        {
            let g = span("ghost");
            assert_eq!(g.id(), SpanId::ROOT);
            assert_eq!(current(), SpanId::ROOT);
        }
        assert!(spans_snapshot().children.is_empty());
    }
}
