//! Log-linear bucketed histograms with bounded-relative-error quantiles.
//!
//! The bucket scheme is the HdrHistogram/Prometheus-native-histogram
//! family: values below [`SUBS`] get one bucket each (exact), and every
//! power-of-two octave above that is split into [`SUBS`] linear
//! sub-buckets. A recorded value lands in the bucket
//! `[lo, lo + width)` with `width <= lo / SUBS`, so reporting the bucket
//! midpoint bounds the relative error of any quantile estimate by
//! `width / (2 * lo) <= 1 / (2 * SUBS)` — comfortably inside the
//! [`REL_ERROR`] contract the property tests pin.
//!
//! Recording is two array increments and a handful of integer ops — no
//! allocation, no search — cheap enough to record **every** request
//! latency in the serving hot path instead of sampling.

/// Linear sub-buckets per power-of-two octave. 16 subs give a worst-case
/// midpoint error of 1/32 ≈ 3.1%; the documented bound keeps margin.
pub const SUBS: usize = 16;

/// Number of buckets: `SUBS` exact ones below 16 plus 16 per octave for
/// the 60 octaves with a most-significant bit in `4..=63`.
pub const N_BUCKETS: usize = SUBS + 60 * SUBS;

/// Documented relative-error bound of [`BucketHist::quantile`] for
/// values `>= SUBS` (values below `SUBS` are exact): the estimate is
/// within `exact * REL_ERROR + 1` of the true nearest-rank quantile.
pub const REL_ERROR: f64 = 1.0 / SUBS as f64;

/// Bucket index for a value: identity below `SUBS`, log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        // Highest set bit is >= 4 here, so `msb - 4` never underflows.
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 4)) & 15) as usize;
        SUBS * (msb - 3) + sub
    }
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
pub fn bucket_lo(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let msb = idx / SUBS + 3;
        let sub = (idx % SUBS) as u64;
        (SUBS as u64 + sub) << (msb - 4)
    }
}

/// Width of bucket `idx` (its value range is `[lo, lo + width)`).
#[inline]
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUBS {
        1
    } else {
        1u64 << (idx / SUBS - 1)
    }
}

/// Representative value reported for bucket `idx`: the integer midpoint,
/// which halves the worst-case estimation error vs either edge.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    bucket_lo(idx).saturating_add(bucket_width(idx) / 2)
}

/// A log-linear bucketed histogram over `u64` observations: exact
/// count/sum/min/max plus per-bucket counts for quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketHist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64]>,
}

impl Default for BucketHist {
    fn default() -> Self {
        BucketHist::new()
    }
}

impl BucketHist {
    /// An empty histogram (allocates the fixed bucket array once).
    pub fn new() -> BucketHist {
        BucketHist { count: 0, sum: 0, min: 0, max: 0, buckets: vec![0; N_BUCKETS].into() }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if let Some(slot) = self.buckets.get_mut(bucket_index(v)) {
            *slot += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the midpoint
    /// of the bucket holding the rank-`ceil(q * count)` observation,
    /// clamped into `[min, max]`. Error bound: see [`REL_ERROR`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// The observations recorded since `earlier` (a previous cumulative
    /// snapshot of the *same* histogram), as a standalone histogram.
    ///
    /// Counts and bucket deltas are saturating, so a sink reset between
    /// snapshots degrades to an empty/partial window instead of
    /// corrupting the series. The window's min/max are reconstructed
    /// from the delta buckets (bucket lower bound / inclusive upper
    /// bound), since exact extremes of a window are not recoverable
    /// from two cumulative snapshots.
    pub fn delta_since(&self, earlier: &BucketHist) -> BucketHist {
        let mut out = BucketHist::new();
        out.sum = self.sum.saturating_sub(earlier.sum);
        for (idx, slot) in out.buckets.iter_mut().enumerate() {
            let now = self.buckets.get(idx).copied().unwrap_or(0);
            let was = earlier.buckets.get(idx).copied().unwrap_or(0);
            *slot = now.saturating_sub(was);
        }
        // Count comes from the bucket deltas, not `count - count`: after
        // a mid-window reset the two can disagree (some buckets shrink,
        // others grow), and the quantile walk needs the buckets and the
        // count to describe the same population.
        out.count = out.buckets.iter().sum();
        let mut lo = None;
        let mut hi = None;
        for (idx, _) in out.nonzero() {
            if lo.is_none() {
                lo = Some(bucket_lo(idx));
            }
            hi = Some(bucket_lo(idx).saturating_add(bucket_width(idx) - 1));
        }
        out.min = lo.unwrap_or(0);
        out.max = hi.unwrap_or(0).min(self.max).max(out.min);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_are_consistent() {
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 777, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "{v} -> {idx}");
            let lo = bucket_lo(idx);
            let w = bucket_width(idx);
            assert!(lo <= v, "{v} below lo {lo}");
            assert!(v - lo < w, "{v} outside [{lo}, {lo}+{w})");
        }
        // Buckets tile the line: each bucket starts where the last ended.
        for idx in 0..N_BUCKETS - 1 {
            assert_eq!(
                bucket_lo(idx).saturating_add(bucket_width(idx)),
                bucket_lo(idx + 1),
                "gap after bucket {idx}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = BucketHist::new();
        for v in [3u64, 3, 7, 1] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (4, 14, 1, 7));
    }

    #[test]
    fn quantiles_respect_relative_error() {
        let mut h = BucketHist::new();
        let samples: Vec<u64> = (0..10_000u64).map(|i| 17 + i * 13).collect();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted.get(rank - 1).copied().unwrap_or(0);
            let est = h.quantile(q);
            let bound = (exact as f64 * REL_ERROR) as u64 + 1;
            assert!(
                est.abs_diff(exact) <= bound,
                "q={q}: est {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let mut h = BucketHist::new();
        h.record(100);
        h.record(200);
        let snap = h.clone();
        h.record(400);
        h.record(800);
        let win = h.delta_since(&snap);
        assert_eq!(win.count(), 2);
        assert_eq!(win.sum(), 1200);
        // Window extremes come from bucket edges around 400 and 800.
        assert!(win.min() <= 400 && win.min() >= 400 - 400 / SUBS as u64);
        assert!(win.max() >= 800 && win.max() <= 800 + 800 / SUBS as u64);
        let p50 = win.quantile(0.5);
        assert!(p50.abs_diff(400) <= 400 / SUBS as u64 + 1, "p50 {p50}");
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = BucketHist::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero().count(), 0);
    }
}
