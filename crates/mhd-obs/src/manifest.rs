//! `RUN_MANIFEST.json` rendering and the human-readable trace summary.
//!
//! The manifest is the *only* place wall-clock readings are allowed to
//! surface. Its schema is deterministic — fixed top-level key order,
//! BTreeMap-sorted metric names, name-sorted span children and kernel
//! rows — so two runs of the same command differ only in timing values,
//! never in structure. `schema` is versioned; bump it on any key change.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{counters_snapshot, gauges_snapshot, hist_snapshot, kernels_snapshot};
use crate::span::{spans_snapshot, SpanSnapshot};
use crate::time::format_ns;

/// Manifest schema identifier; bump on any structural change.
/// v2: histogram entries gained p50/p95/p99/p999 quantile estimates.
pub const SCHEMA: &str = "mhd-obs/manifest/v2";

/// Run identity recorded at the top of the manifest.
#[derive(Debug, Clone)]
pub struct RunHeader {
    /// Emitting binary, e.g. `repro` or `nn_bench`.
    pub tool: String,
    /// `git describe` output (or `unknown` outside a checkout).
    pub git: String,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Effective rayon thread count.
    pub jobs: usize,
}

/// Best-effort `git describe --always --dirty`, `"unknown"` on any failure.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_map(out: &mut String, indent: &str, map: &BTreeMap<String, u64>) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let inner = format!("{indent}  ");
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "{inner}\"{}\": {v}", json_escape(k));
    }
    let _ = write!(out, "\n{indent}}}");
}

fn push_span(out: &mut String, indent: &str, s: &SpanSnapshot) {
    let inner = format!("{indent}  ");
    let _ = write!(
        out,
        "{{\n{inner}\"name\": \"{}\",\n{inner}\"calls\": {},\n{inner}\"total_ns\": {},\n{inner}\"children\": [",
        json_escape(&s.name),
        s.calls,
        s.total_ns
    );
    if s.children.is_empty() {
        out.push(']');
    } else {
        let child_indent = format!("{inner}  ");
        let mut first = true;
        for c in &s.children {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n{child_indent}");
            push_span(out, &child_indent, c);
        }
        let _ = write!(out, "\n{inner}]");
    }
    let _ = write!(out, "\n{indent}}}");
}

/// Render the full `RUN_MANIFEST.json` document from the current sink
/// state. `artifacts` maps artifact name → emitted row count.
pub fn render_manifest(header: &RunHeader, artifacts: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(SCHEMA));
    let _ = writeln!(out, "  \"tool\": \"{}\",", json_escape(&header.tool));
    let _ = writeln!(out, "  \"git\": \"{}\",", json_escape(&header.git));
    let _ = writeln!(out, "  \"seed\": {},", header.seed);
    let _ = writeln!(out, "  \"scale\": {},", header.scale);
    let _ = writeln!(out, "  \"jobs\": {},", header.jobs);

    out.push_str("  \"artifacts\": ");
    push_map(&mut out, "  ", artifacts);
    out.push_str(",\n  \"counters\": ");
    push_map(&mut out, "  ", &counters_snapshot());
    out.push_str(",\n  \"gauges\": ");
    push_map(&mut out, "  ", &gauges_snapshot());

    out.push_str(",\n  \"histograms\": ");
    let hists = hist_snapshot();
    if hists.is_empty() {
        out.push_str("{}");
    } else {
        out.push_str("{\n");
        let mut first = true;
        for (name, h) in &hists {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99,
                h.p999
            );
        }
        out.push_str("\n  }");
    }

    out.push_str(",\n  \"kernels\": [");
    let kernels = kernels_snapshot();
    let mut first = true;
    for k in &kernels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"calls\": {}, \"total_ns\": {}}}",
            json_escape(&k.name),
            k.calls,
            k.total_ns
        );
    }
    if !kernels.is_empty() {
        out.push_str("\n  ");
    }
    out.push(']');

    out.push_str(",\n  \"spans\": ");
    push_span(&mut out, "  ", &spans_snapshot());
    out.push_str("\n}\n");
    out
}

fn push_summary_span(out: &mut String, depth: usize, s: &SpanSnapshot) {
    let label = format!("{}{}", "  ".repeat(depth), s.name);
    let _ = writeln!(
        out,
        "{label:<44} {:>7} {:>10}",
        format!("x{}", s.calls),
        format_ns(s.total_ns)
    );
    for c in &s.children {
        push_summary_span(out, depth + 1, c);
    }
}

/// Render the flamegraph-style text summary of the current sink state.
pub fn render_summary(header: &RunHeader) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== trace summary: {} (git {}, seed {}, scale {}, jobs {}) ==",
        header.tool, header.git, header.seed, header.scale, header.jobs
    );
    out.push_str("-- spans (cumulative wall-clock; children may overlap under rayon) --\n");
    push_summary_span(&mut out, 0, &spans_snapshot());
    let kernels = kernels_snapshot();
    if !kernels.is_empty() {
        out.push_str("-- kernels --\n");
        for k in &kernels {
            let _ = writeln!(
                out,
                "  {:<42} {:>7} {:>10}",
                k.name,
                format!("x{}", k.calls),
                format_ns(k.total_ns)
            );
        }
    }
    let counters = counters_snapshot();
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        for (name, v) in &counters {
            let _ = writeln!(out, "  {name:<42} {v:>10}");
        }
    }
    let hists = hist_snapshot();
    if !hists.is_empty() {
        out.push_str("-- histograms --\n");
        for (name, h) in &hists {
            let mean = if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {name:<42} n={} mean={mean:.1} min={} max={} p50={} p95={} p99={}",
                h.count, h.min, h.max, h.p50, h.p95, h.p99
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter_add, hist_record, span};

    fn header() -> RunHeader {
        RunHeader {
            tool: "test".into(),
            git: "deadbeef".into(),
            seed: 7,
            scale: 0.5,
            jobs: 2,
        }
    }

    /// Replace timing values so two renders of the same run structure
    /// compare equal byte-for-byte.
    fn normalize(s: &str) -> String {
        let mut out = String::new();
        for line in s.lines() {
            let line = match line.find("\"total_ns\": ") {
                Some(i) => {
                    let (head, tail) = line.split_at(i + "\"total_ns\": ".len());
                    let rest: String =
                        tail.chars().skip_while(|c| c.is_ascii_digit()).collect();
                    format!("{head}0{rest}")
                }
                None => line.to_string(),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    #[test]
    fn manifest_schema_matches_golden() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        {
            let _a = span("stage_a");
            let _b = span("inner");
        }
        {
            let _c = span("stage_b");
        }
        counter_add("cache.hit", 3);
        counter_add("cache.miss", 1);
        hist_record("latency_ms", 12);
        hist_record("latency_ms", 4);
        // The self-healing serving counters are part of the pinned
        // schema: the chaos-smoke CI job greps the trace manifest for
        // them, so a rename here must show up as golden drift.
        counter_add("serve.retries", 2);
        counter_add("serve.deadline_exceeded", 1);
        counter_add("serve.shard_restarts", 1);
        counter_add("serve.degraded", 1);
        hist_record("serve.backoff_us", 150);
        hist_record("serve.backoff_us", 400);

        let mut artifacts = BTreeMap::new();
        artifacts.insert("t1".to_string(), 9u64);
        let rendered = normalize(&render_manifest(&header(), &artifacts));
        let golden_path =
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_manifest.json");
        if std::env::var_os("MHD_REGEN_GOLDEN").is_some() {
            std::fs::write(golden_path, &rendered).expect("write golden");
        }
        let golden = std::fs::read_to_string(golden_path).expect("read golden");
        assert_eq!(rendered, golden, "manifest schema drifted; bump SCHEMA and regenerate with MHD_REGEN_GOLDEN=1");
        crate::disable();
        crate::reset();
    }

    #[test]
    fn summary_mentions_all_sections() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        {
            let _a = span("stage_a");
        }
        counter_add("hits", 2);
        hist_record("lat", 5);
        let s = render_summary(&header());
        for needle in ["trace summary", "stage_a", "-- counters --", "-- histograms --"] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
        crate::disable();
        crate::reset();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
