//! The one console sink for progress/telemetry lines.
//!
//! Every human-facing progress line in the workspace goes through
//! [`progress`], always on **stderr**, so stdout stays clean for CSV and
//! markdown consumers even when a script merges the streams by accident.
//! `--quiet` (or any other caller of [`set_quiet`]) silences the sink
//! entirely.

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Silence (or un-silence) all [`progress`] output.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::SeqCst);
}

/// Whether progress output is currently silenced.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Emit one `[tag] message` progress line on stderr, unless quiet.
pub fn progress(tag: &str, msg: &str) {
    if is_quiet() {
        return;
    }
    eprintln!("[{tag}] {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_round_trips() {
        set_quiet(true);
        assert!(is_quiet());
        progress("test", "suppressed");
        set_quiet(false);
        assert!(!is_quiet());
    }
}
