//! The one sanctioned monotonic clock in the workspace.
//!
//! Everything else must time through [`Stopwatch`] (or the span/StatTimer
//! layers built on it) so that mhd-lint rule R5 can statically guarantee
//! wall-clock never leaks into deterministic outputs from anywhere else.

use std::time::Instant;

/// A started monotonic timer. `Stopwatch` always runs — gating on the
/// global enabled flag is the caller's job (spans and [`crate::StatTimer`]
/// do it for you).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        // u64 nanoseconds covers ~584 years; saturate rather than panic.
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e9
    }
}

/// Format a nanosecond duration for human-readable summaries.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn format_ns_picks_unit() {
        assert_eq!(format_ns(42), "42ns");
        assert_eq!(format_ns(1_500), "1.5us");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_210_000_000), "3.21s");
    }
}
