//! Live telemetry: windowed aggregation, a periodic snapshot exporter,
//! and SLO tracking for the long-running serving path.
//!
//! The manifest (§ [`crate::manifest`]) is a post-mortem: one document
//! at end of run. This module is the *live* view — the exporter closes
//! a fixed-width window per [`Exporter::poll`], emitting one JSONL row
//! of window deltas (counters, gauge min/mean/max, histogram quantiles,
//! SLO burn) plus a rewritten Prometheus-style exposition file of the
//! cumulative state, and streams the event journal alongside.
//!
//! Time flows through a [`TickSource`] seam: production uses the wall
//! clock (via [`crate::time::Stopwatch`], keeping the R5 clock lint
//! boundary inside this crate), while tests install a manual source and
//! advance logical microseconds deterministically.
//!
//! Like every other sink surface, the exporter is output-neutral: it
//! writes side-channel files only, never anything that flows into
//! service responses or report tables.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::bucket::{bucket_lo, bucket_width, BucketHist};
use crate::journal::{journal_snapshot, render_journal_jsonl};
use crate::manifest::json_escape;
use crate::metrics::{
    counters_snapshot, gauges_snapshot, gauges_window_take, hist_buckets_snapshot,
    kernels_snapshot, GaugeWindow, HistSummary,
};
use crate::time::Stopwatch;

/// Telemetry time-series schema identifier (each JSONL row carries it).
pub const TELEMETRY_SCHEMA: &str = "mhd-obs/telemetry/v1";

/// Where the exporter reads "now" from, in logical microseconds.
///
/// `Wall` anchors to a [`Stopwatch`] started when the source is
/// installed; `Manual` reads an atomic that tests advance explicitly,
/// so windowed behaviour is reproducible without sleeping.
pub enum TickSource {
    /// Wall-clock microseconds since the source was installed.
    Wall(Stopwatch),
    /// Logical microseconds owned by the test.
    Manual(Arc<AtomicU64>),
}

impl TickSource {
    /// Current logical time in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            TickSource::Wall(sw) => sw.elapsed_ns() / 1_000,
            TickSource::Manual(t) => t.load(Ordering::Relaxed),
        }
    }
}

fn tick_source() -> &'static Mutex<TickSource> {
    static T: OnceLock<Mutex<TickSource>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(TickSource::Wall(Stopwatch::start())))
}

/// Current logical time from the installed [`TickSource`], microseconds.
pub fn tick_now_us() -> u64 {
    tick_source().lock().unwrap_or_else(|e| e.into_inner()).now_us()
}

/// Install a manual tick source and return its handle; `store` /
/// `fetch_add` on the handle advances logical time. Tests only.
pub fn install_manual_ticks() -> Arc<AtomicU64> {
    let handle = Arc::new(AtomicU64::new(0));
    *tick_source().lock().unwrap_or_else(|e| e.into_inner()) =
        TickSource::Manual(Arc::clone(&handle));
    handle
}

/// Reinstall the default wall-clock tick source (restarts the epoch).
pub fn install_wall_ticks() {
    *tick_source().lock().unwrap_or_else(|e| e.into_inner()) =
        TickSource::Wall(Stopwatch::start());
}

/// Service-level objectives evaluated per window.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// A request is "good" when its latency is at most this.
    pub latency_objective_us: u64,
    /// Target fraction of good requests per window, e.g. `0.99`.
    pub latency_target: f64,
    /// Target availability (completed / attempted), e.g. `0.999`.
    pub availability_target: f64,
    /// Histogram the latency objective reads, e.g. `serve.latency_us`.
    pub latency_metric: String,
    /// Counter of successful requests, e.g. `serve.completed`.
    pub success_counter: String,
    /// Counter of typed failures, e.g. `serve.failed`.
    pub failure_counter: String,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_objective_us: 5_000,
            latency_target: 0.99,
            availability_target: 0.999,
            latency_metric: "serve.latency_us".to_string(),
            success_counter: "serve.completed".to_string(),
            failure_counter: "serve.failed".to_string(),
        }
    }
}

/// One window's SLO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSummary {
    /// Requests in the window meeting the latency objective.
    pub latency_good: u64,
    /// Requests in the window with a recorded latency.
    pub latency_total: u64,
    /// Error-budget burn rate of the latency objective: bad-fraction
    /// divided by allowed bad-fraction. `1.0` burns the budget exactly
    /// as fast as the objective allows; above that the budget shrinks.
    pub latency_burn: f64,
    /// Fraction of attempted requests that succeeded (1.0 when idle).
    pub availability: f64,
    /// Error-budget burn rate of the availability objective.
    pub availability_burn: f64,
}

/// Count observations at most `threshold` — per-bucket, so the answer
/// carries the same relative-error bound as the quantiles: a bucket
/// counts as good when its midpoint is within the objective.
fn count_le(h: &BucketHist, threshold: u64) -> u64 {
    let mut good = 0;
    for (idx, c) in h.nonzero() {
        let mid = bucket_lo(idx).saturating_add(bucket_width(idx) / 2);
        if mid <= threshold {
            good += c;
        }
    }
    good
}

fn burn_rate(bad: f64, target: f64) -> f64 {
    let budget = (1.0 - target).max(1e-9);
    bad / budget
}

fn eval_slo(
    slo: &SloConfig,
    hist_windows: &BTreeMap<String, BucketHist>,
    counter_deltas: &BTreeMap<String, u64>,
) -> SloSummary {
    let (latency_good, latency_total) = match hist_windows.get(&slo.latency_metric) {
        // min() guards a window straddling a sink reset, where bucket
        // tallies and the count delta can briefly disagree.
        Some(h) => (count_le(h, slo.latency_objective_us).min(h.count()), h.count()),
        None => (0, 0),
    };
    let bad_frac = if latency_total == 0 {
        0.0
    } else {
        (latency_total - latency_good) as f64 / latency_total as f64
    };
    let ok = counter_deltas.get(&slo.success_counter).copied().unwrap_or(0);
    let failed = counter_deltas.get(&slo.failure_counter).copied().unwrap_or(0);
    let attempted = ok + failed;
    let availability = if attempted == 0 { 1.0 } else { ok as f64 / attempted as f64 };
    SloSummary {
        latency_good,
        latency_total,
        latency_burn: burn_rate(bad_frac, slo.latency_target),
        availability,
        availability_burn: burn_rate(1.0 - availability, slo.availability_target),
    }
}

/// Exporter configuration: window width, output paths, SLOs.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Fixed window width in logical microseconds.
    pub window_us: u64,
    /// Append-only JSONL time series, one row per closed window.
    pub series_path: PathBuf,
    /// Prometheus-style text exposition, rewritten per poll.
    pub exposition_path: PathBuf,
    /// Event journal JSONL, streamed as events arrive.
    pub journal_path: PathBuf,
    /// SLO evaluation; `None` omits the `slo` field from rows.
    pub slo: Option<SloConfig>,
}

impl TelemetryConfig {
    /// Conventional layout under a path prefix: `<prefix>.series.jsonl`,
    /// `<prefix>.prom`, `<prefix>.journal.jsonl`.
    pub fn at_prefix(prefix: &str, window_us: u64) -> TelemetryConfig {
        TelemetryConfig {
            window_us,
            series_path: PathBuf::from(format!("{prefix}.series.jsonl")),
            exposition_path: PathBuf::from(format!("{prefix}.prom")),
            journal_path: PathBuf::from(format!("{prefix}.journal.jsonl")),
            slo: Some(SloConfig::default()),
        }
    }
}

/// The periodic snapshot exporter. Holds the previous cumulative
/// snapshots; each [`poll`](Exporter::poll) closes one window by
/// diffing against them (saturating, so a mid-run [`crate::reset`]
/// degrades to an empty window instead of corrupting the series).
pub struct Exporter {
    cfg: TelemetryConfig,
    series: File,
    window: u64,
    prev_counters: BTreeMap<String, u64>,
    prev_hists: BTreeMap<String, BucketHist>,
    journal_cursor: usize,
}

impl Exporter {
    /// Create/truncate the output files and start the first window.
    pub fn create(cfg: TelemetryConfig) -> io::Result<Exporter> {
        let series = File::create(&cfg.series_path)?;
        File::create(&cfg.exposition_path)?;
        File::create(&cfg.journal_path)?;
        Ok(Exporter {
            cfg,
            series,
            window: 0,
            prev_counters: BTreeMap::new(),
            prev_hists: BTreeMap::new(),
            journal_cursor: 0,
        })
    }

    /// Fold kernel [`crate::StatCell`]s into counter space so hot-path
    /// atomics show up in the same delta stream as named counters.
    fn counters_with_kernels(&self) -> BTreeMap<String, u64> {
        let mut counters = counters_snapshot();
        for k in kernels_snapshot() {
            counters.insert(format!("kernel.{}.calls", k.name), k.calls);
            counters.insert(format!("kernel.{}.ns", k.name), k.total_ns);
        }
        counters
    }

    /// Close the current window: append one JSONL row of deltas,
    /// rewrite the exposition file, stream new journal events.
    pub fn poll(&mut self) -> io::Result<()> {
        let t_us = tick_now_us();
        let counters = self.counters_with_kernels();
        let hists = hist_buckets_snapshot();
        let gauge_windows = gauges_window_take();

        let counter_deltas: BTreeMap<String, u64> = counters
            .iter()
            .map(|(k, &v)| {
                (k.clone(), v.saturating_sub(self.prev_counters.get(k).copied().unwrap_or(0)))
            })
            .filter(|(_, d)| *d > 0)
            .collect();
        let hist_windows: BTreeMap<String, BucketHist> = hists
            .iter()
            .map(|(k, h)| match self.prev_hists.get(k) {
                Some(prev) => (k.clone(), h.delta_since(prev)),
                None => (k.clone(), h.clone()),
            })
            .filter(|(_, w)| w.count() > 0)
            .collect();

        let slo = self.cfg.slo.as_ref().map(|s| eval_slo(s, &hist_windows, &counter_deltas));
        let events = journal_snapshot();
        let new_events = events.get(self.journal_cursor..).unwrap_or(&[]);

        let row = render_series_row(
            self.window,
            t_us,
            &counter_deltas,
            &gauge_windows,
            &hist_windows,
            slo.as_ref(),
            new_events.len() as u64,
        );
        self.series.write_all(row.as_bytes())?;
        self.series.flush()?;

        if !new_events.is_empty() {
            let mut jf = File::options().append(true).open(&self.cfg.journal_path)?;
            jf.write_all(render_journal_jsonl(new_events).as_bytes())?;
            jf.flush()?;
        }
        self.journal_cursor = events.len();

        let expo = render_exposition(&counters, &gauges_snapshot(), &hists);
        write_atomically(&self.cfg.exposition_path, &expo)?;

        self.window += 1;
        self.prev_counters = counters;
        self.prev_hists = hists;
        Ok(())
    }

    /// Close the final window and flush everything.
    pub fn finish(mut self) -> io::Result<()> {
        self.poll()
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.window
    }
}

/// Write via a sibling temp file + rename so a reader tailing the
/// exposition file never observes a half-written document.
fn write_atomically(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0000".to_string()
    }
}

/// One JSONL time-series row (trailing newline included).
fn render_series_row(
    window: u64,
    t_us: u64,
    counters: &BTreeMap<String, u64>,
    gauges: &BTreeMap<String, GaugeWindow>,
    hists: &BTreeMap<String, BucketHist>,
    slo: Option<&SloSummary>,
    events: u64,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"window\":{window},\"t_us\":{t_us},\"counters\":{{"
    );
    let mut first = true;
    for (k, v) in counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{v}", json_escape(k));
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (k, g) in gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\"{}\":{{\"last\":{},\"min\":{},\"max\":{},\"mean\":{},\"writes\":{}}}",
            json_escape(k),
            g.last,
            g.min,
            g.max,
            fmt_f64(g.mean),
            g.writes
        );
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (k, h) in hists {
        if !first {
            out.push(',');
        }
        first = false;
        let s = HistSummary::of(h);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
            json_escape(k),
            s.count,
            s.sum,
            s.min,
            s.max,
            s.p50,
            s.p95,
            s.p99,
            s.p999
        );
    }
    out.push('}');
    if let Some(s) = slo {
        let _ = write!(
            out,
            ",\"slo\":{{\"latency_good\":{},\"latency_total\":{},\"latency_burn\":{},\"availability\":{},\"availability_burn\":{}}}",
            s.latency_good,
            s.latency_total,
            fmt_f64(s.latency_burn),
            fmt_f64(s.availability),
            fmt_f64(s.availability_burn)
        );
    }
    let _ = writeln!(out, ",\"events\":{events}}}");
    out
}

/// `serve.latency_us` → `mhd_serve_latency_us` (Prometheus name rules).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mhd_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus-style text exposition of the *cumulative* sink state.
fn render_exposition(
    counters: &BTreeMap<String, u64>,
    gauges: &BTreeMap<String, u64>,
    hists: &BTreeMap<String, BucketHist>,
) -> String {
    let mut out = String::new();
    for (k, v) in counters {
        let n = prom_name(k);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (k, v) in gauges {
        let n = prom_name(k);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (k, h) in hists {
        let n = prom_name(k);
        let s = HistSummary::of(h);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in
            [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99), ("0.999", s.p999)]
        {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{n}_sum {}", s.sum);
        let _ = writeln!(out, "{n}_count {}", s.count);
    }
    out
}

/// A background thread that polls an [`Exporter`] at a fixed interval
/// until stopped, then closes the final window. Drives the wall-clock
/// production path; tests call [`Exporter::poll`] directly instead.
pub struct Poller {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<(Exporter, io::Result<()>)>>,
}

impl Poller {
    /// Spawn the polling thread (`interval_us` between window closes).
    pub fn spawn(exporter: Exporter, interval_us: u64) -> Poller {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut exporter = exporter;
            let mut status = Ok(());
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_micros(interval_us));
                if let Err(e) = exporter.poll() {
                    status = Err(e);
                    break;
                }
            }
            (exporter, status)
        });
        Poller { stop, handle: Some(handle) }
    }

    /// Stop polling, close the final window, and surface any I/O error
    /// the polling thread hit.
    pub fn finish(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take().map(|h| h.join()) {
            Some(Ok((exporter, status))) => {
                status?;
                exporter.finish()
            }
            Some(Err(_)) => Err(io::Error::other("telemetry poller thread panicked")),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{journal_record, EventKind};

    #[test]
    fn manual_ticks_drive_logical_time() {
        let _g = crate::test_guard();
        let ticks = install_manual_ticks();
        assert_eq!(tick_now_us(), 0);
        ticks.store(42_000, Ordering::Relaxed);
        assert_eq!(tick_now_us(), 42_000);
        install_wall_ticks();
    }

    #[test]
    fn count_le_respects_bucket_midpoints() {
        let mut h = BucketHist::new();
        for v in [1u64, 2, 3, 1_000, 2_000, 100_000] {
            h.record(v);
        }
        assert_eq!(count_le(&h, 10), 3);
        assert_eq!(count_le(&h, 3_000), 5);
        assert_eq!(count_le(&h, u64::MAX), 6);
    }

    #[test]
    fn slo_burn_rates_scale_with_bad_fraction() {
        let slo = SloConfig { latency_objective_us: 100, ..SloConfig::default() };
        let mut h = BucketHist::new();
        for _ in 0..98 {
            h.record(10);
        }
        h.record(10_000);
        h.record(10_000);
        let mut hists = BTreeMap::new();
        hists.insert("serve.latency_us".to_string(), h);
        let mut counters = BTreeMap::new();
        counters.insert("serve.completed".to_string(), 99u64);
        counters.insert("serve.failed".to_string(), 1u64);
        let s = eval_slo(&slo, &hists, &counters);
        assert_eq!((s.latency_good, s.latency_total), (98, 100));
        // 2% bad latency against a 1% budget burns at 2x.
        assert!((s.latency_burn - 2.0).abs() < 1e-9, "{}", s.latency_burn);
        assert!((s.availability - 0.99).abs() < 1e-9);
        // 1% unavailability against a 0.1% budget burns at 10x.
        assert!((s.availability_burn - 10.0).abs() < 1e-6, "{}", s.availability_burn);
    }

    #[test]
    fn exporter_writes_windowed_rows_and_exposition() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        let ticks = install_manual_ticks();
        let dir = std::env::temp_dir().join("mhd_obs_exporter_test");
        let _ = std::fs::create_dir_all(&dir);
        let prefix = dir.join("run").to_string_lossy().into_owned();
        let cfg = TelemetryConfig::at_prefix(&prefix, 1_000);
        let mut exporter = Exporter::create(cfg.clone()).expect("create exporter");

        crate::counter_add("serve.completed", 10);
        crate::gauge_set("serve.queue_depth", 3);
        crate::gauge_set("serve.queue_depth", 7);
        for v in [100u64, 200, 9_000] {
            crate::hist_record("serve.latency_us", v);
        }
        journal_record(EventKind::QueueFull);
        ticks.store(1_000, Ordering::Relaxed);
        exporter.poll().expect("poll 1");

        crate::counter_add("serve.completed", 5);
        ticks.store(2_000, Ordering::Relaxed);
        exporter.finish().expect("finish");

        let series = std::fs::read_to_string(&cfg.series_path).expect("series");
        let lines: Vec<&str> = series.lines().collect();
        assert_eq!(lines.len(), 2, "{series}");
        let w0 = lines.first().copied().unwrap_or("");
        assert!(w0.contains("\"window\":0") && w0.contains("\"t_us\":1000"), "{w0}");
        assert!(w0.contains("\"serve.completed\":10"), "{w0}");
        assert!(w0.contains("\"min\":3,\"max\":7"), "{w0}");
        assert!(w0.contains("\"p50\":"), "{w0}");
        assert!(w0.contains("\"events\":1"), "{w0}");
        // Second window sees only the post-poll delta.
        let w1 = lines.get(1).copied().unwrap_or("");
        assert!(w1.contains("\"serve.completed\":5"), "{w1}");
        assert!(!w1.contains("histograms\":{\"serve"), "{w1}");

        let expo = std::fs::read_to_string(&cfg.exposition_path).expect("expo");
        assert!(expo.contains("# TYPE mhd_serve_completed counter"), "{expo}");
        assert!(expo.contains("mhd_serve_completed 15"), "{expo}");
        assert!(expo.contains("mhd_serve_latency_us{quantile=\"0.99\"}"), "{expo}");

        let journal = std::fs::read_to_string(&cfg.journal_path).expect("journal");
        assert!(journal.contains("\"event\":\"queue_full\""), "{journal}");

        install_wall_ticks();
        crate::disable();
        crate::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_between_polls_degrades_to_empty_window() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        let dir = std::env::temp_dir().join("mhd_obs_reset_test");
        let _ = std::fs::create_dir_all(&dir);
        let prefix = dir.join("run").to_string_lossy().into_owned();
        let cfg = TelemetryConfig::at_prefix(&prefix, 1_000);
        let mut exporter = Exporter::create(cfg.clone()).expect("create exporter");
        crate::counter_add("serve.completed", 100);
        exporter.poll().expect("poll 1");
        crate::reset();
        crate::counter_add("serve.completed", 2);
        exporter.poll().expect("poll 2");
        let series = std::fs::read_to_string(&cfg.series_path).expect("series");
        let w1 = series.lines().nth(1).unwrap_or("");
        // 2 < 100: the saturating delta clamps to zero rather than
        // underflowing; the row simply reports no counter movement.
        assert!(!w1.contains("serve.completed"), "{w1}");
        crate::disable();
        crate::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
