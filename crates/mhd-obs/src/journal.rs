//! Structured event journal: the incident record of a serving run.
//!
//! Counters say *how many* shard panics a run absorbed; the journal says
//! *when*, in *what order*, and interleaved with what else — the record
//! an operator actually reads after a fault storm. Every event carries a
//! process-monotonic sequence id (total order even when the logical
//! clock is coarse) and a logical timestamp from the telemetry tick
//! source ([`crate::telemetry::tick_now_us`]).
//!
//! The journal is bounded ([`CAPACITY`] events): once full, new events
//! are counted in the `journal.dropped` counter instead of growing
//! without bound — a service riding out a week-long fault storm must not
//! turn its observability layer into a memory leak.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum retained events; later events are dropped (and counted).
pub const CAPACITY: usize = 65_536;

/// What happened. The set mirrors the self-healing seams in `mhd-serve`
/// and the injection plane in `mhd-fault`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A serving shard's model forward panicked (caught by supervision).
    ShardPanic {
        /// Index of the shard that panicked.
        shard: u64,
    },
    /// A panicked shard re-entered its serve loop.
    ShardRestart {
        /// Index of the shard that restarted.
        shard: u64,
    },
    /// The fallback route took over from the primary model.
    DegradedEnter,
    /// The primary model recovered; serving left degraded mode.
    DegradedExit,
    /// A submission was rejected because the bounded queue was full.
    QueueFull,
    /// The fault plane injected a fault at a seam.
    FaultInjected {
        /// Stable site name, e.g. `model_forward`.
        site: String,
    },
}

impl EventKind {
    /// Stable snake_case event name (journal schema + timeline label).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ShardPanic { .. } => "shard_panic",
            EventKind::ShardRestart { .. } => "shard_restart",
            EventKind::DegradedEnter => "degraded_enter",
            EventKind::DegradedExit => "degraded_exit",
            EventKind::QueueFull => "queue_full",
            EventKind::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The event's one optional attribute as `(key, value)`.
    pub fn attr(&self) -> Option<(&'static str, String)> {
        match self {
            EventKind::ShardPanic { shard } | EventKind::ShardRestart { shard } => {
                Some(("shard", shard.to_string()))
            }
            EventKind::FaultInjected { site } => Some(("site", site.clone())),
            _ => None,
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Process-monotonic sequence id (0-based, gap-free while under
    /// [`CAPACITY`]).
    pub seq: u64,
    /// Logical timestamp from the telemetry tick source, microseconds.
    pub tick_us: u64,
    /// What happened.
    pub kind: EventKind,
}

fn journal() -> &'static Mutex<Vec<Event>> {
    static J: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    J.get_or_init(|| Mutex::new(Vec::new()))
}

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Append one event. No-op while the sink is disabled; beyond
/// [`CAPACITY`] the event is dropped and `journal.dropped` counts it.
pub fn journal_record(kind: EventKind) {
    if !crate::is_enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tick_us = crate::telemetry::tick_now_us();
    let mut j = journal().lock().unwrap_or_else(|e| e.into_inner());
    if j.len() >= CAPACITY {
        drop(j);
        crate::counter_add("journal.dropped", 1);
        return;
    }
    j.push(Event { seq, tick_us, kind });
}

/// All retained events, in emission order.
pub fn journal_snapshot() -> Vec<Event> {
    journal().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Number of retained events.
pub fn journal_len() -> usize {
    journal().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Clear the journal and restart sequence ids from 0.
pub(crate) fn reset() {
    journal().lock().unwrap_or_else(|e| e.into_inner()).clear();
    SEQ.store(0, Ordering::Relaxed);
}

/// Render events as append-only JSONL, one event per line:
/// `{"seq":0,"tick_us":120,"event":"shard_panic","shard":"2"}`.
pub fn render_journal_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(out, "{{\"seq\":{},\"tick_us\":{},\"event\":\"{}\"", e.seq, e.tick_us, e.kind.name());
        if let Some((k, v)) = e.kind.attr() {
            let _ = write!(out, ",\"{k}\":\"{}\"", crate::manifest::json_escape(&v));
        }
        out.push_str("}\n");
    }
    out
}

/// Pull a `"key":"value"` or `"key":123` field out of one JSONL line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line.get(start..)?;
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        stripped.get(..end)
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest.get(..end)
    }
}

/// Parse one journal JSONL line back into an [`Event`] (`None` for
/// blank/foreign lines — the parser is for this module's own renderer).
pub fn parse_journal_line(line: &str) -> Option<Event> {
    let seq: u64 = field(line, "seq")?.trim().parse().ok()?;
    let tick_us: u64 = field(line, "tick_us")?.trim().parse().ok()?;
    let kind = match field(line, "event")? {
        "shard_panic" => EventKind::ShardPanic { shard: field(line, "shard")?.trim().parse().ok()? },
        "shard_restart" => {
            EventKind::ShardRestart { shard: field(line, "shard")?.trim().parse().ok()? }
        }
        "degraded_enter" => EventKind::DegradedEnter,
        "degraded_exit" => EventKind::DegradedExit,
        "queue_full" => EventKind::QueueFull,
        "fault_injected" => EventKind::FaultInjected { site: field(line, "site")?.to_string() },
        _ => return None,
    };
    Some(Event { seq, tick_us, kind })
}

/// Render the human-readable incident timeline: one line per event plus
/// a per-kind tally. `t+` offsets are the logical tick timestamps.
pub fn render_timeline(events: &[Event]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== incident timeline: {} events ==", events.len());
    for e in events {
        let attr = match e.kind.attr() {
            Some((k, v)) => format!("  {k}={v}"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  t+{:>10.6}s  #{:<6} {:<15}{attr}",
            e.tick_us as f64 / 1e6,
            e.seq,
            e.kind.name()
        );
    }
    out.push_str("-- event counts --\n");
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for e in events {
        *counts.entry(e.kind.name()).or_insert(0) += 1;
    }
    for (name, n) in &counts {
        let _ = writeln!(out, "  {name:<15} {n:>8}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_records_in_order_with_monotonic_seq() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        journal_record(EventKind::ShardPanic { shard: 2 });
        journal_record(EventKind::ShardRestart { shard: 2 });
        journal_record(EventKind::FaultInjected { site: "model_forward".into() });
        let evs = journal_snapshot();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert_eq!(evs.first().map(|e| e.kind.name()), Some("shard_panic"));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_sink_journals_nothing() {
        let _g = crate::test_guard();
        crate::disable();
        crate::reset();
        journal_record(EventKind::QueueFull);
        assert_eq!(journal_len(), 0);
    }

    #[test]
    fn jsonl_roundtrips() {
        let events = vec![
            Event { seq: 0, tick_us: 17, kind: EventKind::ShardPanic { shard: 1 } },
            Event { seq: 1, tick_us: 42, kind: EventKind::DegradedEnter },
            Event { seq: 2, tick_us: 99, kind: EventKind::FaultInjected { site: "llm_request".into() } },
            Event { seq: 3, tick_us: 120, kind: EventKind::QueueFull },
        ];
        let jsonl = render_journal_jsonl(&events);
        let parsed: Vec<Event> = jsonl.lines().filter_map(parse_journal_line).collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn timeline_lists_events_and_counts() {
        let events = vec![
            Event { seq: 0, tick_us: 1_000, kind: EventKind::ShardPanic { shard: 0 } },
            Event { seq: 1, tick_us: 2_000, kind: EventKind::ShardRestart { shard: 0 } },
            Event { seq: 2, tick_us: 2_500, kind: EventKind::ShardPanic { shard: 0 } },
        ];
        let tl = render_timeline(&events);
        assert!(tl.contains("3 events"), "{tl}");
        assert!(tl.contains("shard_panic"), "{tl}");
        assert!(tl.contains("shard=0"), "{tl}");
        assert!(tl.contains("-- event counts --"), "{tl}");
    }
}
