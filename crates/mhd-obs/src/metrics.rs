//! Counters, gauges, histograms, and lock-free kernel stat cells.
//!
//! Two tiers by call frequency:
//! - Named metrics ([`counter_add`] & friends) take a `Mutex<BTreeMap>`
//!   per call — fine for cache hits, LLM requests, artifact rows.
//! - [`StatCell`] is a `static` pair of atomics for sites that fire
//!   thousands of times per second (GEMM kernels, per-epoch timers),
//!   where a map lookup per call would distort what we are measuring.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::time::Stopwatch;

// ---------------------------------------------------------------------------
// Named counters / gauges / histograms
// ---------------------------------------------------------------------------

fn counters() -> &'static Mutex<BTreeMap<String, u64>> {
    static M: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn gauges() -> &'static Mutex<BTreeMap<String, u64>> {
    static M: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn hists() -> &'static Mutex<BTreeMap<String, Hist>> {
    static M: OnceLock<Mutex<BTreeMap<String, Hist>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(BTreeMap::new()))
}

#[derive(Debug, Clone, Default)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Add `n` to the named counter. No-op while the sink is disabled.
pub fn counter_add(name: &str, n: u64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = counters().lock().unwrap_or_else(|e| e.into_inner());
    *m.entry(name.to_string()).or_insert(0) += n;
}

/// Read one counter (0 when absent). Mostly for tests.
pub fn counter_get(name: &str) -> u64 {
    let m = counters().lock().unwrap_or_else(|e| e.into_inner());
    m.get(name).copied().unwrap_or(0)
}

/// Set the named gauge to `v` (last write wins). No-op while disabled.
pub fn gauge_set(name: &str, v: u64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = gauges().lock().unwrap_or_else(|e| e.into_inner());
    m.insert(name.to_string(), v);
}

/// Record one observation into the named histogram. No-op while disabled.
pub fn hist_record(name: &str, v: u64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = hists().lock().unwrap_or_else(|e| e.into_inner());
    let h = m.entry(name.to_string()).or_default();
    if h.count == 0 {
        h.min = v;
        h.max = v;
    } else {
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }
    h.count += 1;
    h.sum += v;
}

/// All counters, sorted by name.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// All gauges, sorted by name.
pub fn gauges_snapshot() -> BTreeMap<String, u64> {
    gauges().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Aggregate view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

/// All histograms, sorted by name.
pub fn hist_snapshot() -> BTreeMap<String, HistSummary> {
    let m = hists().lock().unwrap_or_else(|e| e.into_inner());
    m.iter()
        .map(|(k, h)| {
            (
                k.clone(),
                HistSummary { count: h.count, sum: h.sum, min: h.min, max: h.max },
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// StatCell: static atomics for hot kernels
// ---------------------------------------------------------------------------

/// A statically-allocated stat slot for a hot code path: call count plus
/// cumulative nanoseconds, updated with relaxed atomics (no lock, no map
/// lookup). Declare one per kernel:
///
/// ```
/// use mhd_obs::{StatCell, StatTimer};
/// static GEMM_NT: StatCell = StatCell::new("nn.gemm_nt");
/// fn kernel() {
///     let _t = StatTimer::start(&GEMM_NT);
///     // ... hot loop ...
/// }
/// ```
///
/// Cells register themselves into a global list on first use, so the
/// manifest only reports kernels that actually ran.
#[derive(Debug)]
pub struct StatCell {
    name: &'static str,
    calls: AtomicU64,
    ns: AtomicU64,
    registered: AtomicBool,
}

impl StatCell {
    /// Create a cell; use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        StatCell {
            name,
            calls: AtomicU64::new(0),
            ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one call taking `ns` nanoseconds.
    pub fn record(&'static self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.ns.fetch_add(ns, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            reg.push(self);
        }
    }

    /// Record an event with no duration (a pure counter cell). Unlike
    /// [`StatCell::record`] — whose callers gate via [`StatTimer`] — this
    /// checks the enabled flag itself, so call sites stay one-liners.
    pub fn bump(&'static self) {
        if !crate::is_enabled() {
            return;
        }
        self.record(0);
    }
}

fn registry() -> &'static Mutex<Vec<&'static StatCell>> {
    static R: OnceLock<Mutex<Vec<&'static StatCell>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Times one call against a [`StatCell`]; records on Drop. When the sink
/// is disabled, construction is one atomic load and Drop does nothing.
#[derive(Debug)]
#[must_use = "the timer records on Drop; binding to _ stops it immediately"]
pub struct StatTimer {
    live: Option<(&'static StatCell, Stopwatch)>,
}

impl StatTimer {
    /// Start timing against `cell` (no-op when the sink is disabled).
    #[inline]
    pub fn start(cell: &'static StatCell) -> Self {
        if !crate::is_enabled() {
            return StatTimer { live: None };
        }
        StatTimer { live: Some((cell, Stopwatch::start())) }
    }
}

impl Drop for StatTimer {
    fn drop(&mut self) {
        if let Some((cell, sw)) = self.live.take() {
            cell.record(sw.elapsed_ns());
        }
    }
}

/// Aggregate view of one [`StatCell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStat {
    /// Cell name, e.g. `nn.gemm_nt`.
    pub name: String,
    /// Number of recorded calls.
    pub calls: u64,
    /// Cumulative nanoseconds across calls.
    pub total_ns: u64,
}

/// All registered cells with at least one call, sorted by name.
pub fn kernels_snapshot() -> Vec<KernelStat> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<KernelStat> = reg
        .iter()
        .map(|c| KernelStat {
            name: c.name.to_string(),
            calls: c.calls.load(Ordering::Relaxed),
            total_ns: c.ns.load(Ordering::Relaxed),
        })
        .filter(|k| k.calls > 0)
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Clear named metrics and zero every registered cell.
pub(crate) fn reset() {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clear();
    gauges().lock().unwrap_or_else(|e| e.into_inner()).clear();
    hists().lock().unwrap_or_else(|e| e.into_inner()).clear();
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for c in reg.iter() {
        c.calls.store(0, Ordering::Relaxed);
        c.ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_CELL: StatCell = StatCell::new("test.cell");

    #[test]
    fn counters_aggregate_across_threads() {
        let _g = crate::test_guard();
        crate::enable();
        let k = "test.threads.counter";
        // Zero our key without clobbering other tests' state.
        {
            let mut m = counters().lock().unwrap_or_else(|e| e.into_inner());
            m.remove(k);
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter_add(k, 1);
                    }
                });
            }
        });
        assert_eq!(counter_get(k), 800);
    }

    #[test]
    fn histogram_tracks_min_max_sum() {
        let _g = crate::test_guard();
        crate::enable();
        let k = "test.hist";
        {
            let mut m = hists().lock().unwrap_or_else(|e| e.into_inner());
            m.remove(k);
        }
        for v in [5u64, 1, 9, 3] {
            hist_record(k, v);
        }
        let snap = hist_snapshot();
        let h = snap.get(k).expect("histogram recorded");
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 18, 1, 9));
    }

    #[test]
    fn stat_cell_times_and_registers() {
        let _g = crate::test_guard();
        crate::enable();
        {
            let _t = StatTimer::start(&TEST_CELL);
        }
        let snap = kernels_snapshot();
        let cell = snap.iter().find(|k| k.name == "test.cell").expect("registered");
        assert!(cell.calls >= 1);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = crate::test_guard();
        crate::disable();
        counter_add("test.disabled", 7);
        gauge_set("test.disabled.gauge", 7);
        hist_record("test.disabled.hist", 7);
        assert_eq!(counter_get("test.disabled"), 0);
        assert!(!gauges_snapshot().contains_key("test.disabled.gauge"));
        assert!(!hist_snapshot().contains_key("test.disabled.hist"));
        crate::enable();
    }
}
