//! Counters, gauges, histograms, and lock-free kernel stat cells.
//!
//! Two tiers by call frequency:
//! - Named metrics ([`counter_add`] & friends) take a `Mutex<BTreeMap>`
//!   per call — fine for cache hits, LLM requests, artifact rows.
//! - [`StatCell`] is a `static` pair of atomics for sites that fire
//!   thousands of times per second (GEMM kernels, per-epoch timers),
//!   where a map lookup per call would distort what we are measuring.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::bucket::BucketHist;
use crate::time::Stopwatch;

// ---------------------------------------------------------------------------
// Named counters / gauges / histograms
// ---------------------------------------------------------------------------

fn counters() -> &'static Mutex<BTreeMap<String, u64>> {
    static M: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn gauges() -> &'static Mutex<BTreeMap<String, Gauge>> {
    static M: OnceLock<Mutex<BTreeMap<String, Gauge>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn hists() -> &'static Mutex<BTreeMap<String, BucketHist>> {
    static M: OnceLock<Mutex<BTreeMap<String, BucketHist>>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A gauge keeps the last written value for the manifest plus windowed
/// min/sum/count/max so the telemetry exporter can report what happened
/// *between* snapshots (a last-write-wins value hides saturation spikes).
#[derive(Debug, Clone, Default)]
struct Gauge {
    last: u64,
    win_min: u64,
    win_max: u64,
    win_sum: u64,
    win_count: u64,
}

impl Gauge {
    fn write(&mut self, v: u64) {
        if self.win_count == 0 {
            self.win_min = v;
            self.win_max = v;
        } else {
            self.win_min = self.win_min.min(v);
            self.win_max = self.win_max.max(v);
        }
        self.win_sum = self.win_sum.saturating_add(v);
        self.win_count += 1;
        self.last = v;
    }
}

/// Per-window view of one gauge: the writes observed since the window
/// opened, plus the current (last-written) value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeWindow {
    /// Last value written (also what the manifest reports).
    pub last: u64,
    /// Smallest value written during the window.
    pub min: u64,
    /// Largest value written during the window.
    pub max: u64,
    /// Mean of the values written during the window.
    pub mean: f64,
    /// Number of writes during the window.
    pub writes: u64,
}

/// Add `n` to the named counter. No-op while the sink is disabled.
pub fn counter_add(name: &str, n: u64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = counters().lock().unwrap_or_else(|e| e.into_inner());
    // get_mut-first so the steady state (key exists) never allocates.
    match m.get_mut(name) {
        Some(v) => *v += n,
        None => {
            m.insert(name.to_string(), n);
        }
    }
}

/// Read one counter (0 when absent). Mostly for tests.
pub fn counter_get(name: &str) -> u64 {
    let m = counters().lock().unwrap_or_else(|e| e.into_inner());
    m.get(name).copied().unwrap_or(0)
}

/// Set the named gauge to `v` (last write wins for the manifest; the
/// windowed min/mean/max also see it). No-op while disabled.
pub fn gauge_set(name: &str, v: u64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = gauges().lock().unwrap_or_else(|e| e.into_inner());
    match m.get_mut(name) {
        Some(g) => g.write(v),
        None => m.entry(name.to_string()).or_default().write(v),
    }
}

/// Record one observation into the named histogram. No-op while disabled.
pub fn hist_record(name: &str, v: u64) {
    if !crate::is_enabled() {
        return;
    }
    let mut m = hists().lock().unwrap_or_else(|e| e.into_inner());
    match m.get_mut(name) {
        Some(h) => h.record(v),
        None => m.entry(name.to_string()).or_default().record(v),
    }
}

/// Record a batch of observations under one map lock — the serving
/// shard records a whole micro-batch of latencies in one call instead
/// of paying a lock round-trip per request. No-op while disabled.
pub fn hist_record_many(name: &str, values: &[u64]) {
    if values.is_empty() || !crate::is_enabled() {
        return;
    }
    let mut m = hists().lock().unwrap_or_else(|e| e.into_inner());
    let h = match m.get_mut(name) {
        Some(h) => h,
        None => m.entry(name.to_string()).or_default(),
    };
    for &v in values {
        h.record(v);
    }
}

/// All counters, sorted by name.
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// All gauges (their last-written values), sorted by name.
pub fn gauges_snapshot() -> BTreeMap<String, u64> {
    let m = gauges().lock().unwrap_or_else(|e| e.into_inner());
    m.iter().map(|(k, g)| (k.clone(), g.last)).collect()
}

/// Windowed view of every gauge written since the last call, and reset
/// the window accumulators (the last value survives). The telemetry
/// exporter calls this once per window close.
pub fn gauges_window_take() -> BTreeMap<String, GaugeWindow> {
    let mut m = gauges().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = BTreeMap::new();
    for (k, g) in m.iter_mut() {
        if g.win_count == 0 {
            continue;
        }
        out.insert(
            k.clone(),
            GaugeWindow {
                last: g.last,
                min: g.win_min,
                max: g.win_max,
                mean: g.win_sum as f64 / g.win_count as f64,
                writes: g.win_count,
            },
        );
        g.win_min = 0;
        g.win_max = 0;
        g.win_sum = 0;
        g.win_count = 0;
    }
    out
}

/// Aggregate view of one histogram, including bounded-relative-error
/// quantile estimates from the log-linear buckets (see [`crate::bucket`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Estimated 99.9th percentile.
    pub p999: u64,
}

impl HistSummary {
    /// Summarise one bucketed histogram.
    pub fn of(h: &BucketHist) -> HistSummary {
        HistSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// All histograms (summaries), sorted by name.
pub fn hist_snapshot() -> BTreeMap<String, HistSummary> {
    let m = hists().lock().unwrap_or_else(|e| e.into_inner());
    m.iter().map(|(k, h)| (k.clone(), HistSummary::of(h))).collect()
}

/// Full bucketed snapshot of every histogram, for window-delta math in
/// the telemetry exporter.
pub fn hist_buckets_snapshot() -> BTreeMap<String, BucketHist> {
    hists().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

// ---------------------------------------------------------------------------
// StatCell: static atomics for hot kernels
// ---------------------------------------------------------------------------

/// A statically-allocated stat slot for a hot code path: call count plus
/// cumulative nanoseconds, updated with relaxed atomics (no lock, no map
/// lookup). Declare one per kernel:
///
/// ```
/// use mhd_obs::{StatCell, StatTimer};
/// static GEMM_NT: StatCell = StatCell::new("nn.gemm_nt");
/// fn kernel() {
///     let _t = StatTimer::start(&GEMM_NT);
///     // ... hot loop ...
/// }
/// ```
///
/// Cells register themselves into a global list on first use, so the
/// manifest only reports kernels that actually ran.
#[derive(Debug)]
pub struct StatCell {
    name: &'static str,
    calls: AtomicU64,
    ns: AtomicU64,
    registered: AtomicBool,
}

impl StatCell {
    /// Create a cell; use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        StatCell {
            name,
            calls: AtomicU64::new(0),
            ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one call taking `ns` nanoseconds.
    pub fn record(&'static self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.ns.fetch_add(ns, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            reg.push(self);
        }
    }

    /// Record an event with no duration (a pure counter cell). Unlike
    /// [`StatCell::record`] — whose callers gate via [`StatTimer`] — this
    /// checks the enabled flag itself, so call sites stay one-liners.
    pub fn bump(&'static self) {
        if !crate::is_enabled() {
            return;
        }
        self.record(0);
    }
}

fn registry() -> &'static Mutex<Vec<&'static StatCell>> {
    static R: OnceLock<Mutex<Vec<&'static StatCell>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Times one call against a [`StatCell`]; records on Drop. When the sink
/// is disabled, construction is one atomic load and Drop does nothing.
#[derive(Debug)]
#[must_use = "the timer records on Drop; binding to _ stops it immediately"]
pub struct StatTimer {
    live: Option<(&'static StatCell, Stopwatch)>,
}

impl StatTimer {
    /// Start timing against `cell` (no-op when the sink is disabled).
    #[inline]
    pub fn start(cell: &'static StatCell) -> Self {
        if !crate::is_enabled() {
            return StatTimer { live: None };
        }
        StatTimer { live: Some((cell, Stopwatch::start())) }
    }
}

impl Drop for StatTimer {
    fn drop(&mut self) {
        if let Some((cell, sw)) = self.live.take() {
            cell.record(sw.elapsed_ns());
        }
    }
}

/// Aggregate view of one [`StatCell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStat {
    /// Cell name, e.g. `nn.gemm_nt`.
    pub name: String,
    /// Number of recorded calls.
    pub calls: u64,
    /// Cumulative nanoseconds across calls.
    pub total_ns: u64,
}

/// All registered cells with at least one call, sorted by name.
pub fn kernels_snapshot() -> Vec<KernelStat> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<KernelStat> = reg
        .iter()
        .map(|c| KernelStat {
            name: c.name.to_string(),
            calls: c.calls.load(Ordering::Relaxed),
            total_ns: c.ns.load(Ordering::Relaxed),
        })
        .filter(|k| k.calls > 0)
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Clear named metrics and zero every registered cell.
pub(crate) fn reset() {
    counters().lock().unwrap_or_else(|e| e.into_inner()).clear();
    gauges().lock().unwrap_or_else(|e| e.into_inner()).clear();
    hists().lock().unwrap_or_else(|e| e.into_inner()).clear();
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for c in reg.iter() {
        c.calls.store(0, Ordering::Relaxed);
        c.ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_CELL: StatCell = StatCell::new("test.cell");

    #[test]
    fn counters_aggregate_across_threads() {
        let _g = crate::test_guard();
        crate::enable();
        let k = "test.threads.counter";
        // Zero our key without clobbering other tests' state.
        {
            let mut m = counters().lock().unwrap_or_else(|e| e.into_inner());
            m.remove(k);
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter_add(k, 1);
                    }
                });
            }
        });
        assert_eq!(counter_get(k), 800);
    }

    #[test]
    fn histogram_tracks_min_max_sum() {
        let _g = crate::test_guard();
        crate::enable();
        let k = "test.hist";
        {
            let mut m = hists().lock().unwrap_or_else(|e| e.into_inner());
            m.remove(k);
        }
        for v in [5u64, 1, 9, 3] {
            hist_record(k, v);
        }
        let snap = hist_snapshot();
        let h = snap.get(k).expect("histogram recorded");
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 18, 1, 9));
        // Small values are bucketed exactly, so quantiles are exact too.
        assert_eq!((h.p50, h.p95, h.p99, h.p999), (3, 9, 9, 9));
    }

    #[test]
    fn hist_record_many_matches_singles() {
        let _g = crate::test_guard();
        crate::enable();
        let (a, b) = ("test.hist.many", "test.hist.single");
        {
            let mut m = hists().lock().unwrap_or_else(|e| e.into_inner());
            m.remove(a);
            m.remove(b);
        }
        let vals = [40u64, 7, 1999, 40];
        hist_record_many(a, &vals);
        for v in vals {
            hist_record(b, v);
        }
        let snap = hist_snapshot();
        assert_eq!(snap.get(a), snap.get(b));
    }

    #[test]
    fn gauge_window_tracks_min_mean_max() {
        let _g = crate::test_guard();
        crate::enable();
        let k = "test.gauge.window";
        {
            let mut m = gauges().lock().unwrap_or_else(|e| e.into_inner());
            m.remove(k);
        }
        let _ = gauges_window_take();
        for v in [4u64, 18, 2, 8] {
            gauge_set(k, v);
        }
        let win = gauges_window_take();
        let g = win.get(k).expect("gauge windowed");
        assert_eq!((g.min, g.max, g.last, g.writes), (2, 18, 8, 4));
        assert!((g.mean - 8.0).abs() < 1e-9);
        // The window reset: no writes since, so the gauge drops out of
        // the next window while its last value survives in the snapshot.
        assert!(!gauges_window_take().contains_key(k));
        assert_eq!(gauges_snapshot().get(k), Some(&8));
    }

    #[test]
    fn stat_cell_times_and_registers() {
        let _g = crate::test_guard();
        crate::enable();
        {
            let _t = StatTimer::start(&TEST_CELL);
        }
        let snap = kernels_snapshot();
        let cell = snap.iter().find(|k| k.name == "test.cell").expect("registered");
        assert!(cell.calls >= 1);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = crate::test_guard();
        crate::disable();
        counter_add("test.disabled", 7);
        gauge_set("test.disabled.gauge", 7);
        hist_record("test.disabled.hist", 7);
        assert_eq!(counter_get("test.disabled"), 0);
        assert!(!gauges_snapshot().contains_key("test.disabled.gauge"));
        assert!(!hist_snapshot().contains_key("test.disabled.hist"));
        crate::enable();
    }
}
