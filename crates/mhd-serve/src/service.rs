//! Micro-batched request service: a bounded queue coalesces incoming
//! posts into size- or deadline-triggered batches served by a shard
//! pool of worker threads.
//!
//! Every model behind the service predicts each row independently
//! (no cross-row state in `predict_proba_batch` / `forward_batch`), so
//! coalescing is invisible to callers: a request's prediction is
//! byte-identical whatever batch it lands in — the property pinned by
//! the serve-vs-offline determinism test.
//!
//! Admission control is explicit: a full queue returns
//! [`ServeError::QueueFull`], a stopping service returns
//! [`ServeError::ShuttingDown`]. Nothing on the request path panics.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use mhd_obs::time::Stopwatch;
use mhd_obs::{
    counter_add, gauge_set, hist_record, hist_record_many, journal_record, span, EventKind,
    StatCell,
};

/// Admission counters live in atomic stat cells, not the mutex-backed
/// counter map: they are bumped once per request on the submit hot path,
/// where a global map lookup would be a measurable tax at saturation.
static C_ACCEPTED: StatCell = StatCell::new("serve.accepted");
static C_REJECTED: StatCell = StatCell::new("serve.rejected");

/// A model the service can batch requests into. Implementations must
/// predict each input row independently of its batchmates; the service
/// relies on this for serve-vs-offline determinism.
pub trait BatchModel: Send + Sync + 'static {
    /// One request's payload (e.g. a feature vector or token ids).
    type Input: Send + 'static;

    /// Stable label used in spans and metric names.
    fn label(&self) -> &'static str;

    /// Batched probability forward over `inputs`, one row per input.
    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>>;
}

impl BatchModel for mhd_nn::Mlp {
    type Input = Vec<f32>;

    fn label(&self) -> &'static str {
        "mlp_f32"
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        self.predict_proba_batch(inputs)
    }
}

impl BatchModel for mhd_nn::QuantizedMlp {
    type Input = Vec<f32>;

    fn label(&self) -> &'static str {
        "mlp_int8"
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        self.predict_proba_batch(inputs)
    }
}

impl BatchModel for mhd_nn::Encoder {
    type Input = Vec<u32>;

    fn label(&self) -> &'static str {
        "encoder_f32"
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        self.predict_proba_batch(inputs)
    }
}

impl BatchModel for mhd_nn::QuantizedEncoder {
    type Input = Vec<u32>;

    fn label(&self) -> &'static str {
        "encoder_int8"
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        self.predict_proba_batch(inputs)
    }
}

/// Queue and batching knobs for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush a batch as soon as this many requests are queued.
    /// `1` disables coalescing (batch-size-1 serving).
    pub max_batch: usize,
    /// Deadline trigger, in microseconds: the hard bound on how long a
    /// partial batch may coalesce. A partial batch also flushes early
    /// once it stops growing (stall probe), so the service stays
    /// work-conserving when every client is blocked on a reply.
    pub max_wait_us: u64,
    /// Admission-control bound: submissions beyond this depth are
    /// rejected with [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Worker threads draining the queue.
    pub shards: usize,
    /// Per-request deadline, microseconds. A request still queued this
    /// long after submission is failed with
    /// [`ServeError::DeadlineExceeded`] instead of being served stale.
    /// `0` disables deadlines (the pre-hardening behaviour).
    pub deadline_us: u64,
    /// Restart-storm cap: how many panics one shard survives before it
    /// stays down. When the *last* live shard exhausts its cap the
    /// service closes admission and fails the backlog with
    /// [`ServeError::ShardFailed`] — nothing is ever silently dropped.
    pub max_restarts: u32,
    /// Record every `latency_sample`-th per-request latency into the
    /// `serve.latency_us` histogram. Defaults to `1` (record every
    /// request): the log-linear bucketed histogram makes a full record
    /// two array increments, so sampling is a tuning escape hatch, not
    /// the default. Overridable at startup via `MHD_LATENCY_SAMPLE`.
    pub latency_sample: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait_us: 500,
            queue_cap: 1024,
            shards: 2,
            deadline_us: 0,
            max_restarts: 8,
            latency_sample: 1,
        }
    }
}

impl ServeConfig {
    fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self.shards = self.shards.max(1);
        self.latency_sample = self.latency_sample.max(1);
        self
    }

    /// Apply startup environment overrides (`MHD_LATENCY_SAMPLE`).
    /// Unparsable values are ignored in favour of the configured one.
    fn with_env_overrides(mut self) -> Self {
        if let Some(v) = std::env::var("MHD_LATENCY_SAMPLE")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            self.latency_sample = v.max(1);
        }
        self
    }
}

/// Typed rejection/failure surface of the service. Admission control
/// and shutdown are expressed here, never as panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is at capacity; the caller should back off.
    QueueFull {
        /// The configured admission bound that was hit.
        cap: usize,
    },
    /// The service is stopping and no longer admits requests.
    ShuttingDown,
    /// The worker dropped the reply channel without answering.
    Disconnected,
    /// The shard serving this request's batch panicked. The shard
    /// restarts from the shared mapped zoo (up to the restart-storm
    /// cap); the in-flight batch is failed here rather than re-run,
    /// since the panic may be input-dependent.
    ShardFailed {
        /// Index of the shard that panicked.
        shard: usize,
    },
    /// The request sat queued past the configured per-request deadline
    /// and was failed instead of served stale.
    DeadlineExceeded {
        /// The configured deadline that was exceeded, microseconds.
        deadline_us: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { cap } => {
                write!(f, "request queue full (cap {cap}); backpressure applied")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Disconnected => write!(f, "worker dropped the reply channel"),
            ServeError::ShardFailed { shard } => {
                write!(f, "shard {shard} panicked while serving the batch")
            }
            ServeError::DeadlineExceeded { deadline_us } => {
                write!(f, "request exceeded its {deadline_us} us deadline in queue")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One-shot reply slot between a shard and one waiting client. A
/// purpose-built slot instead of an `mpsc` pair because it sits on the
/// per-request hot path: one `Arc` allocation per request (an `mpsc`
/// channel costs several), no allocation on send, and an uncontended
/// fast path when the reply landed before the client started waiting.
#[derive(Debug)]
struct ReplySlot {
    state: Mutex<ReplyState>,
    cv: Condvar,
}

#[derive(Debug)]
enum ReplyState {
    Waiting,
    Ready(Vec<f32>),
    /// The request failed with a typed error (shard panic, deadline);
    /// the waiting client receives it from [`Ticket::wait`].
    Failed(ServeError),
    /// The sender dropped without answering (only possible if a shard
    /// died mid-batch; normal shutdown drains every accepted request).
    Abandoned,
}

/// Sending half of a [`ReplySlot`]; dropping it unanswered marks the
/// slot abandoned so the waiting client gets [`ServeError::Disconnected`]
/// instead of blocking forever.
#[derive(Debug)]
struct ReplySender {
    slot: Arc<ReplySlot>,
    sent: bool,
}

impl ReplySender {
    fn new() -> (ReplySender, Ticket) {
        let slot =
            Arc::new(ReplySlot { state: Mutex::new(ReplyState::Waiting), cv: Condvar::new() });
        (ReplySender { slot: Arc::clone(&slot), sent: false }, Ticket { slot })
    }

    fn send(mut self, row: Vec<f32>) {
        {
            let mut st = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            *st = ReplyState::Ready(row);
        }
        self.sent = true;
        // No-op unless the client is already parked in `wait`.
        self.slot.cv.notify_one();
    }

    /// Resolve the request with a typed error instead of a prediction;
    /// the waiting client gets `Err(err)` from [`Ticket::wait`].
    fn fail(mut self, err: ServeError) {
        {
            let mut st = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            *st = ReplyState::Failed(err);
        }
        self.sent = true;
        self.slot.cv.notify_one();
    }
}

impl Drop for ReplySender {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        {
            let mut st = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            if matches!(*st, ReplyState::Waiting) {
                *st = ReplyState::Abandoned;
            }
        }
        self.slot.cv.notify_one();
    }
}

/// One queued request: payload, reply slot, and its enqueue clock
/// (drives both the deadline trigger and the latency histogram).
struct Pending<I> {
    input: I,
    reply: ReplySender,
    enqueued: Stopwatch,
}

struct QueueState<I> {
    items: VecDeque<Pending<I>>,
    open: bool,
    /// Shards still serving. When the last one exits with panics left
    /// on its restart budget sheet, admission closes and the backlog is
    /// failed typed — the queue can never strand a request.
    live: usize,
}

struct Shared<I> {
    state: Mutex<QueueState<I>>,
    cv: Condvar,
}

fn locked<I>(shared: &Shared<I>) -> MutexGuard<'_, QueueState<I>> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle for one submitted request; [`Ticket::wait`] blocks until the
/// micro-batch containing the request has been served.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl Ticket {
    /// Block until the prediction arrives.
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        let mut st = self.slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        while matches!(*st, ReplyState::Waiting) {
            st = self.slot.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        match std::mem::replace(&mut *st, ReplyState::Abandoned) {
            ReplyState::Ready(row) => Ok(row),
            ReplyState::Failed(err) => Err(err),
            _ => Err(ServeError::Disconnected),
        }
    }
}

/// A long-running in-process detection service over one [`BatchModel`].
///
/// Dropping the service closes admission, drains every already-accepted
/// request, and joins the shard pool.
pub struct Service<M: BatchModel> {
    shared: Arc<Shared<M::Input>>,
    cfg: ServeConfig,
    workers: Vec<JoinHandle<()>>,
    label: &'static str,
}

impl<M: BatchModel> fmt::Debug for Service<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("model", &self.label)
            .field("cfg", &self.cfg)
            .field("shards", &self.workers.len())
            .finish()
    }
}

impl<M: BatchModel> Service<M> {
    /// Start the shard pool over a shared read-only model.
    pub fn start(model: Arc<M>, cfg: ServeConfig) -> Self {
        let cfg = cfg.normalized().with_env_overrides();
        let label = model.label();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { items: VecDeque::new(), open: true, live: cfg.shards }),
            cv: Condvar::new(),
        });
        let workers = (0..cfg.shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                let model = Arc::clone(&model);
                std::thread::spawn(move || shard_loop(&shared, model.as_ref(), cfg, shard))
            })
            .collect();
        Service { shared, cfg, workers, label }
    }

    /// The normalized configuration the service is running with.
    pub fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// Enqueue one request. Returns a [`Ticket`] to wait on, or a typed
    /// rejection when the queue is full or the service is stopping.
    pub fn submit(&self, input: M::Input) -> Result<Ticket, ServeError> {
        let (reply, ticket) = ReplySender::new();
        {
            let mut st = locked(&self.shared);
            if !st.open {
                return Err(ServeError::ShuttingDown);
            }
            if st.items.len() >= self.cfg.queue_cap {
                C_REJECTED.bump();
                journal_record(EventKind::QueueFull);
                return Err(ServeError::QueueFull { cap: self.cfg.queue_cap });
            }
            st.items.push_back(Pending { input, reply, enqueued: Stopwatch::start() });
            C_ACCEPTED.bump();
            // The queue-depth gauge is refreshed per batch in
            // `next_batch`, not per submission — one gauge write per
            // flush is plenty for observability and keeps the submit
            // path free of the metric-map mutex.
        }
        self.shared.cv.notify_one();
        Ok(ticket)
    }

    /// Submit and block for the prediction (closed-loop client call).
    pub fn predict(&self, input: M::Input) -> Result<Vec<f32>, ServeError> {
        self.submit(input)?.wait()
    }

    /// Close admission and wake every shard so the queue drains.
    fn close(&self) {
        {
            let mut st = locked(&self.shared);
            st.open = false;
        }
        self.shared.cv.notify_all();
    }
}

impl<M: BatchModel> Drop for Service<M> {
    fn drop(&mut self) {
        self.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Collect the next micro-batch, blocking on the condvar until a
/// trigger fires: size (`max_batch` queued), deadline (oldest request
/// waited `max_wait_us`), stall (a partial batch stopped growing — in a
/// closed loop every client may already be blocked on a reply, so
/// waiting out the deadline would be pure idle loss), or shutdown
/// (drain the remainder). Returns `None` when the queue is closed and
/// empty.
fn next_batch<I>(shared: &Shared<I>, cfg: ServeConfig) -> Option<Vec<Pending<I>>> {
    // Stall probe: how long a partial batch may go without growth
    // before it is flushed anyway. Kept well under the deadline so the
    // service stays work-conserving.
    let probe_us = (cfg.max_wait_us / 8).clamp(1, cfg.max_wait_us.max(1));
    let mut st = locked(shared);
    loop {
        if !st.open && st.items.is_empty() {
            return None;
        }
        if !st.open || st.items.len() >= cfg.max_batch {
            break;
        }
        match st.items.front() {
            Some(front) => {
                let waited_us = front.enqueued.elapsed_ns() / 1_000;
                if waited_us >= cfg.max_wait_us {
                    break;
                }
                let remain_us = (cfg.max_wait_us - waited_us).min(probe_us);
                let before = st.items.len();
                st = match shared.cv.wait_timeout(st, Duration::from_micros(remain_us)) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
                if st.items.len() == before {
                    // No growth within the probe window: flush what we
                    // have rather than idling toward the deadline.
                    break;
                }
            }
            None => {
                st = match shared.cv.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
    }
    let n = st.items.len().min(cfg.max_batch);
    let batch: Vec<Pending<I>> = st.items.drain(..n).collect();
    gauge_set("serve.queue_depth", st.items.len() as u64);
    let more = !st.items.is_empty();
    drop(st);
    if more {
        // Leftover work: hand it to another shard without waiting for
        // the next submit-side notify.
        shared.cv.notify_one();
    }
    Some(batch)
}

/// One shard's serve loop: gather a micro-batch, run the model once
/// under panic supervision, fan the per-row predictions back out to
/// their reply channels.
///
/// Supervision semantics: `catch_unwind` wraps only the model forward.
/// A panic fails the in-flight batch with [`ServeError::ShardFailed`]
/// (the panic may be input-dependent, so re-running it could loop
/// forever) and the shard "restarts" — the model is `Arc`-shared from
/// the mapped zoo, so restart is simply re-entering the loop; there is
/// no per-shard state to rebuild. A restart-storm cap
/// ([`ServeConfig::max_restarts`]) bounds how many panics one shard
/// absorbs; the last live shard to exhaust its cap closes admission and
/// fails the backlog typed so no request is ever stranded.
fn shard_loop<M: BatchModel>(shared: &Shared<M::Input>, model: &M, cfg: ServeConfig, shard: usize) {
    let mut served = 0u64;
    let mut restarts = 0u32;
    while let Some(batch) = next_batch(shared, cfg) {
        let _s = span("serve.batch");
        let sw = Stopwatch::start();
        // predict_batch wants a contiguous slice of inputs; move the
        // payloads out of the batch while keeping reply order.
        let mut replies = Vec::with_capacity(batch.len());
        let mut rows = Vec::with_capacity(batch.len());
        for p in batch {
            // Deadline check happens at dequeue: a request that sat
            // queued past its budget is failed, not served stale.
            if cfg.deadline_us > 0 && p.enqueued.elapsed_ns() / 1_000 > cfg.deadline_us {
                counter_add("serve.deadline_exceeded", 1);
                counter_add("serve.failed", 1);
                p.reply.fail(ServeError::DeadlineExceeded { deadline_us: cfg.deadline_us });
                continue;
            }
            rows.push(p.input);
            replies.push((p.reply, p.enqueued));
        }
        if rows.is_empty() {
            continue;
        }
        // The models are pure `&self` forwards (no interior mutability
        // on the predict path), so observing state across the unwind
        // boundary is sound.
        let caught = catch_unwind(AssertUnwindSafe(|| model.predict_batch(&rows)));
        let probs = match caught {
            Ok(p) => p,
            Err(_) => {
                counter_add("serve.shard_panics", 1);
                counter_add("serve.failed", replies.len() as u64);
                journal_record(EventKind::ShardPanic { shard: shard as u64 });
                for (reply, _) in replies {
                    reply.fail(ServeError::ShardFailed { shard });
                }
                restarts += 1;
                if restarts > cfg.max_restarts {
                    // Storm cap exhausted: this shard stays down.
                    break;
                }
                counter_add("serve.shard_restarts", 1);
                journal_record(EventKind::ShardRestart { shard: shard as u64 });
                continue;
            }
        };
        hist_record("serve.batch_size", rows.len() as u64);
        hist_record("serve.batch_ns", sw.elapsed_ns());
        counter_add("serve.completed", rows.len() as u64);
        // One histogram-map lock per batch, not per reply: sampled
        // latencies are staged locally and recorded in a single call.
        let record = mhd_obs::is_enabled();
        let mut lats: Vec<u64> = Vec::new();
        for (row, (reply, enqueued)) in probs.into_iter().zip(replies) {
            if record && served.is_multiple_of(cfg.latency_sample) {
                lats.push(enqueued.elapsed_ns() / 1_000);
            }
            served = served.wrapping_add(1);
            // A dropped Ticket just means the client stopped waiting.
            reply.send(row);
        }
        hist_record_many("serve.latency_us", &lats);
    }
    // Shard exit — normal shutdown or storm cap. If this was the last
    // live shard, nothing will drain the queue anymore: close admission
    // and fail the backlog typed rather than stranding the waiters.
    let mut st = locked(shared);
    st.live = st.live.saturating_sub(1);
    if st.live == 0 {
        st.open = false;
        let stranded: Vec<Pending<M::Input>> = st.items.drain(..).collect();
        drop(st);
        if !stranded.is_empty() {
            counter_add("serve.failed", stranded.len() as u64);
        }
        for p in stranded {
            p.reply.fail(ServeError::ShardFailed { shard });
        }
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_nn::Mlp;

    fn tiny_mlp() -> Arc<Mlp> {
        Arc::new(Mlp::new(6, 8, 3, 0.05, 11))
    }

    fn posts(n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..6).map(|j| ((i * 7 + j) % 13) as f32 / 13.0 - 0.5).collect()).collect()
    }

    #[test]
    fn coalesced_predictions_match_offline_batch() {
        let model = tiny_mlp();
        let xs = posts(97);
        let offline = model.predict_proba_batch(&xs);
        let svc = Service::start(
            Arc::clone(&model),
            ServeConfig { max_batch: 8, max_wait_us: 200, queue_cap: 256, shards: 3, ..ServeConfig::default() },
        );
        let tickets: Vec<Ticket> =
            xs.iter().map(|x| svc.submit(x.clone()).expect("admitted")).collect();
        for (t, want) in tickets.into_iter().zip(&offline) {
            let got = t.wait().expect("served");
            assert_eq!(got, *want, "micro-batched row must be byte-identical");
        }
    }

    #[test]
    fn queue_full_is_typed_rejection_and_drains_on_drop() {
        let model = tiny_mlp();
        // One shard that will wait ~forever for a size trigger it can
        // never see, so the queue fills deterministically.
        let cfg = ServeConfig {
            max_batch: 64,
            max_wait_us: 60_000_000,
            queue_cap: 4,
            shards: 1,
            ..ServeConfig::default()
        };
        let svc = Service::start(model, cfg);
        let xs = posts(5);
        let mut tickets = Vec::new();
        for x in xs.iter().take(4) {
            tickets.push(svc.submit(x.clone()).expect("under cap"));
        }
        let last = xs.last().expect("five posts").clone();
        match svc.submit(last) {
            Err(ServeError::QueueFull { cap }) => assert_eq!(cap, 4),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Dropping the service closes admission and drains the backlog.
        drop(svc);
        for t in tickets {
            let row = t.wait().expect("drained on shutdown");
            assert_eq!(row.len(), 3);
        }
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let model = tiny_mlp();
        let svc = Service::start(model, ServeConfig::default());
        svc.close();
        let post = posts(1).first().expect("one post").clone();
        assert_eq!(svc.submit(post).unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn config_is_normalized() {
        let cfg = ServeConfig {
            max_batch: 0,
            max_wait_us: 10,
            queue_cap: 0,
            shards: 0,
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!((cfg.max_batch, cfg.queue_cap, cfg.shards), (1, 1, 1));
    }

    #[test]
    fn errors_render_and_compare() {
        let e = ServeError::QueueFull { cap: 9 };
        assert!(e.to_string().contains("cap 9"));
        assert_ne!(e, ServeError::ShuttingDown);
        assert!(ServeError::Disconnected.to_string().contains("reply"));
        assert!(ServeError::ShardFailed { shard: 2 }.to_string().contains("shard 2"));
        let d = ServeError::DeadlineExceeded { deadline_us: 500 };
        assert!(d.to_string().contains("500 us"));
    }

    /// A model whose forward panics whenever the first feature of the
    /// first row is negative — input-dependent, like real panics.
    struct TrapModel;

    impl BatchModel for TrapModel {
        type Input = Vec<f32>;

        fn label(&self) -> &'static str {
            "trap"
        }

        fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
            for x in inputs {
                assert!(x.first().copied().unwrap_or(0.0) >= 0.0, "trap sprung");
            }
            inputs.iter().map(|x| vec![x.iter().sum::<f32>()]).collect()
        }
    }

    #[test]
    fn shard_panic_fails_batch_typed_and_service_recovers() {
        let svc = Service::start(
            Arc::new(TrapModel),
            ServeConfig { max_batch: 1, max_wait_us: 50, shards: 1, ..ServeConfig::default() },
        );
        // Trip the trap: the victim gets a typed error, not a hang.
        let bad = svc.submit(vec![-1.0, 0.5]).expect("admitted");
        assert_eq!(bad.wait().unwrap_err(), ServeError::ShardFailed { shard: 0 });
        // The shard restarted: clean requests keep being served.
        let good = svc.predict(vec![1.0, 2.0]).expect("served after restart");
        assert_eq!(good, vec![3.0]);
    }

    #[test]
    fn restart_storm_cap_drains_backlog_with_typed_errors() {
        let cfg = ServeConfig {
            max_batch: 1,
            max_wait_us: 50,
            queue_cap: 64,
            shards: 1,
            max_restarts: 2,
            ..ServeConfig::default()
        };
        let svc = Service::start(Arc::new(TrapModel), cfg);
        // Feed panics past the cap plus trailing requests that may end
        // up stranded behind the death of the only shard. Late submits
        // may race the shard's death and be rejected at admission; both
        // outcomes are typed, nothing hangs.
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for _ in 0..16 {
            match svc.submit(vec![-1.0]) {
                Ok(t) => tickets.push(t),
                Err(ServeError::ShuttingDown) => rejected += 1,
                Err(e) => panic!("unexpected admission error {e:?}"),
            }
        }
        let mut failed = 0;
        for t in tickets {
            match t.wait() {
                Err(ServeError::ShardFailed { .. }) => failed += 1,
                other => panic!("expected ShardFailed, got {other:?}"),
            }
        }
        assert_eq!(failed + rejected, 16, "every request resolved, typed");
        assert!(failed >= 3, "at least cap+1 batches were admitted, got {failed}");
        // Admission is closed once the pool is gone.
        assert_eq!(svc.submit(vec![1.0]).unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn expired_requests_get_deadline_errors_fresh_ones_are_served() {
        let model = tiny_mlp();
        // Single shard blocked on a size trigger it can never reach, so
        // submissions age in queue past the 1ms deadline.
        let cfg = ServeConfig {
            max_batch: 64,
            max_wait_us: 60_000_000,
            queue_cap: 8,
            shards: 1,
            deadline_us: 1_000,
            ..ServeConfig::default()
        };
        let svc = Service::start(model, cfg);
        let t = svc.submit(posts(1).remove(0)).expect("admitted");
        std::thread::sleep(Duration::from_millis(20));
        // Shutdown flushes the queue; the aged request must come back
        // as DeadlineExceeded, not as a stale prediction.
        drop(svc);
        assert_eq!(t.wait().unwrap_err(), ServeError::DeadlineExceeded { deadline_us: 1_000 });
    }
}
