//! Deterministic synthetic traffic: seeded arrival processes and post
//! feature streams for the load harness. Everything here is a pure
//! function of its spec + seed — two runs with the same spec produce
//! byte-identical schedules, which is what makes `BENCH_serve.json`
//! comparable across machines and commits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the arrival process over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Poisson arrivals at a constant rate.
    Steady,
    /// On/off Markov phases: bursts at 4× the base rate separated by
    /// lulls at 1/4 of it (mean rate stays near the base rate).
    Bursty,
    /// Sinusoidal rate swing (±80% around the base) over one "day"
    /// compressed into the run — the social-media diurnal cycle.
    Diurnal,
}

impl ArrivalPattern {
    /// Stable name used in bench output rows.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalPattern::Steady => "steady",
            ArrivalPattern::Bursty => "bursty",
            ArrivalPattern::Diurnal => "diurnal",
        }
    }
}

/// A deterministic traffic schedule spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Arrival process shape.
    pub pattern: ArrivalPattern,
    /// Base arrival rate in posts per second.
    pub rate_per_sec: f64,
    /// Number of posts in the stream.
    pub n: usize,
    /// RNG seed; same seed, same schedule.
    pub seed: u64,
}

/// Cumulative arrival offsets in nanoseconds from stream start, one per
/// post, non-decreasing. An open-loop driver sleeps to each offset
/// before submitting; a closed-loop driver ignores the schedule.
pub fn arrival_offsets_ns(spec: &TrafficSpec) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed_74af_f1c0_0de5);
    let base = spec.rate_per_sec.max(1e-3);
    // One simulated "day" spans the whole stream for the diurnal swing.
    let day_secs = (spec.n as f64 / base).max(1e-6);
    let mut t_ns: u64 = 0;
    let mut out = Vec::with_capacity(spec.n);
    // Bursty phase state: (in_burst, arrivals left in this phase).
    let mut in_burst = true;
    let mut phase_left = 0usize;
    for _ in 0..spec.n {
        let rate = match spec.pattern {
            ArrivalPattern::Steady => base,
            ArrivalPattern::Bursty => {
                if phase_left == 0 {
                    in_burst = !in_burst;
                    phase_left = rng.gen_range(8..=32);
                }
                phase_left -= 1;
                if in_burst {
                    base * 4.0
                } else {
                    base * 0.25
                }
            }
            ArrivalPattern::Diurnal => {
                let t_secs = t_ns as f64 / 1e9;
                let phase = 2.0 * std::f64::consts::PI * (t_secs / day_secs);
                base * (1.0 + 0.8 * phase.sin()).max(0.05)
            }
        };
        // Exponential inter-arrival via inverse CDF; clamp u away from 0
        // so ln stays finite.
        let u: f64 = rng.gen_range(1e-12..1.0);
        let gap_secs = -u.ln() / rate;
        t_ns = t_ns.saturating_add((gap_secs * 1e9) as u64);
        out.push(t_ns);
    }
    out
}

/// A deterministic stream of post feature vectors in `[-1, 1)`,
/// `n × dim`, seeded independently of the arrival schedule.
pub fn synthetic_posts(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0_f32..1.0)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_monotone() {
        for pattern in [ArrivalPattern::Steady, ArrivalPattern::Bursty, ArrivalPattern::Diurnal] {
            let spec = TrafficSpec { pattern, rate_per_sec: 5000.0, n: 500, seed: 42 };
            let a = arrival_offsets_ns(&spec);
            let b = arrival_offsets_ns(&spec);
            assert_eq!(a, b, "{} schedule must be reproducible", pattern.name());
            assert_eq!(a.len(), 500);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets non-decreasing");
        }
    }

    #[test]
    fn patterns_differ_and_rates_are_plausible() {
        let mk = |pattern| TrafficSpec { pattern, rate_per_sec: 1000.0, n: 2000, seed: 7 };
        let steady = arrival_offsets_ns(&mk(ArrivalPattern::Steady));
        let bursty = arrival_offsets_ns(&mk(ArrivalPattern::Bursty));
        assert_ne!(steady, bursty);
        // Mean rate of the steady stream should be near the base rate.
        let total_secs = *steady.last().expect("nonempty") as f64 / 1e9;
        let rate = 2000.0 / total_secs;
        assert!((500.0..2000.0).contains(&rate), "steady rate ~1000/s, got {rate}");
    }

    #[test]
    fn posts_are_seeded_and_bounded() {
        let a = synthetic_posts(20, 16, 3);
        let b = synthetic_posts(20, 16, 3);
        let c = synthetic_posts(20, 16, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().flatten().all(|v| (-1.0..1.0).contains(v)));
    }
}
