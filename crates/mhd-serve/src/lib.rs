//! `mhd-serve` — micro-batched online inference for the detection
//! models, turning the repo's batch kernels into a long-running
//! service.
//!
//! The paper's detection task is a monitoring workload over a
//! continuous post stream, not a one-shot batch job. This crate
//! provides the serving layer:
//!
//! * [`Service`] — a bounded request queue coalescing posts into
//!   micro-batches (size- and deadline-triggered) served by a shard
//!   pool over any [`BatchModel`]; admission control rejects with
//!   typed [`ServeError`]s, never panics.
//! * [`ModelZoo`] — f32 + int8 model variants decoded from **one**
//!   [`mhd_nn::MappedCheckpoint`] buffer shared read-only across
//!   shards.
//! * [`traffic`] — seeded arrival processes (steady, bursty, diurnal)
//!   and synthetic post streams for the load harness in `mhd-bench`.
//! * [`resilience`] — the self-healing layer: shard supervision
//!   (`catch_unwind` around the model forward, typed
//!   [`ServeError::ShardFailed`], restart-storm cap), per-request
//!   deadlines, and [`FallbackModel`] degraded-mode serving, driven in
//!   chaos tests by the seeded `mhd-fault` injection plane.
//!
//! Everything observable goes through `mhd-obs`: per-batch spans,
//! `serve.queue_depth` gauges, `serve.batch_size` / `serve.latency_us`
//! histograms, and admission counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod resilience;
pub mod service;
pub mod traffic;
pub mod zoo;

pub use mhd_nn::quant::Precision;
pub use resilience::{FallbackModel, FaultyModel};
pub use service::{BatchModel, ServeConfig, ServeError, Service, Ticket};
pub use zoo::{MlpVariant, ModelZoo};
