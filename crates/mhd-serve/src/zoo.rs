//! Model zoo for the serving process: every precision variant decoded
//! from **one** [`MappedCheckpoint`] buffer shared read-only across
//! shards, loaded once at startup.

use std::path::Path;
use std::sync::Arc;

use mhd_fault::{retry_transient, FaultInjector, RetryPolicy};
use mhd_nn::checkpoint::Writer;
use mhd_nn::quant::Precision;
use mhd_nn::{Checkpoint, CheckpointError, MappedCheckpoint, Mlp, QuantizedMlp};
use mhd_obs::time::Stopwatch;
use mhd_obs::{counter_add, hist_record, span};

use crate::service::BatchModel;

/// Either precision of the served MLP head, both built from the same
/// mapped zoo. Lets callers pick f32 vs int8 at runtime while the
/// service stays monomorphic over one [`BatchModel`].
#[derive(Debug, Clone)]
pub enum MlpVariant {
    /// Full-precision model (packed-weight serving cache pre-warmed).
    F32(Arc<Mlp>),
    /// Int8 model (weights packed into i16 lanes at decode time).
    Int8(Arc<QuantizedMlp>),
}

impl BatchModel for MlpVariant {
    type Input = Vec<f32>;

    fn label(&self) -> &'static str {
        match self {
            MlpVariant::F32(_) => "mlp_f32",
            MlpVariant::Int8(_) => "mlp_int8",
        }
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        match self {
            MlpVariant::F32(m) => m.predict_proba_batch(inputs),
            MlpVariant::Int8(m) => m.predict_proba_batch(inputs),
        }
    }
}

/// The serving zoo: f32 and int8 MLP heads decoded from one mapped
/// checkpoint buffer. Keeps its [`MappedCheckpoint`] handle alive for
/// the zoo's lifetime (the mmap-discipline rule: the mapping outlives
/// every model built from it).
#[derive(Debug, Clone)]
pub struct ModelZoo {
    mapped: MappedCheckpoint,
    mlp: Arc<Mlp>,
    qmlp: Arc<QuantizedMlp>,
    load_ns: u64,
}

impl ModelZoo {
    /// Write a serving zoo (f32 weights + their int8 quantization) for
    /// `mlp` to `path` in the MHDCKPT container format.
    pub fn write(mlp: &Mlp, path: &Path) -> Result<(), CheckpointError> {
        let mut w = Writer::new();
        w.meta("zoo.kind", "serve");
        w.meta("zoo.models", "mlp,qmlp");
        mlp.write_checkpoint("mlp", &mut w);
        mlp.quantize().write_checkpoint("qmlp", &mut w);
        w.save(path)
    }

    /// Load the zoo once via the mapping loader: a single sequential
    /// read + validation, then zero-copy decodes into kernel-ready
    /// state. The f32 packed-weight serving cache is pre-warmed so the
    /// first request pays no pack cost.
    pub fn load(path: &Path) -> Result<ModelZoo, CheckpointError> {
        Self::load_with_faults(path, &FaultInjector::disabled())
    }

    /// [`ModelZoo::load`] through the checkpoint fault seam: an injected
    /// transient I/O error or byte flip surfaces as the typed
    /// [`CheckpointError`] the mapping loader would report for the real
    /// thing.
    pub fn load_with_faults(
        path: &Path,
        faults: &FaultInjector,
    ) -> Result<ModelZoo, CheckpointError> {
        let _s = span("serve.zoo_load");
        let sw = Stopwatch::start();
        let mapped = Checkpoint::map_with_faults(path, faults)?;
        let mlp = Mlp::from_checkpoint(&mapped, "mlp")?;
        mlp.prepack();
        let qmlp = QuantizedMlp::from_checkpoint(&mapped, "qmlp")?;
        let load_ns = sw.elapsed_ns();
        hist_record("serve.zoo_load_ns", load_ns);
        counter_add("serve.zoo_loads", 1);
        Ok(ModelZoo { mapped, mlp: Arc::new(mlp), qmlp: Arc::new(qmlp), load_ns })
    }

    /// Load the zoo, riding out transient read faults (injected I/O
    /// errors, corrupted reads caught by the checksum) with seeded
    /// backoff. Structural errors — bad version, missing tensors —
    /// fail immediately: retrying cannot fix a wrong file.
    pub fn load_resilient(
        path: &Path,
        faults: &FaultInjector,
        policy: &RetryPolicy,
    ) -> Result<ModelZoo, CheckpointError> {
        let salt = mhd_nn::checkpoint::fnv1a64(path.to_string_lossy().as_bytes());
        retry_transient(
            policy,
            salt,
            |e: &CheckpointError| {
                matches!(
                    e,
                    CheckpointError::Io(_)
                        | CheckpointError::ChecksumMismatch
                        | CheckpointError::BadMagic
                )
            },
            |_| Self::load_with_faults(path, faults),
        )
    }

    /// The served variant for `precision`, sharing the zoo's models.
    pub fn variant(&self, precision: Precision) -> MlpVariant {
        match precision {
            Precision::F32 => MlpVariant::F32(Arc::clone(&self.mlp)),
            Precision::Int8 => MlpVariant::Int8(Arc::clone(&self.qmlp)),
        }
    }

    /// The full-precision model.
    pub fn mlp(&self) -> Arc<Mlp> {
        Arc::clone(&self.mlp)
    }

    /// The int8 model.
    pub fn qmlp(&self) -> Arc<QuantizedMlp> {
        Arc::clone(&self.qmlp)
    }

    /// The shared mapping the zoo decodes from.
    pub fn checkpoint(&self) -> &MappedCheckpoint {
        &self.mapped
    }

    /// Container size of the mapped zoo in bytes.
    pub fn size_bytes(&self) -> usize {
        self.mapped.size_bytes()
    }

    /// Wall time of the one-shot zoo load, in nanoseconds.
    pub fn load_ns(&self) -> u64 {
        self.load_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_roundtrip_serves_both_precisions() {
        let dir = std::env::temp_dir();
        let path = dir.join("mhd_serve_zoo_test.ckpt");
        let mlp = Mlp::new(10, 12, 4, 0.05, 7);
        ModelZoo::write(&mlp, &path).expect("write zoo");
        let zoo = ModelZoo::load(&path).expect("load zoo");
        assert!(zoo.size_bytes() > 0);
        assert!(zoo.load_ns() > 0);
        let xs: Vec<Vec<f32>> =
            (0..9).map(|i| (0..10).map(|j| ((i + j * 3) % 7) as f32 / 7.0).collect()).collect();
        // f32 variant is byte-identical to the in-memory model.
        assert_eq!(zoo.variant(Precision::F32).predict_batch(&xs), mlp.predict_proba_batch(&xs));
        // int8 variant matches an in-memory quantization of the same weights.
        assert_eq!(
            zoo.variant(Precision::Int8).predict_batch(&xs),
            mlp.quantize().predict_proba_batch(&xs)
        );
        // Zoo clones share the one mapped buffer.
        let clone = zoo.clone();
        assert!(clone.checkpoint().handles() >= 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resilient_load_rides_out_injected_read_faults() {
        use mhd_fault::{FaultPlan, Scenario};
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mhd_serve_zoo_resilient_{}.ckpt", std::process::id()));
        let mlp = Mlp::new(8, 10, 3, 0.05, 13);
        ModelZoo::write(&mlp, &path).expect("write zoo");
        // 60% of reads fault under this scenario; a handful of retries
        // always finds a clean one. Seeded, so the run is reproducible.
        let inj = FaultInjector::new(FaultPlan::new(Scenario::CorruptCheckpoint, 42));
        let policy = RetryPolicy { max_attempts: 32, base_us: 1, max_us: 20, seed: 42 };
        let zoo = ModelZoo::load_resilient(&path, &inj, &policy).expect("resilient load");
        let xs: Vec<Vec<f32>> =
            (0..5).map(|i| (0..8).map(|j| ((i + j) % 5) as f32 / 5.0).collect()).collect();
        // Whatever faults were ridden out, the decoded model is clean.
        assert_eq!(zoo.variant(Precision::F32).predict_batch(&xs), mlp.predict_proba_batch(&xs));
        assert!(inj.ops(mhd_fault::Site::CheckpointRead) >= 1, "seam was exercised");
        let _ = std::fs::remove_file(&path);
    }
}
