//! Fault seams and degraded-mode fallback for the serving layer.
//!
//! Two [`BatchModel`] combinators:
//!
//! * [`FaultyModel`] — wraps any model with a [`FaultInjector`] seam at
//!   the `model_forward` site. Injected panics exercise the shard
//!   supervision in [`crate::Service`]; injected stalls exercise the
//!   deadline path. With the zero-fault plan the wrapper is a
//!   pass-through, so serve output stays byte-identical.
//! * [`FallbackModel`] — degraded-mode serving: run the primary
//!   (typically int8) under `catch_unwind`; if it panics, count
//!   `serve.degraded` and answer from the fallback (the f32 variant
//!   decoded from the same mapped zoo). The shard never sees the panic,
//!   so the service keeps answering instead of burning restart budget.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mhd_fault::{Fault, FaultInjector, Site};
use mhd_obs::{counter_add, journal_record, EventKind};

use crate::service::BatchModel;

/// A [`BatchModel`] wrapper that consults a fault plan before every
/// forward. See the module docs for the semantics per fault kind.
#[derive(Debug, Clone)]
pub struct FaultyModel<M> {
    inner: Arc<M>,
    injector: Arc<FaultInjector>,
}

impl<M: BatchModel> FaultyModel<M> {
    /// Wrap `inner` with the injection seam.
    pub fn new(inner: Arc<M>, injector: Arc<FaultInjector>) -> Self {
        FaultyModel { inner, injector }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<M> {
        &self.inner
    }
}

impl<M: BatchModel> BatchModel for FaultyModel<M> {
    type Input = M::Input;

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        match self.injector.next(Site::ModelForward) {
            // The one deliberate panic in the serving stack: it models a
            // crashing model kernel and exists to be caught by the shard
            // supervisor / fallback route directly above it.
            Some(Fault::Panic) => {
                // mhd-lint: allow(R2, R6) — injected fault: this panic is the chaos plane's crash model, always caught by shard supervision or FallbackModel
                panic!("injected model panic (scenario {})", self.injector.plan().scenario())
            }
            Some(Fault::Stall { micros }) => {
                std::thread::sleep(Duration::from_micros(micros));
            }
            _ => {}
        }
        self.inner.predict_batch(inputs)
    }
}

/// Primary-with-fallback serving: answer from `primary` unless its
/// forward panics, in which case the same batch is answered by
/// `fallback` and the `serve.degraded` counter records the downgrade.
///
/// Both models must share an input type; in the intended deployment
/// they are the int8 and f32 variants decoded from one mapped zoo, so
/// degraded answers stay correct — just unquantized.
#[derive(Debug, Clone)]
pub struct FallbackModel<P, F> {
    primary: P,
    fallback: F,
    /// Shared across clones (every shard serves the same route), so the
    /// journal sees one `degraded_enter`/`degraded_exit` edge per
    /// mode change rather than one per shard.
    degraded: Arc<AtomicBool>,
}

impl<P, F> FallbackModel<P, F>
where
    P: BatchModel,
    F: BatchModel<Input = P::Input>,
{
    /// Pair a primary with its degraded-mode stand-in.
    pub fn new(primary: P, fallback: F) -> Self {
        FallbackModel { primary, fallback, degraded: Arc::new(AtomicBool::new(false)) }
    }

    /// Whether the route is currently answering from the fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

impl<P, F> BatchModel for FallbackModel<P, F>
where
    P: BatchModel,
    F: BatchModel<Input = P::Input>,
{
    type Input = P::Input;

    fn label(&self) -> &'static str {
        self.primary.label()
    }

    fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
        // Model forwards are pure `&self`; no state survives the unwind.
        match catch_unwind(AssertUnwindSafe(|| self.primary.predict_batch(inputs))) {
            Ok(rows) => {
                // `swap` so only the shard that flips the mode journals
                // the edge, however many shards race through here.
                if self.degraded.swap(false, Ordering::Relaxed) {
                    journal_record(EventKind::DegradedExit);
                }
                rows
            }
            Err(_) => {
                counter_add("serve.degraded", 1);
                if !self.degraded.swap(true, Ordering::Relaxed) {
                    journal_record(EventKind::DegradedEnter);
                }
                self.fallback.predict_batch(inputs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_fault::{FaultPlan, Scenario};
    use mhd_nn::Mlp;

    fn mlp() -> Arc<Mlp> {
        Arc::new(Mlp::new(5, 6, 3, 0.05, 21))
    }

    fn xs(n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..5).map(|j| ((i * 3 + j) % 11) as f32 / 11.0).collect()).collect()
    }

    #[test]
    fn zero_fault_wrapper_is_byte_identical_passthrough() {
        let m = mlp();
        let wrapped = FaultyModel::new(Arc::clone(&m), Arc::new(FaultInjector::disabled()));
        let inputs = xs(13);
        assert_eq!(wrapped.predict_batch(&inputs), m.predict_proba_batch(&inputs));
        assert_eq!(wrapped.label(), "mlp_f32");
    }

    #[test]
    fn panic_storm_panics_every_forward() {
        let m = mlp();
        let wrapped =
            FaultyModel::new(m, Arc::new(FaultInjector::new(FaultPlan::new(Scenario::PanicStorm, 1))));
        let inputs = xs(2);
        let caught = catch_unwind(AssertUnwindSafe(|| wrapped.predict_batch(&inputs)));
        assert!(caught.is_err(), "panic storm must panic the forward");
    }

    #[test]
    fn fallback_serves_degraded_rows_when_primary_panics() {
        let m = mlp();
        // Primary panics on every forward; fallback is the clean model.
        let primary = FaultyModel::new(
            Arc::clone(&m),
            Arc::new(FaultInjector::new(FaultPlan::new(Scenario::PanicStorm, 7))),
        );
        let route = FallbackModel::new(primary, MlpRef(Arc::clone(&m)));
        let inputs = xs(9);
        assert_eq!(route.predict_batch(&inputs), m.predict_proba_batch(&inputs));
    }

    /// Arc<Mlp> adapter so the fallback shares the zoo model.
    struct MlpRef(Arc<Mlp>);

    impl BatchModel for MlpRef {
        type Input = Vec<f32>;

        fn label(&self) -> &'static str {
            "mlp_f32"
        }

        fn predict_batch(&self, inputs: &[Self::Input]) -> Vec<Vec<f32>> {
            self.0.predict_proba_batch(inputs)
        }
    }
}
