//! Serve-vs-offline determinism: the same seeded post stream pushed
//! through the micro-batching service — any shard count, any batch
//! coalescing — must produce byte-identical predictions to a single
//! offline `predict_proba_batch` call.

use std::sync::Arc;

use mhd_nn::quant::Precision;
use mhd_serve::traffic::synthetic_posts;
use mhd_serve::{BatchModel, ModelZoo, ServeConfig, Service, Ticket};

const DIM: usize = 24;
const CLASSES: usize = 5;
const POSTS: usize = 211;

fn zoo_at(path: &std::path::Path) -> ModelZoo {
    let mlp = mhd_nn::Mlp::new(DIM, 32, CLASSES, 0.05, 1234);
    ModelZoo::write(&mlp, path).expect("write zoo");
    ModelZoo::load(path).expect("load zoo")
}

fn bits(rows: &[Vec<f32>]) -> Vec<Vec<u32>> {
    rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn serve_matches_offline_for_all_configs_and_precisions() {
    let path = std::env::temp_dir().join("mhd_serve_determinism_zoo.ckpt");
    let zoo = zoo_at(&path);
    let posts = synthetic_posts(POSTS, DIM, 99);

    for precision in [Precision::F32, Precision::Int8] {
        let model = zoo.variant(precision);
        let offline = model.predict_batch(&posts);

        let configs = [
            // Aggressive coalescing across a wide shard pool.
            ServeConfig { max_batch: 16, max_wait_us: 400, queue_cap: 512, shards: 4, ..ServeConfig::default() },
            // Deadline-dominated tiny batches.
            ServeConfig { max_batch: 3, max_wait_us: 50, queue_cap: 512, shards: 2, ..ServeConfig::default() },
            // Batch-size-1 serving: no coalescing at all.
            ServeConfig { max_batch: 1, max_wait_us: 1000, queue_cap: 512, shards: 3, ..ServeConfig::default() },
        ];
        for cfg in configs {
            let svc = Service::start(Arc::new(model.clone()), cfg);
            let tickets: Vec<Ticket> =
                posts.iter().map(|p| svc.submit(p.clone()).expect("admitted")).collect();
            let served: Vec<Vec<f32>> =
                tickets.into_iter().map(|t| t.wait().expect("served")).collect();
            assert_eq!(
                bits(&served),
                bits(&offline),
                "serve != offline for {:?} shards={} max_batch={}",
                precision,
                cfg.shards,
                cfg.max_batch
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn closed_loop_predict_matches_offline() {
    let path = std::env::temp_dir().join("mhd_serve_determinism_zoo_cl.ckpt");
    let zoo = zoo_at(&path);
    let posts = synthetic_posts(40, DIM, 7);
    let model = zoo.variant(Precision::Int8);
    let offline = model.predict_batch(&posts);
    let svc = Service::start(
        Arc::new(model),
        ServeConfig { max_batch: 8, max_wait_us: 100, queue_cap: 64, shards: 2, ..ServeConfig::default() },
    );
    // Closed-loop clients: several threads each own a slice of the
    // stream and block on every request.
    std::thread::scope(|s| {
        for (chunk_idx, chunk) in posts.chunks(10).enumerate() {
            let svc = &svc;
            let offline = &offline;
            s.spawn(move || {
                for (i, post) in chunk.iter().enumerate() {
                    let got = svc.predict(post.clone()).expect("served");
                    let want = &offline[chunk_idx * 10 + i];
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                    );
                }
            });
        }
    });
    let _ = std::fs::remove_file(&path);
}
