//! Chaos suite: seeded fault storms against the self-healing service.
//!
//! The invariants pinned here, for every scenario:
//!
//! 1. **No request is lost without a typed error** — every submitted
//!    ticket resolves to `Ok(row)` or a typed [`ServeError`]; nothing
//!    hangs and nothing is silently dropped.
//! 2. **Successful rows are correct** — any `Ok` row is byte-identical
//!    to the offline prediction for that input, faults or not.
//! 3. **Clean drain** — the service shuts down (drop joins the pool)
//!    under every scenario, including restart storms that kill the
//!    whole pool.
//! 4. **Reproducibility** — with one shard and batch size 1 the
//!    request→operation mapping is the submission order, so the same
//!    seed must reproduce exactly the same per-request outcomes.
//! 5. **Zero-fault byte identity** — with the zero-fault plan the
//!    wrapped service output is byte-identical to the unwrapped
//!    service and to offline, at shard counts 1 and 4.

use std::sync::Arc;

use mhd_fault::{FaultInjector, FaultPlan, Scenario};
use mhd_serve::traffic::synthetic_posts;
use mhd_serve::{
    FaultyModel, MlpVariant, ModelZoo, Precision, ServeConfig, ServeError, Service,
};

const DIM: usize = 24;
const N: usize = 160;
const SEED: u64 = 20260807;

fn zoo_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mhd_chaos_{tag}_{}.ckpt", std::process::id()))
}

fn build_zoo(tag: &str) -> (std::path::PathBuf, ModelZoo) {
    let path = zoo_path(tag);
    let mlp = mhd_nn::Mlp::new(DIM, 16, 5, 0.05, 33);
    ModelZoo::write(&mlp, &path).expect("write zoo");
    let zoo = ModelZoo::load(&path).expect("load zoo");
    (path, zoo)
}

/// Run one seeded storm: submit every post, wait every ticket, enforce
/// invariants 1–3, and return the per-request outcome vector
/// (`Ok(row)` is recorded as the row, errors by display string).
fn run_storm(
    zoo: &ModelZoo,
    scenario: Scenario,
    seed: u64,
    cfg: ServeConfig,
) -> Vec<Result<Vec<f32>, String>> {
    let posts = synthetic_posts(N, DIM, SEED);
    let offline = zoo.qmlp().predict_proba_batch(&posts);
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(scenario, seed)));
    let model = FaultyModel::new(Arc::new(zoo.variant(Precision::Int8)), injector);
    let svc = Service::start(Arc::new(model), cfg);
    let mut outcomes = Vec::with_capacity(N);
    for (i, post) in posts.iter().enumerate() {
        match svc.submit(post.clone()) {
            Ok(t) => match t.wait() {
                Ok(row) => {
                    assert_eq!(row, offline[i], "request {i}: served row differs from offline");
                    outcomes.push(Ok(row));
                }
                Err(e) => {
                    assert_typed(&e);
                    outcomes.push(Err(e.to_string()));
                }
            },
            Err(e) => {
                assert_typed(&e);
                outcomes.push(Err(e.to_string()));
            }
        }
    }
    drop(svc); // must join cleanly under every scenario (invariant 3)
    outcomes
}

fn assert_typed(e: &ServeError) {
    // Disconnected would mean a reply was dropped without an explicit
    // send/fail — the "lost without a typed error" case this suite bans.
    assert!(
        !matches!(e, ServeError::Disconnected),
        "request finished with the untyped Disconnected error"
    );
}

fn serial_cfg() -> ServeConfig {
    // One shard, batch size 1: request k is operation k, so outcomes
    // are a pure function of (scenario, seed).
    ServeConfig { max_batch: 1, max_wait_us: 100, shards: 1, ..ServeConfig::default() }
}

#[test]
fn shard_panic_storm_is_survivable_and_reproducible() {
    let (path, zoo) = build_zoo("shard_panic");
    let a = run_storm(&zoo, Scenario::ShardPanic, 7, serial_cfg());
    let b = run_storm(&zoo, Scenario::ShardPanic, 7, serial_cfg());
    assert_eq!(a, b, "same seed must reproduce the same outcomes");
    let failed = a.iter().filter(|r| r.is_err()).count();
    assert!(failed > 0, "shard-panic scenario injected nothing");
    assert!(failed < N, "every request failed; service never recovered");
    let c = run_storm(&zoo, Scenario::ShardPanic, 8, serial_cfg());
    assert_ne!(a, c, "different seeds must differ");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stalled_batches_hit_deadlines_not_hangs() {
    let (path, zoo) = build_zoo("stalled");
    let cfg = ServeConfig { deadline_us: 100_000, ..serial_cfg() };
    let outcomes = run_storm(&zoo, Scenario::StalledBatch, 3, cfg);
    // Everything resolved (run_storm asserts that); stalls may or may
    // not push neighbours past the deadline, but served rows stay
    // byte-correct and nothing hangs.
    assert_eq!(outcomes.len(), N);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panic_storm_exhausts_cap_and_fails_everything_typed() {
    let (path, zoo) = build_zoo("storm");
    let cfg = ServeConfig { max_restarts: 3, ..serial_cfg() };
    let outcomes = run_storm(&zoo, Scenario::PanicStorm, 1, cfg);
    // Every forward panics: nothing can succeed, every outcome is a
    // typed failure, and the drop still drains cleanly.
    assert!(outcomes.iter().all(|r| r.is_err()), "panic storm let a request through");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mixed_scenario_under_four_shards_resolves_every_request() {
    let (path, zoo) = build_zoo("mixed");
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_us: 200,
        shards: 4,
        deadline_us: 500_000,
        ..ServeConfig::default()
    };
    // With 4 shards the request→op mapping is scheduling-dependent, so
    // only invariants 1–3 apply (run_storm enforces them).
    let outcomes = run_storm(&zoo, Scenario::Mixed, 5, cfg);
    assert_eq!(outcomes.len(), N);
    assert!(outcomes.iter().any(|r| r.is_ok()), "mixed storm starved every request");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_fault_plan_is_byte_identical_at_shard_counts_1_and_4() {
    let (path, zoo) = build_zoo("zero");
    let posts = synthetic_posts(N, DIM, SEED);
    let offline = zoo.qmlp().predict_proba_batch(&posts);
    for shards in [1usize, 4] {
        let cfg = ServeConfig { max_batch: 8, max_wait_us: 200, shards, ..ServeConfig::default() };
        // Wrapped in the zero-fault injector…
        let model =
            FaultyModel::new(Arc::new(zoo.variant(Precision::Int8)), Arc::new(FaultInjector::disabled()));
        let svc = Service::start(Arc::new(model), cfg);
        let tickets: Vec<_> =
            posts.iter().map(|p| svc.submit(p.clone()).expect("admitted")).collect();
        let served: Vec<Vec<f32>> =
            tickets.into_iter().map(|t| t.wait().expect("served")).collect();
        assert_eq!(served, offline, "zero-fault serve differs from offline at {shards} shards");
        drop(svc);
        // …and the plain unwrapped service agree byte-for-byte.
        let plain: Service<MlpVariant> = Service::start(Arc::new(zoo.variant(Precision::Int8)), cfg);
        let tickets: Vec<_> =
            posts.iter().map(|p| plain.submit(p.clone()).expect("admitted")).collect();
        let plain_rows: Vec<Vec<f32>> =
            tickets.into_iter().map(|t| t.wait().expect("served")).collect();
        assert_eq!(plain_rows, served, "fault wrapper changed bytes at {shards} shards");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_schedules_replay_identically_across_runs() {
    // Direct plan-level reproducibility, independent of the service:
    // the decision stream for any (scenario, seed) is a pure function.
    for scenario in Scenario::ALL {
        let p1 = FaultPlan::new(scenario, 99);
        let p2 = FaultPlan::new(scenario, 99);
        for site in mhd_fault::Site::ALL {
            for op in 0..512u64 {
                assert_eq!(p1.decide(site, op), p2.decide(site, op), "{scenario} {site:?} {op}");
            }
        }
    }
}
