//! The journal and the counters tell the same story: after seeded fault
//! storms, every `serve.shard_panics` / `serve.shard_restarts` /
//! fault-injection increment has a matching journal event, degraded-mode
//! edges balance, and the rendered incident timeline lists all of it.
//!
//! One test function on purpose: the observability sink and journal are
//! process global, so concurrent storms would cross-contaminate counts.

use std::sync::Arc;

use mhd_fault::{FaultInjector, FaultPlan, Scenario};
use mhd_serve::traffic::synthetic_posts;
use mhd_serve::{BatchModel, FallbackModel, FaultyModel, ModelZoo, Precision, ServeConfig, Service};

const DIM: usize = 24;
const N: usize = 200;

fn count_events(name: &str) -> u64 {
    mhd_obs::journal_snapshot().iter().filter(|e| e.kind.name() == name).count() as u64
}

fn run_storm<M>(model: M, posts: &[Vec<f32>], max_batch: usize)
where
    M: BatchModel<Input = Vec<f32>> + 'static,
{
    let cfg = ServeConfig {
        max_batch,
        max_wait_us: 200,
        shards: 4,
        deadline_us: 500_000,
        ..ServeConfig::default()
    };
    let svc = Service::start(Arc::new(model), cfg);
    let tickets: Vec<_> = posts.iter().filter_map(|p| svc.submit(p.clone()).ok()).collect();
    for t in tickets {
        let _ = t.wait();
    }
}

#[test]
fn journal_matches_counters_after_fault_storms() {
    mhd_obs::enable();
    mhd_obs::reset();

    let path =
        std::env::temp_dir().join(format!("mhd_tel_chaos_{}.ckpt", std::process::id()));
    let mlp = mhd_nn::Mlp::new(DIM, 16, 5, 0.05, 33);
    ModelZoo::write(&mlp, &path).expect("write zoo");
    let zoo = ModelZoo::load(&path).expect("load zoo");
    let posts = synthetic_posts(N, DIM, 20260807);

    // Storm A: bare faulty model with batch-size-1 serving — injected
    // panics (7% of forwards under ShardPanic) reach the shard
    // supervisor, so shard_panic/shard_restart events accumulate.
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(Scenario::ShardPanic, 5)));
    run_storm(FaultyModel::new(Arc::new(zoo.variant(Precision::Int8)), injector), &posts, 1);
    assert!(mhd_obs::counter_get("serve.shard_panics") > 0, "storm A injected no panics");

    // Storm B: a panic storm behind the fallback route — every panic is
    // absorbed there, journaled as degraded-mode edges instead.
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(Scenario::Mixed, 9)));
    let primary = FaultyModel::new(Arc::new(zoo.variant(Precision::Int8)), injector);
    run_storm(FallbackModel::new(primary, zoo.variant(Precision::F32)), &posts, 1);

    // Every counter increment journaled an event, and vice versa.
    let panics = mhd_obs::counter_get("serve.shard_panics");
    let restarts = mhd_obs::counter_get("serve.shard_restarts");
    assert_eq!(count_events("shard_panic"), panics, "panic journal != counter");
    assert_eq!(count_events("shard_restart"), restarts, "restart journal != counter");
    assert_eq!(
        count_events("fault_injected"),
        mhd_obs::counter_get("fault.injected.model_forward"),
        "fault journal != injected counter"
    );
    // Degraded mode journals edges (enter/exit pairs), not per-batch
    // counts; the edges alternate, so they differ by at most one.
    let enters = count_events("degraded_enter");
    let exits = count_events("degraded_exit");
    assert!(
        enters >= exits && enters <= exits + 1,
        "degraded edges unbalanced: {enters} enters, {exits} exits"
    );
    assert!(enters > 0, "storm B never entered degraded mode");

    // The rendered timeline carries every event plus its tally block.
    let timeline = mhd_obs::render_timeline(&mhd_obs::journal_snapshot());
    assert!(
        timeline.contains(&format!("== incident timeline: {} events ==", mhd_obs::journal_len())),
        "{timeline}"
    );
    assert!(timeline.contains("fault_injected"), "{timeline}");
    assert!(timeline.contains("-- event counts --"), "{timeline}");

    mhd_obs::disable();
    mhd_obs::reset();
    let _ = std::fs::remove_file(&path);
}
