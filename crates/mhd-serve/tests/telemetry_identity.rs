//! Telemetry is output-neutral: running the service with the sink
//! enabled and a live exporter polling in the background must produce
//! byte-identical predictions to the same run with observability fully
//! disabled, at shard counts 1 and 4.
//!
//! One test function on purpose: the observability sink is process
//! global, so the on/off halves must not interleave with each other.

use std::sync::Arc;

use mhd_serve::traffic::synthetic_posts;
use mhd_serve::{ModelZoo, Precision, ServeConfig, Service, Ticket};

const DIM: usize = 24;
const POSTS: usize = 180;

fn run_once(zoo: &ModelZoo, shards: usize, posts: &[Vec<f32>]) -> Vec<Vec<u32>> {
    let cfg = ServeConfig { max_batch: 8, max_wait_us: 200, shards, ..ServeConfig::default() };
    let svc = Service::start(Arc::new(zoo.variant(Precision::Int8)), cfg);
    let tickets: Vec<Ticket> =
        posts.iter().map(|p| svc.submit(p.clone()).expect("admitted")).collect();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("served").iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn exporter_on_and_off_serve_identical_bytes() {
    let path = std::env::temp_dir()
        .join(format!("mhd_tel_identity_{}.ckpt", std::process::id()));
    let mlp = mhd_nn::Mlp::new(DIM, 16, 5, 0.05, 33);
    ModelZoo::write(&mlp, &path).expect("write zoo");
    let zoo = ModelZoo::load(&path).expect("load zoo");
    let posts = synthetic_posts(POSTS, DIM, 424242);

    for shards in [1usize, 4] {
        mhd_obs::disable();
        mhd_obs::reset();
        let off = run_once(&zoo, shards, &posts);

        mhd_obs::enable();
        mhd_obs::reset();
        let prefix = std::env::temp_dir()
            .join(format!("mhd_tel_identity_{}_{shards}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let cfg = mhd_obs::TelemetryConfig::at_prefix(&prefix, 2_000);
        let exporter = mhd_obs::Exporter::create(cfg).expect("create exporter");
        let poller = mhd_obs::Poller::spawn(exporter, 2_000);
        let on = run_once(&zoo, shards, &posts);
        poller.finish().expect("finish poller");
        mhd_obs::disable();
        mhd_obs::reset();

        assert_eq!(on, off, "telemetry changed served bytes at {shards} shards");
        for suffix in [".series.jsonl", ".prom", ".journal.jsonl"] {
            let _ = std::fs::remove_file(format!("{prefix}{suffix}"));
        }
    }
    let _ = std::fs::remove_file(&path);
}
