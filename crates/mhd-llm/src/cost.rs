//! Token pricing and latency model, plus a cumulative cost tracker.
//!
//! The surveyed papers report LLM efficiency as arithmetic over token
//! counts and per-model prices; this module reproduces that arithmetic over
//! the real token counts of the real prompts the benchmark sends.

use crate::client::Usage;
use crate::zoo::ModelSpec;
use std::collections::HashMap;

/// Dollar cost of one request.
pub fn cost_usd(spec: &ModelSpec, usage: &Usage) -> f64 {
    usage.prompt_tokens as f64 / 1000.0 * spec.price_in_per_1k
        + usage.completion_tokens as f64 / 1000.0 * spec.price_out_per_1k
}

/// Modelled latency of one request, milliseconds.
pub fn latency_ms(spec: &ModelSpec, usage: &Usage) -> f64 {
    spec.latency_base_ms + usage.completion_tokens as f64 * spec.latency_per_token_ms
}

/// Cumulative per-model accounting, fed by the client after every request.
#[derive(Debug, Clone, Default)]
pub struct CostTracker {
    per_model: HashMap<String, ModelTotals>,
}

/// Totals for one model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelTotals {
    /// Requests issued.
    pub requests: u64,
    /// Prompt tokens consumed.
    pub prompt_tokens: u64,
    /// Completion tokens produced.
    pub completion_tokens: u64,
    /// Total dollars.
    pub usd: f64,
    /// Total modelled latency, ms.
    pub latency_ms: f64,
}

impl CostTracker {
    /// New, empty.
    pub fn new() -> Self {
        CostTracker::default()
    }

    /// Record one request.
    pub fn record(&mut self, model: &str, usage: &Usage, usd: f64, latency: f64) {
        let t = self.per_model.entry(model.to_string()).or_default();
        t.requests += 1;
        t.prompt_tokens += usage.prompt_tokens as u64;
        t.completion_tokens += usage.completion_tokens as u64;
        t.usd += usd;
        t.latency_ms += latency;
    }

    /// Totals for one model (zeros if never used).
    pub fn totals(&self, model: &str) -> ModelTotals {
        self.per_model.get(model).cloned().unwrap_or_default()
    }

    /// All models seen, sorted by name.
    pub fn models(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.per_model.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Grand total dollars.
    pub fn total_usd(&self) -> f64 {
        self.per_model.values().map(|t| t.usd).sum()
    }

    /// Reset all counters.
    pub fn reset(&mut self) {
        self.per_model.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::builtin_models;

    fn gpt4() -> ModelSpec {
        builtin_models().into_iter().find(|m| m.name == "sim-gpt-4").expect("model")
    }

    #[test]
    fn cost_arithmetic() {
        let usage = Usage { prompt_tokens: 1000, completion_tokens: 500 };
        let c = cost_usd(&gpt4(), &usage);
        assert!((c - (0.03 + 0.5 * 0.06)).abs() < 1e-12);
    }

    #[test]
    fn latency_grows_with_output() {
        let spec = gpt4();
        let short = latency_ms(&spec, &Usage { prompt_tokens: 100, completion_tokens: 5 });
        let long = latency_ms(&spec, &Usage { prompt_tokens: 100, completion_tokens: 50 });
        assert!(long > short);
    }

    #[test]
    fn tracker_accumulates() {
        let mut t = CostTracker::new();
        let u = Usage { prompt_tokens: 10, completion_tokens: 2 };
        t.record("m", &u, 0.01, 5.0);
        t.record("m", &u, 0.01, 5.0);
        let totals = t.totals("m");
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.prompt_tokens, 20);
        assert!((t.total_usd() - 0.02).abs() < 1e-12);
        assert_eq!(t.models(), vec!["m"]);
        t.reset();
        assert_eq!(t.totals("m"), ModelTotals::default());
    }
}
