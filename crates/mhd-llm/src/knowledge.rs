//! The backbone's "pretraining": concept prototypes in lexicon-rate space.
//!
//! A real LLM knows what depression-talk looks like because it was
//! pretrained on the same web that produced the evaluation datasets. The
//! simulated backbone gets the analogous knowledge by **sampling the same
//! generative process** the corpus crate uses and memorizing per-concept
//! mean lexicon-rate vectors. Crucially this knowledge is *approximate*:
//! prototypes are estimated from a finite seeded sample, and several dataset
//! label constructs (CSSRS grades, SAD causes) are only approximated by the
//! nearest concept the model knows — which is exactly the zero-shot gap the
//! survey literature measures.

use mhd_corpus::generator::{Generator, PostSpec, Style};
use mhd_corpus::signal::SignalProfile;
use mhd_corpus::taxonomy::{Disorder, Severity};
use mhd_text::lexicon::{Lexicon, LexiconCategory as C};
use mhd_text::tokenize::words;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A semantic concept the backbone has a prototype for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Concept {
    /// A disorder (includes Control).
    Disorder(Disorder),
    /// Depression at a given severity grade.
    DepressionSeverity(Severity),
    /// Suicide-risk ladder rung (0 = supportive … 4 = attempt).
    RiskLevel(u8),
    /// A stressor cause keyed by its dominant lexicon category.
    StressCause(C),
}

/// Number of posts sampled per concept when building prototypes.
const SAMPLES_PER_CONCEPT: usize = 40;

/// The knowledge base: mean lexicon-rate vectors per concept.
#[derive(Debug, Clone)]
pub struct Knowledge {
    lexicon: Lexicon,
    prototypes: HashMap<Concept, Vec<f64>>,
}

impl Knowledge {
    /// Build the knowledge base deterministically from `seed`.
    pub fn build(seed: u64) -> Self {
        let lexicon = Lexicon::standard();
        let generator = Generator::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prototypes = HashMap::new();

        let mean_rates = |texts: &[String], lexicon: &Lexicon| -> Vec<f64> {
            let mut acc = vec![0.0; C::ALL.len()];
            for t in texts {
                let rates = lexicon.profile(&words(t)).rates();
                for (a, r) in acc.iter_mut().zip(&rates) {
                    *a += r;
                }
            }
            let n = texts.len().max(1) as f64;
            acc.into_iter().map(|v| v / n).collect()
        };

        // Disorders at moderate severity.
        for &d in &Disorder::ALL {
            let spec = PostSpec::simple(d);
            let texts: Vec<String> =
                (0..SAMPLES_PER_CONCEPT).map(|_| generator.generate(&spec, &mut rng)).collect();
            prototypes.insert(Concept::Disorder(d), mean_rates(&texts, &lexicon));
        }
        // Depression severity ladder.
        for &sev in &Severity::ALL {
            let disorder =
                if sev == Severity::None { Disorder::Control } else { Disorder::Depression };
            let spec = PostSpec { disorder, severity: sev, secondary: None, style: Style::RedditPost };
            let texts: Vec<String> =
                (0..SAMPLES_PER_CONCEPT).map(|_| generator.generate(&spec, &mut rng)).collect();
            prototypes.insert(Concept::DepressionSeverity(sev), mean_rates(&texts, &lexicon));
        }
        // Suicide-risk ladder: the model's own approximation of the CSSRS
        // construct (supportive → attempt).
        let ladder: [(Vec<(C, f64)>, f64); 5] = [
            (vec![(C::Treatment, 1.0), (C::Social, 0.8), (C::PositiveEmotion, 0.6)], 0.5),
            (vec![(C::Sadness, 1.0), (C::NegativeEmotion, 0.5), (C::Sleep, 0.4)], 0.5),
            (vec![(C::Death, 1.0), (C::Sadness, 0.8), (C::Absolutist, 0.5)], 0.35),
            (vec![(C::Death, 1.3), (C::Sadness, 0.6), (C::Absolutist, 0.5)], 0.3),
            (vec![(C::Death, 1.5), (C::Treatment, 0.4), (C::Body, 0.4)], 0.25),
        ];
        for (level, (weights, filler)) in ladder.into_iter().enumerate() {
            let prof = SignalProfile {
                disorder: Disorder::SuicidalIdeation,
                category_weights: weights,
                filler_floor: filler,
                first_person_boost: 0.5,
            };
            let texts: Vec<String> = (0..SAMPLES_PER_CONCEPT)
                .map(|_| {
                    generator.generate_from_profile(&prof, Severity::Moderate, Style::RedditPost, &mut rng)
                })
                .collect();
            prototypes.insert(Concept::RiskLevel(level as u8), mean_rates(&texts, &lexicon));
        }
        // Stressor causes.
        for cat in [C::Work, C::Money, C::Social, C::Body, C::NegativeEmotion, C::Sleep] {
            let prof = SignalProfile {
                disorder: Disorder::Stress,
                category_weights: vec![(cat, 1.0), (C::Anxiety, 0.25), (C::Cognition, 0.2)],
                filler_floor: 0.35,
                first_person_boost: 0.2,
            };
            let texts: Vec<String> = (0..SAMPLES_PER_CONCEPT)
                .map(|_| {
                    generator.generate_from_profile(&prof, Severity::Moderate, Style::RedditPost, &mut rng)
                })
                .collect();
            prototypes.insert(Concept::StressCause(cat), mean_rates(&texts, &lexicon));
        }
        Knowledge { lexicon, prototypes }
    }

    /// Lexicon used to featurize text (shared with prototype construction).
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Prototype vector for a concept (panics for unknown concepts — all
    /// enum values are populated by `build`).
    pub fn prototype(&self, concept: Concept) -> &[f64] {
        // mhd-lint: allow(R6) — build() inserts every Concept variant; documented panicking accessor
        self.prototypes.get(&concept).map(Vec::as_slice).expect("concept populated at build")
    }

    /// Resolve a label string to a known concept, if any. This is the
    /// model's "understanding" of the label vocabulary; unresolvable labels
    /// fall back to [`Knowledge::label_fallback_prototype`].
    pub fn resolve_label(&self, label: &str) -> Option<Concept> {
        let norm = label.trim().to_lowercase();
        let norm = norm.trim_matches(|c: char| !c.is_alphanumeric() && c != ' ');
        Some(match norm {
            "control" | "none" | "neutral" | "no" | "healthy" | "not stressed"
            | "not depressed" | "offmychest" | "off my chest" | "normal" => {
                Concept::Disorder(Disorder::Control)
            }
            "depression" | "depressed" | "depressive" => Concept::Disorder(Disorder::Depression),
            "anxiety" | "anxious" | "gad" => Concept::Disorder(Disorder::Anxiety),
            "stress" | "stressed" | "distress" => Concept::Disorder(Disorder::Stress),
            "ptsd" | "post traumatic stress" | "trauma" => Concept::Disorder(Disorder::Ptsd),
            "bipolar" | "mania" | "manic" | "bipolar disorder" => {
                Concept::Disorder(Disorder::Bipolar)
            }
            "suicide" | "suicidal" | "suicidal ideation" | "suicidewatch" | "suicide watch" => {
                Concept::Disorder(Disorder::SuicidalIdeation)
            }
            "eating disorder" | "anorexia" | "bulimia" | "ed" => {
                Concept::Disorder(Disorder::EatingDisorder)
            }
            "minimum" | "minimal" => Concept::DepressionSeverity(Severity::None),
            "mild" => Concept::DepressionSeverity(Severity::Mild),
            "moderate" => Concept::DepressionSeverity(Severity::Moderate),
            "severe" => Concept::DepressionSeverity(Severity::Severe),
            "supportive" => Concept::RiskLevel(0),
            "indicator" => Concept::RiskLevel(1),
            "ideation" => Concept::RiskLevel(2),
            "behavior" | "behaviour" => Concept::RiskLevel(3),
            "attempt" => Concept::RiskLevel(4),
            "work" | "school" | "work or school" => Concept::StressCause(C::Work),
            "financial" | "money" | "financial problem" => Concept::StressCause(C::Money),
            "social" | "social relationships" | "family" | "relationship" => {
                Concept::StressCause(C::Social)
            }
            "health" | "physical" | "health or physical" => Concept::StressCause(C::Body),
            "emotional" | "emotional turmoil" => Concept::StressCause(C::NegativeEmotion),
            "sleep" | "sleep problems" => Concept::StressCause(C::Sleep),
            _ => return None,
        })
    }

    /// Fallback prototype for an unresolvable label: spread mass over the
    /// lexicon categories the label's own words belong to.
    pub fn label_fallback_prototype(&self, label: &str) -> Vec<f64> {
        let mut proto = vec![0.0; C::ALL.len()];
        let toks = words(label);
        for t in &toks {
            for &cat in self.lexicon.categories(t) {
                proto[cat.index()] += 0.05;
            }
        }
        proto
    }

    /// Featurize text into the same rate space as the prototypes, reading at
    /// most `depth` tokens (the capability-limited reading depth).
    pub fn featurize(&self, text: &str, depth: usize) -> Vec<f64> {
        let toks: Vec<String> = words(text).into_iter().take(depth).collect();
        self.lexicon.profile(&toks).rates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = Knowledge::build(1);
        let b = Knowledge::build(1);
        assert_eq!(
            a.prototype(Concept::Disorder(Disorder::Depression)),
            b.prototype(Concept::Disorder(Disorder::Depression))
        );
    }

    #[test]
    fn prototypes_are_distinctive() {
        let k = Knowledge::build(2);
        let dep = k.prototype(Concept::Disorder(Disorder::Depression));
        let ctl = k.prototype(Concept::Disorder(Disorder::Control));
        // Depression prototype has much higher sadness rate than control.
        let sad = C::Sadness.index();
        assert!(dep[sad] > ctl[sad] * 3.0, "dep {} ctl {}", dep[sad], ctl[sad]);
        // Suicidal prototype has more death language than depression.
        let si = k.prototype(Concept::Disorder(Disorder::SuicidalIdeation));
        assert!(si[C::Death.index()] > dep[C::Death.index()] * 2.0);
    }

    #[test]
    fn severity_ladder_monotone_in_sadness() {
        let k = Knowledge::build(3);
        let rates: Vec<f64> = Severity::ALL
            .iter()
            .map(|&s| k.prototype(Concept::DepressionSeverity(s))[C::Sadness.index()])
            .collect();
        for w in rates.windows(2) {
            assert!(w[0] < w[1], "severity sadness not monotone: {rates:?}");
        }
    }

    #[test]
    fn risk_ladder_monotone_in_death() {
        let k = Knowledge::build(4);
        let death = C::Death.index();
        let r0 = k.prototype(Concept::RiskLevel(0))[death];
        let r2 = k.prototype(Concept::RiskLevel(2))[death];
        let r4 = k.prototype(Concept::RiskLevel(4))[death];
        assert!(r0 < r2 && r2 < r4, "{r0} {r2} {r4}");
    }

    #[test]
    fn label_resolution() {
        let k = Knowledge::build(5);
        assert_eq!(
            k.resolve_label("Suicidal ideation"),
            Some(Concept::Disorder(Disorder::SuicidalIdeation))
        );
        assert_eq!(k.resolve_label("  stressed "), Some(Concept::Disorder(Disorder::Stress)));
        assert_eq!(k.resolve_label("moderate"), Some(Concept::DepressionSeverity(Severity::Moderate)));
        assert_eq!(k.resolve_label("attempt"), Some(Concept::RiskLevel(4)));
        assert_eq!(k.resolve_label("financial"), Some(Concept::StressCause(C::Money)));
        assert_eq!(k.resolve_label("xyzzy"), None);
    }

    #[test]
    fn fallback_prototype_uses_label_words() {
        let k = Knowledge::build(6);
        let p = k.label_fallback_prototype("very sad and hopeless");
        assert!(p[C::Sadness.index()] > 0.0);
        let empty = k.label_fallback_prototype("qwerty");
        assert!(empty.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn featurize_respects_depth() {
        let k = Knowledge::build(7);
        let text = "happy happy happy happy sad sad sad sad";
        let shallow = k.featurize(text, 4);
        let deep = k.featurize(text, 100);
        assert!(shallow[C::Sadness.index()] < deep[C::Sadness.index()]);
        assert!(shallow[C::PositiveEmotion.index()] > deep[C::PositiveEmotion.index()]);
    }
}
