//! Prompt parsing — how the simulated model "reads" the caller's request.
//!
//! The parser is intentionally lenient and convention-driven, mirroring how
//! real instruction-tuned LLMs latch onto prompt structure:
//!
//! - a label inventory after `Options:` / `Labels:` / `Choose one of:`;
//! - few-shot demonstrations as `Post:` … `Answer: <label>` pairs;
//! - the query as the final `Post:` whose `Answer:` is empty/missing;
//! - chain-of-thought markers ("step by step", "reasoning");
//! - JSON-output markers.
//!
//! A prompt that follows none of these conventions still parses: the whole
//! prompt becomes the query and the label set is empty — the model will
//! free-generate, and the caller's output parser will have a bad day.
//! This is by design: prompt fragility is one of the phenomena the
//! benchmark measures.

/// Structured view of a prompt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedPrompt {
    /// Instruction text (everything before structure markers).
    pub instruction: String,
    /// Candidate labels, in prompt order; may be empty.
    pub labels: Vec<String>,
    /// Few-shot demonstrations: `(post, label)` pairs.
    pub demos: Vec<(String, String)>,
    /// The post to classify.
    pub query: String,
    /// Caller asked for step-by-step reasoning.
    pub wants_cot: bool,
    /// Caller asked for JSON output.
    pub wants_json: bool,
    /// Caller drew attention to emotions ("emotion-enhanced" prompting).
    pub wants_emotion: bool,
}

/// Parse a prompt into its structured parts.
pub fn parse_prompt(prompt: &str) -> ParsedPrompt {
    let mut parsed = ParsedPrompt::default();
    let lower = prompt.to_lowercase();
    parsed.wants_cot = lower.contains("step by step")
        || lower.contains("step-by-step")
        || lower.contains("reasoning first")
        || lower.contains("explain your reasoning");
    parsed.wants_json = lower.contains("json");
    parsed.wants_emotion = lower.contains("emotion");

    let mut instruction_lines: Vec<&str> = Vec::new();
    // (post, Option<answer>) blocks in order.
    let mut blocks: Vec<(String, Option<String>)> = Vec::new();

    for raw_line in prompt.lines() {
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_any(line, &["options:", "labels:", "choose one of:", "categories:"]) {
            parsed.labels = split_labels(rest);
        } else if let Some(rest) = strip_any(line, &["post:", "text:", "input:", "tweet:"]) {
            blocks.push((unquote(rest).to_string(), None));
        } else if let Some(rest) = strip_any(line, &["answer:", "label:", "output:", "category:"]) {
            let answer = unquote(rest).to_string();
            match blocks.last_mut() {
                Some(last) if last.1.is_none() => {
                    last.1 = if answer.is_empty() { None } else { Some(answer) };
                }
                _ => {
                    // Stray Answer: with no preceding Post — treat as noise.
                }
            }
        } else if blocks.is_empty() && parsed.labels.is_empty() {
            instruction_lines.push(line);
        } else if let Some((post, answer @ None)) = blocks.last_mut().map(|b| (&mut b.0, &mut b.1)) {
            // Continuation line of a multi-line post (before its Answer).
            let _ = answer;
            post.push(' ');
            post.push_str(line);
        }
    }
    parsed.instruction = instruction_lines.join(" ");
    // The query is the last answer-less block; all answered blocks are demos.
    let mut query = None;
    for (post, answer) in blocks {
        match answer {
            Some(a) => parsed.demos.push((post, a)),
            None => query = Some(post),
        }
    }
    parsed.query = match query {
        Some(q) => q,
        None if parsed.demos.is_empty() => {
            // Unstructured prompt: the whole thing is the query.
            prompt.trim().to_string()
        }
        None => String::new(),
    };
    parsed
}

fn strip_any<'a>(line: &'a str, prefixes: &[&str]) -> Option<&'a str> {
    let lower = line.to_lowercase();
    for p in prefixes {
        if lower.starts_with(p) {
            return Some(line[p.len()..].trim());
        }
    }
    None
}

fn split_labels(rest: &str) -> Vec<String> {
    rest.split(',')
        .flat_map(|part| part.split(" or "))
        .map(|s| unquote(s.trim()).to_lowercase())
        .filter(|s| !s.is_empty())
        .collect()
}

fn unquote(s: &str) -> &str {
    s.trim().trim_matches(|c| c == '"' || c == '\'' || c == '“' || c == '”')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shot_prompt() {
        let p = parse_prompt(
            "Classify the post for signs of stress.\n\
             Options: not stressed, stressed\n\
             Post: \"work is crushing me lately\"\n\
             Answer:",
        );
        assert_eq!(p.labels, vec!["not stressed", "stressed"]);
        assert_eq!(p.query, "work is crushing me lately");
        assert!(p.demos.is_empty());
        assert!(!p.wants_cot);
        assert!(p.instruction.contains("Classify"));
    }

    #[test]
    fn few_shot_prompt() {
        let p = parse_prompt(
            "Decide the label.\n\
             Options: depression, suicide\n\
             Post: \"i feel empty\"\n\
             Answer: depression\n\
             Post: \"i want to end it\"\n\
             Answer: suicide\n\
             Post: \"i cry every night\"\n\
             Answer:",
        );
        assert_eq!(p.demos.len(), 2);
        assert_eq!(p.demos[0], ("i feel empty".to_string(), "depression".to_string()));
        assert_eq!(p.demos[1].1, "suicide");
        assert_eq!(p.query, "i cry every night");
    }

    #[test]
    fn cot_and_json_markers() {
        let p = parse_prompt("Think step by step, then answer in JSON.\nPost: hello\nAnswer:");
        assert!(p.wants_cot);
        assert!(p.wants_json);
    }

    #[test]
    fn labels_with_or_separator() {
        let p = parse_prompt("Options: yes or no\nPost: x\nAnswer:");
        assert_eq!(p.labels, vec!["yes", "no"]);
    }

    #[test]
    fn unstructured_prompt_becomes_query() {
        let p = parse_prompt("is this person sad? i feel awful today");
        assert!(p.labels.is_empty());
        assert_eq!(p.query, "is this person sad? i feel awful today");
    }

    #[test]
    fn multiline_post_joined() {
        let p = parse_prompt("Task here.\nOptions: a, b\nPost: first line\nsecond line\nAnswer:");
        assert_eq!(p.query, "first line second line");
    }

    #[test]
    fn alternative_markers() {
        let p = parse_prompt("Categories: x, y\nText: some tweet\nLabel:");
        assert_eq!(p.labels, vec!["x", "y"]);
        assert_eq!(p.query, "some tweet");
    }

    #[test]
    fn missing_final_answer_line_still_finds_query() {
        let p = parse_prompt("Options: a, b\nPost: the query text");
        assert_eq!(p.query, "the query text");
    }

    #[test]
    fn empty_prompt() {
        let p = parse_prompt("");
        assert!(p.query.is_empty());
        assert!(p.labels.is_empty());
    }

    #[test]
    fn stray_answer_ignored() {
        let p = parse_prompt("Answer: orphan\nPost: real query\nAnswer:");
        assert_eq!(p.query, "real query");
        assert!(p.demos.is_empty());
    }
}
