//! The capability-scaled semantic backbone.
//!
//! Given a parsed prompt and a model spec, the backbone:
//!
//! 1. featurizes the query post into lexicon-rate space, reading only as
//!    deep as the model's capability allows;
//! 2. builds one prototype per candidate label — pretraining knowledge
//!    ([`crate::knowledge`]) blended with in-context demonstration
//!    centroids (few-shot learning, weighted by capability);
//! 3. perturbs the features with capability-scaled noise (small models
//!    "misread" more) — chain-of-thought shifts the effective capability by
//!    the model's CoT gain, negative for small models;
//! 4. scores labels by negative squared distance and softmaxes.
//!
//! All stochasticity is drawn from a caller-supplied seed so identical
//! requests produce identical responses.

use crate::knowledge::Knowledge;
use crate::parse::ParsedPrompt;
use crate::zoo::ModelSpec;
use mhd_corpus::taxonomy::Disorder;
use mhd_text::lexicon::LexiconCategory as C;
use mhd_text::tokenize::words;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sharpness of the distance→logit map.
const LOGIT_SCALE: f64 = 600.0;
/// Feature-noise scale at zero capability.
const NOISE_BASE: f64 = 0.15;

/// The backbone's classification decision for one request.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Label strings scored (parsed from the prompt, or inferred).
    pub labels: Vec<String>,
    /// Softmax probabilities aligned with `labels`.
    pub probs: Vec<f64>,
    /// Index of the chosen label.
    pub chosen: usize,
    /// Query tokens supporting the decision (for CoT rendering).
    pub evidence: Vec<String>,
}

impl Decision {
    /// Probability assigned to the chosen label.
    pub fn confidence(&self) -> f64 {
        self.probs[self.chosen]
    }

    /// The chosen label text.
    pub fn label(&self) -> &str {
        &self.labels[self.chosen]
    }
}

/// The backbone: knowledge plus scoring machinery.
#[derive(Debug, Clone)]
pub struct Backbone {
    knowledge: Knowledge,
}

impl Backbone {
    /// Build with pretraining seed.
    pub fn new(pretrain_seed: u64) -> Self {
        Backbone { knowledge: Knowledge::build(pretrain_seed) }
    }

    /// Access the knowledge base.
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    /// Featurize text at a model's reading depth (shared with fine-tuning).
    pub fn features_for(&self, spec: &ModelSpec, text: &str) -> Vec<f64> {
        self.knowledge.featurize(text, spec.reading_depth())
    }

    /// Decide a label for the parsed prompt.
    pub fn decide(
        &self,
        spec: &ModelSpec,
        parsed: &ParsedPrompt,
        temperature: f64,
        seed: u64,
    ) -> Decision {
        // Two RNG streams. The *noise direction* is seeded by the post only
        // (`seed` excludes the model): every model misreads the same post in
        // the same direction, with capability scaling the magnitude — so a
        // more capable model's errors are (approximately) a subset of a less
        // capable one's, and the scale ladder is monotone per post rather
        // than resampled. Sampling/derailment rolls stay model-specific.
        let mut noise_rng = StdRng::seed_from_u64(seed);
        let mut rng =
            StdRng::seed_from_u64(seed ^ mhd_text::hashing::fnv1a(spec.name.as_bytes()));
        // Label inventory: parsed, or the model's own disorder vocabulary
        // when the prompt failed to provide options.
        let labels: Vec<String> = if parsed.labels.is_empty() {
            Disorder::ALL.iter().map(|d| d.label().to_string()).collect()
        } else {
            parsed.labels.clone()
        };

        let capability = spec.capability();

        // Featurize the query with capability-scaled reading depth + noise.
        let depth = (64.0 + 448.0 * capability) as usize;
        let mut f = self.knowledge.featurize(&parsed.query, depth);
        // Chain-of-thought scales the misreading noise: positive CoT gain
        // (large models) shrinks it — explicit reasoning reduces slips —
        // while negative gain (small models) inflates it. Because the noise
        // draw is seeded by the query (not the prompt), zero-shot and CoT
        // runs of the same post are *paired*: the comparison isolates the
        // mechanism, exactly as a temperature-0 API comparison would.
        let cot_noise_factor = if parsed.wants_cot {
            (1.0 - spec.cot_gain()).clamp(0.3, 2.0)
        } else {
            1.0
        };
        // Demonstration anchoring: in-context examples disambiguate the
        // task, shrinking misreading noise — more for capable models, with
        // diminishing returns in k (the replicated few-shot curve shape).
        let demo_anchor = 1.0 / (1.0 + 0.08 * parsed.demos.len() as f64 * capability);
        let noise_std = NOISE_BASE * (1.0 - capability) * cot_noise_factor * demo_anchor;
        // Emotion-enhanced prompting focuses attention: halved noise on the
        // affect dimensions (the modest, replicated gain of this strategy).
        let emotion_dims = [
            C::NegativeEmotion.index(),
            C::PositiveEmotion.index(),
            C::Anxiety.index(),
            C::Anger.index(),
            C::Sadness.index(),
        ];
        for (i, v) in f.iter_mut().enumerate() {
            let scale = if parsed.wants_emotion && emotion_dims.contains(&i) { 0.5 } else { 1.0 };
            *v += gaussian(&mut noise_rng) * noise_std * scale;
        }

        // Prototypes: knowledge + demonstration centroids.
        let prototypes: Vec<Vec<f64>> = labels
            .iter()
            .map(|label| self.prototype_for(spec, parsed, label, capability, depth))
            .collect();

        // Score: negative squared distance, softmax with request temperature.
        let logits: Vec<f64> = prototypes
            .iter()
            .map(|p| {
                let d2: f64 = p.iter().zip(&f).map(|(a, b)| (a - b) * (a - b)).sum();
                -d2 * LOGIT_SCALE
            })
            .collect();
        let probs = softmax_t(&logits, 1.0 + temperature.max(0.0));
        let mut chosen = if temperature > 0.0 {
            sample_index(&probs, &mut rng)
        } else {
            argmax(&probs)
        };
        // Small-model CoT derailment: below the emergence threshold the
        // reasoning trace sometimes talks the model out of its answer — the
        // replicated "CoT hurts small models" finding.
        if parsed.wants_cot && spec.cot_gain() < 0.0 && labels.len() > 1 {
            let derail_p = (-spec.cot_gain() * 0.8).min(0.5);
            if rng.gen_bool(derail_p) {
                chosen = second_best(&probs, chosen);
            }
        }
        let evidence = self.evidence_for(&parsed.query, &prototypes[chosen]);
        Decision { labels, probs, chosen, evidence }
    }

    fn prototype_for(
        &self,
        _spec: &ModelSpec,
        parsed: &ParsedPrompt,
        label: &str,
        capability: f64,
        depth: usize,
    ) -> Vec<f64> {
        let base: Vec<f64> = match self.knowledge.resolve_label(label) {
            Some(c) => self.knowledge.prototype(c).to_vec(),
            None => self.knowledge.label_fallback_prototype(label),
        };
        // Demonstration centroid for this label.
        let demos: Vec<&String> = parsed
            .demos
            .iter()
            .filter(|(_, l)| l.eq_ignore_ascii_case(label))
            .map(|(post, _)| post)
            .collect();
        if demos.is_empty() {
            return base;
        }
        let mut centroid = vec![0.0; base.len()];
        for post in &demos {
            let fr = self.knowledge.featurize(post, depth);
            for (c, v) in centroid.iter_mut().zip(&fr) {
                *c += v;
            }
        }
        let k = demos.len() as f64;
        for c in centroid.iter_mut() {
            *c /= k;
        }
        // Blend: bigger models use demonstrations better; more demos → more
        // weight, saturating around k ≈ 8.
        let fewshot_weight = (capability - 0.25).clamp(0.05, 0.75);
        let beta = fewshot_weight * (k / (k + 4.0));
        base.iter().zip(&centroid).map(|(b, c)| (1.0 - beta) * b + beta * c).collect()
    }

    /// Query tokens whose lexicon categories dominate the chosen prototype.
    fn evidence_for(&self, query: &str, prototype: &[f64]) -> Vec<String> {
        // Top-3 prototype categories.
        let mut idx: Vec<usize> = (0..prototype.len()).collect();
        idx.sort_by(|&a, &b| prototype[b].total_cmp(&prototype[a]));
        let top: Vec<C> = idx.iter().take(3).map(|&i| C::ALL[i]).collect();
        let mut evidence = Vec::new();
        for tok in words(query) {
            if self.knowledge.lexicon().categories(&tok).iter().any(|c| top.contains(c))
                && !evidence.contains(&tok)
            {
                evidence.push(tok);
                if evidence.len() == 3 {
                    break;
                }
            }
        }
        evidence
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn softmax_t(xs: &[f64], t: f64) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| ((x - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

fn second_best(probs: &[f64], best: usize) -> usize {
    let mut second = if best == 0 { 1 } else { 0 };
    for (i, &p) in probs.iter().enumerate() {
        if i != best && p > probs[second] {
            second = i;
        }
    }
    second
}

fn sample_index(probs: &[f64], rng: &mut StdRng) -> usize {
    let mut draw: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if draw < p {
            return i;
        }
        draw -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_prompt;
    use crate::zoo::builtin_models;

    fn spec(name: &str) -> ModelSpec {
        builtin_models().into_iter().find(|m| m.name == name).expect("model")
    }

    fn backbone() -> Backbone {
        Backbone::new(99)
    }

    #[test]
    fn obvious_depression_post_classified() {
        let bb = backbone();
        let p = parse_prompt(
            "Classify.\nOptions: control, depression\n\
             Post: i feel hopeless and empty, crying every night, everything is dark and pointless\n\
             Answer:",
        );
        let d = bb.decide(&spec("sim-gpt-4"), &p, 0.0, 1);
        assert_eq!(d.label(), "depression");
        assert!(d.confidence() > 0.5);
    }

    #[test]
    fn control_post_classified() {
        let bb = backbone();
        let p = parse_prompt(
            "Classify.\nOptions: control, depression\n\
             Post: had a wonderful weekend with friends, tried a new recipe and watched the game\n\
             Answer:",
        );
        let d = bb.decide(&spec("sim-gpt-4"), &p, 0.0, 1);
        assert_eq!(d.label(), "control");
    }

    #[test]
    fn deterministic_at_zero_temperature() {
        let bb = backbone();
        let p = parse_prompt("Options: control, depression\nPost: i feel sad\nAnswer:");
        let a = bb.decide(&spec("sim-gpt-3.5"), &p, 0.0, 7);
        let b = bb.decide(&spec("sim-gpt-3.5"), &p, 0.0, 7);
        assert_eq!(a.probs, b.probs);
        assert_eq!(a.chosen, b.chosen);
    }

    #[test]
    fn large_models_more_accurate_on_generated_posts() {
        // On generator-drawn mild-severity posts (genuinely weak signal),
        // the lower feature noise of a large model should yield fewer errors
        // than a small one across a decent sample.
        use mhd_corpus::generator::{Generator, PostSpec, Style};
        use mhd_corpus::taxonomy::Severity;
        use rand::SeedableRng;
        let bb = backbone();
        let g = Generator::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let mut errs7 = 0;
        let mut errs4 = 0;
        let n = 60;
        for i in 0..n {
            let (disorder, gold) = if i % 2 == 0 {
                (Disorder::Depression, "depression")
            } else {
                (Disorder::Control, "control")
            };
            let spec_post = PostSpec {
                disorder,
                severity: Severity::Mild,
                secondary: None,
                style: Style::RedditPost,
            };
            let post = g.generate(&spec_post, &mut rng);
            let p = parse_prompt(&format!("Options: control, depression\nPost: {post}\nAnswer:"));
            if bb.decide(&spec("sim-llama-7b"), &p, 0.0, i).label() != gold {
                errs7 += 1;
            }
            if bb.decide(&spec("sim-gpt-4"), &p, 0.0, i).label() != gold {
                errs4 += 1;
            }
        }
        assert!(errs4 <= errs7, "gpt4 errs {errs4} vs llama7 errs {errs7} of {n}");
    }

    #[test]
    fn fewshot_demos_shift_decision() {
        let bb = backbone();
        // An idiosyncratic label name the model cannot resolve: zero-shot it
        // has no prototype, but demonstrations teach it.
        let zero = parse_prompt(
            "Options: groupA, groupB\nPost: i am so worried and anxious, full of panic\nAnswer:",
        );
        let few = parse_prompt(
            "Options: groupA, groupB\n\
             Post: panic attacks and constant worry\nAnswer: groupA\n\
             Post: anxious and scared all week\nAnswer: groupA\n\
             Post: happy fun weekend with friends\nAnswer: groupB\n\
             Post: lovely dinner and a good game\nAnswer: groupB\n\
             Post: i am so worried and anxious, full of panic\nAnswer:",
        );
        let m = spec("sim-gpt-4");
        let zs = bb.decide(&m, &zero, 0.0, 3);
        let fs = bb.decide(&m, &few, 0.0, 3);
        // Few-shot must put clearly more probability on groupA than zero-shot.
        assert!(fs.probs[0] > zs.probs[0] + 0.1, "zs {:?} fs {:?}", zs.probs, fs.probs);
        assert_eq!(fs.label(), "groupa");
    }

    #[test]
    fn missing_labels_fall_back_to_disorder_vocabulary() {
        let bb = backbone();
        let p = parse_prompt("is this person ok? i want to die, i feel like a burden");
        let d = bb.decide(&spec("sim-gpt-4"), &p, 0.0, 5);
        assert_eq!(d.labels.len(), Disorder::ALL.len());
        assert_eq!(d.label(), "suicidal ideation");
    }

    #[test]
    fn evidence_words_come_from_query() {
        let bb = backbone();
        let p = parse_prompt(
            "Options: control, depression\nPost: i feel hopeless and empty tonight\nAnswer:",
        );
        let d = bb.decide(&spec("sim-gpt-4"), &p, 0.0, 2);
        assert!(!d.evidence.is_empty());
        for w in &d.evidence {
            assert!(p.query.contains(w.as_str()), "evidence {w} not in query");
        }
    }

    #[test]
    fn temperature_spreads_choices() {
        let bb = backbone();
        // A fully neutral post: close to both prototypes, so sampling
        // temperature can flip the decision.
        let p = parse_prompt(
            "Options: control, depression\nPost: watched a show and did some groceries\nAnswer:",
        );
        let m = spec("sim-llama-7b"); // high feature noise widens the spread further
        let mut seen = std::collections::HashSet::new();
        for s in 0..60 {
            seen.insert(bb.decide(&m, &p, 3.0, s).chosen);
        }
        assert!(seen.len() > 1, "high temperature should vary the choice");
    }
}
