#![forbid(unsafe_code)]
//! # mhd-llm — simulated large-language-model runtime
//!
//! Replaces the OpenAI / LLaMA APIs the surveyed papers prompt against with
//! a deterministic simulated runtime exposing the same contract: **text
//! prompt in → text completion out**, plus token usage, cost and latency.
//!
//! The simulation is *honest at the interface*: the model genuinely parses
//! the caller's prompt to discover the instruction, the candidate labels,
//! any few-shot demonstrations and the query post; it classifies with an
//! internal capability-scaled semantic backbone; and it *renders* a textual
//! answer the caller must parse back — including the format drift, synonym
//! answers and occasional refusals that make output parsing a real concern
//! with production LLMs.
//!
//! Capability comes from a scaling-law over (simulated) parameter count, so
//! the benchmark's model-scale curves (Figure F1) emerge mechanistically
//! rather than being hard-coded per table.
//!
//! Modules:
//! - [`zoo`] — model catalog and scaling law
//! - [`knowledge`] — the backbone's "pretraining": concept prototypes
//! - [`parse`] — prompt parsing (labels, demonstrations, query)
//! - [`backbone`] — capability-scaled scoring of labels for a post
//! - [`render`] — completion rendering with fidelity-dependent drift
//! - [`client`] — the `LlmClient` chat API with caching
//! - [`chat`] — role-tagged message API + discounted batch endpoint
//! - [`finetune`] — LoRA instruction-fine-tuning endpoint
//! - [`cost`] — token pricing and latency model

pub mod backbone;
pub mod chat;
pub mod client;
pub mod cost;
pub mod finetune;
pub mod knowledge;
pub mod parse;
pub mod render;
pub mod zoo;

pub use client::{ChatRequest, ChatResponse, LlmClient, LlmError, Usage};
pub use zoo::{ModelFamily, ModelSpec};
