//! Completion rendering — how the model *says* its answer.
//!
//! Real LLM output drifts from the requested format: synonyms for labels,
//! prose wrappers, reasoning that buries the answer, JSON with the wrong
//! key. Fidelity (per model) controls how often the clean format is
//! produced; the drift modes below are the ones the output-parsing
//! literature catalogs.

use crate::backbone::Decision;
use crate::parse::ParsedPrompt;
use crate::zoo::ModelSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Render the completion text for a decision.
pub fn render_completion(
    spec: &ModelSpec,
    parsed: &ParsedPrompt,
    decision: &Decision,
    temperature: f64,
    seed: u64,
) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let label = decision.label().to_string();
    // Higher sampling temperature erodes format adherence too.
    let effective_fidelity = (spec.fidelity() - 0.10 * temperature.max(0.0)).clamp(0.05, 0.99);
    let clean = rng.gen_bool(effective_fidelity);

    let answer_text = if clean {
        label.clone()
    } else {
        drift_label(&label, &mut rng)
    };

    let mut out = String::new();
    if parsed.wants_cot {
        out.push_str(&render_reasoning(decision, effective_fidelity, &mut rng));
        out.push(' ');
    }
    if parsed.wants_json {
        if clean {
            out.push_str(&format!("{{\"label\": \"{answer_text}\"}}"));
        } else {
            // Classic drift: wrong key, or unquoted value.
            if rng.gen_bool(0.5) {
                out.push_str(&format!("{{\"answer\": \"{answer_text}\"}}"));
            } else {
                out.push_str(&format!("{{\"label\": {answer_text}}}"));
            }
        }
    } else if clean {
        out.push_str(&format!("Answer: {answer_text}"));
    } else if rng.gen_bool(0.2) {
        // Worst-case drift: a hedge with no label at all — unparseable, the
        // caller must fall back. Concentrated in low-fidelity models.
        let hedges = [
            "It is hard to say from this post alone; more context would be needed.",
            "The post shows some concerning signals but I cannot be certain either way.",
            "This could go either way depending on the poster's wider history.",
        ];
        // mhd-lint: allow(R6) — hedges is a non-empty local const table
        out.push_str(hedges.choose(&mut rng).expect("non-empty"));
    } else {
        let wrappers = [
            format!("I would say this is {answer_text}."),
            format!("The post most likely indicates {answer_text}."),
            format!("Based on the text, the answer is: {answer_text}"),
            answer_text.clone(),
        ];
        // mhd-lint: allow(R6) — wrappers is a non-empty local table
        out.push_str(wrappers.choose(&mut rng).expect("non-empty"));
    }
    out
}

/// Render a refusal message (safety-tuned models on self-harm content).
pub fn render_refusal() -> String {
    "I'm really sorry you're going through this, but I can't provide an assessment. \
     If you or someone you know is struggling, please reach out to a crisis line or a \
     mental health professional."
        .to_string()
}

/// Plausible-sounding clinical words used when a low-fidelity model
/// hallucinates evidence that is not actually in the post.
const HALLUCINATED_EVIDENCE: &[&str] =
    &["devastated", "isolated", "panicked", "insomnia", "burdened", "spiralling"];

fn render_reasoning(decision: &Decision, fidelity: f64, rng: &mut StdRng) -> String {
    let mut s = String::from("Reasoning: the post ");
    if decision.evidence.is_empty() {
        s.push_str("contains no strong markers either way");
    } else {
        // Evidence hallucination: low-fidelity models sometimes cite a
        // plausible word that is not in the post — the unfaithful-rationale
        // phenomenon the interpretability literature measures.
        let mut cited = decision.evidence.clone();
        if rng.gen_bool(((1.0 - fidelity) * 0.8).clamp(0.0, 1.0)) {
            // mhd-lint: allow(R6) — HALLUCINATED_EVIDENCE is a non-empty const array
            let fake = HALLUCINATED_EVIDENCE.choose(rng).expect("non-empty");
            let slot = rng.gen_range(0..cited.len());
            cited[slot] = fake.to_string();
        }
        s.push_str("mentions ");
        for (i, w) in cited.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            s.push_str(w);
            s.push('"');
        }
    }
    let connective = [
        ", which points toward this conclusion.",
        ", a pattern consistent with the label.",
        "; weighing the overall tone supports the judgement.",
    ];
    // mhd-lint: allow(R6) — connective is a non-empty local const table
    s.push_str(connective.choose(rng).expect("non-empty"));
    s
}

/// Label drift: synonym or inflection of the clean label.
fn drift_label(label: &str, rng: &mut StdRng) -> String {
    let synonyms: &[&str] = match label {
        "depression" => &["depressed", "depressive disorder", "major depression"],
        "suicide" | "suicidal ideation" => &["suicidal", "suicide risk", "self-harm risk"],
        "anxiety" => &["anxious", "anxiety disorder"],
        "stress" | "stressed" => &["stressed out", "under stress", "high stress"],
        "not stressed" => &["no stress", "calm", "not under stress"],
        "control" => &["healthy", "no disorder", "normal"],
        "ptsd" => &["post-traumatic stress", "trauma-related"],
        "bipolar" => &["bipolar disorder", "manic-depressive"],
        _ => &[],
    };
    match synonyms.choose(rng) {
        Some(s) => s.to_string(),
        None => label.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::Decision;
    use crate::parse::parse_prompt;
    use crate::zoo::builtin_models;

    fn decision() -> Decision {
        Decision {
            labels: vec!["control".into(), "depression".into()],
            probs: vec![0.2, 0.8],
            chosen: 1,
            evidence: vec!["hopeless".into(), "empty".into()],
        }
    }

    fn spec(name: &str) -> ModelSpec {
        builtin_models().into_iter().find(|m| m.name == name).expect("model")
    }

    #[test]
    fn clean_render_has_answer_prefix() {
        let p = parse_prompt("Options: control, depression\nPost: x\nAnswer:");
        // Find a seed that renders cleanly for a high-fidelity model.
        let out = render_completion(&spec("sim-gpt-4"), &p, &decision(), 0.0, 1);
        assert!(out.to_lowercase().contains("depress"), "{out}");
    }

    #[test]
    fn cot_render_includes_reasoning_and_evidence() {
        let p = parse_prompt("Think step by step.\nOptions: a, b\nPost: x\nAnswer:");
        let out = render_completion(&spec("sim-gpt-4"), &p, &decision(), 0.0, 2);
        assert!(out.starts_with("Reasoning:"), "{out}");
        assert!(out.contains("hopeless"), "{out}");
    }

    #[test]
    fn json_render_is_jsonish() {
        let p = parse_prompt("Answer in JSON.\nOptions: a, b\nPost: x\nAnswer:");
        let out = render_completion(&spec("sim-gpt-4"), &p, &decision(), 0.0, 3);
        assert!(out.contains('{') && out.contains('}'), "{out}");
    }

    #[test]
    fn low_fidelity_models_drift_more() {
        let p = parse_prompt("Options: control, depression\nPost: x\nAnswer:");
        let count_clean = |name: &str| {
            (0..200u64)
                .filter(|&s| {
                    render_completion(&spec(name), &p, &decision(), 0.0, s)
                        .starts_with("Answer: depression")
                })
                .count()
        };
        let clean_7b = count_clean("sim-llama-7b");
        let clean_gpt4 = count_clean("sim-gpt-4");
        assert!(clean_gpt4 > clean_7b, "gpt4 {clean_gpt4} vs 7b {clean_7b}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = parse_prompt("Options: a, b\nPost: x\nAnswer:");
        let a = render_completion(&spec("sim-gpt-3.5"), &p, &decision(), 0.7, 42);
        let b = render_completion(&spec("sim-gpt-3.5"), &p, &decision(), 0.7, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn refusal_mentions_crisis_resources() {
        let r = render_refusal();
        assert!(r.contains("crisis"));
    }

    #[test]
    fn temperature_erodes_format() {
        let p = parse_prompt("Options: control, depression\nPost: x\nAnswer:");
        let clean_at = |t: f64| {
            (0..200u64)
                .filter(|&s| {
                    render_completion(&spec("sim-gpt-3.5"), &p, &decision(), t, s)
                        .starts_with("Answer:")
                })
                .count()
        };
        assert!(clean_at(0.0) > clean_at(2.0));
    }
}
