//! Model catalog and the capability scaling law.

/// Model family, controlling pricing, safety behaviour and tuning defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Open-weights LLaMA-style chat models.
    OpenChat,
    /// Instruction-tuned encoder-decoder (FLAN-style).
    FlanT5,
    /// Commercial GPT-style API models (safety-tuned).
    GptApi,
    /// A LoRA fine-tune of one of the above.
    FineTuned,
}

/// Static description of one simulated model.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Model id used in requests ("sim-gpt-4").
    pub name: String,
    /// Family.
    pub family: ModelFamily,
    /// Nominal parameter count in billions.
    pub params_b: f64,
    /// Context window in tokens.
    pub context_window: usize,
    /// USD per 1k prompt tokens.
    pub price_in_per_1k: f64,
    /// USD per 1k completion tokens.
    pub price_out_per_1k: f64,
    /// Base request latency in milliseconds.
    pub latency_base_ms: f64,
    /// Additional latency per completion token, milliseconds.
    pub latency_per_token_ms: f64,
}

impl ModelSpec {
    /// Capability in (0, 1): the scaling-law core of the simulation.
    ///
    /// `cap = q_family + 0.88 − 0.75 · params_b^(−0.35)`, clamped to
    /// (0.05, 0.97). The −0.35 exponent gives the diminishing-returns shape
    /// every published scale curve shows; family offsets encode training
    /// quality differences (RLHF-polished API models punch above their
    /// parameter count, FLAN-T5 below).
    pub fn capability(&self) -> f64 {
        let scale_term = 0.88 - 0.75 * self.params_b.powf(-0.35);
        (self.family_quality() + scale_term).clamp(0.05, 0.97)
    }

    fn family_quality(&self) -> f64 {
        match self.family {
            ModelFamily::OpenChat => 0.0,
            ModelFamily::FlanT5 => -0.04,
            ModelFamily::GptApi => 0.05,
            ModelFamily::FineTuned => 0.0,
        }
    }

    /// Instruction-following fidelity in (0, 1): probability-like control of
    /// emitting exactly the requested output format.
    pub fn fidelity(&self) -> f64 {
        let base = match self.family {
            ModelFamily::OpenChat => 0.62,
            ModelFamily::FlanT5 => 0.80, // instruction-tuned: formats well despite low capability
            ModelFamily::GptApi => 0.88,
            ModelFamily::FineTuned => 0.95, // fine-tuned on exact output format
        };
        (base + 0.25 * self.capability()).min(0.99)
    }

    /// Chain-of-thought gain: how much explicit reasoning sharpens the
    /// decision. Negative for small models — CoT *hurts* below a capability
    /// threshold, the replicated "emergent CoT" finding.
    pub fn cot_gain(&self) -> f64 {
        (self.capability() - 0.55) * 1.8
    }

    /// How strongly in-context demonstrations move the model (0..1).
    pub fn fewshot_weight(&self) -> f64 {
        (self.capability() - 0.25).clamp(0.05, 0.75)
    }

    /// Probability of refusing a self-harm-heavy query (safety tuning).
    pub fn refusal_rate(&self) -> f64 {
        match self.family {
            ModelFamily::GptApi => 0.03,
            ModelFamily::FineTuned => 0.0,
            _ => 0.005,
        }
    }

    /// Effective reading depth in tokens: small models effectively attend to
    /// a shorter prefix of long posts.
    pub fn reading_depth(&self) -> usize {
        (64.0 + 448.0 * self.capability()) as usize
    }
}

impl ModelSpec {
    /// Construct a synthetic model of a given scale with price/latency
    /// derived from the parameter count — used for scaling-law sweeps
    /// (Artifact A6) and custom-zoo experiments.
    pub fn synthetic(name: impl Into<String>, params_b: f64, family: ModelFamily) -> Self {
        assert!(params_b > 0.0, "params must be positive");
        // Self-hosting cost and latency grow roughly linearly in parameters.
        let price = 1.4e-5 * params_b;
        ModelSpec {
            name: name.into(),
            family,
            params_b,
            context_window: 4096,
            price_in_per_1k: price,
            price_out_per_1k: price,
            latency_base_ms: 60.0 + params_b.sqrt() * 15.0,
            latency_per_token_ms: 2.0 + params_b * 0.45,
        }
    }
}

/// The built-in model catalog.
pub fn builtin_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "sim-llama-7b".into(),
            family: ModelFamily::OpenChat,
            params_b: 7.0,
            context_window: 4096,
            price_in_per_1k: 0.0001,
            price_out_per_1k: 0.0001,
            latency_base_ms: 80.0,
            latency_per_token_ms: 18.0,
        },
        ModelSpec {
            name: "sim-llama-13b".into(),
            family: ModelFamily::OpenChat,
            params_b: 13.0,
            context_window: 4096,
            price_in_per_1k: 0.0002,
            price_out_per_1k: 0.0002,
            latency_base_ms: 100.0,
            latency_per_token_ms: 26.0,
        },
        ModelSpec {
            name: "sim-llama-70b".into(),
            family: ModelFamily::OpenChat,
            params_b: 70.0,
            context_window: 4096,
            price_in_per_1k: 0.0009,
            price_out_per_1k: 0.0009,
            latency_base_ms: 180.0,
            latency_per_token_ms: 55.0,
        },
        ModelSpec {
            name: "sim-flan-t5-xxl".into(),
            family: ModelFamily::FlanT5,
            params_b: 11.0,
            context_window: 2048,
            price_in_per_1k: 0.0002,
            price_out_per_1k: 0.0002,
            latency_base_ms: 90.0,
            latency_per_token_ms: 22.0,
        },
        ModelSpec {
            name: "sim-gpt-3.5".into(),
            family: ModelFamily::GptApi,
            params_b: 175.0,
            context_window: 16384,
            price_in_per_1k: 0.0005,
            price_out_per_1k: 0.0015,
            latency_base_ms: 350.0,
            latency_per_token_ms: 14.0,
        },
        ModelSpec {
            name: "sim-gpt-4".into(),
            family: ModelFamily::GptApi,
            params_b: 1000.0,
            context_window: 32768,
            price_in_per_1k: 0.03,
            price_out_per_1k: 0.06,
            latency_base_ms: 600.0,
            latency_per_token_ms: 35.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> ModelSpec {
        builtin_models().into_iter().find(|m| m.name == name).expect("model exists")
    }

    #[test]
    fn capability_monotone_in_scale() {
        let order = ["sim-llama-7b", "sim-llama-13b", "sim-llama-70b", "sim-gpt-3.5", "sim-gpt-4"];
        let caps: Vec<f64> = order.iter().map(|n| by_name(n).capability()).collect();
        for w in caps.windows(2) {
            assert!(w[0] < w[1], "capability ordering violated: {caps:?}");
        }
    }

    #[test]
    fn capability_bounded() {
        for m in builtin_models() {
            let c = m.capability();
            assert!((0.05..=0.97).contains(&c), "{}: {c}", m.name);
        }
    }

    #[test]
    fn cot_hurts_small_helps_large() {
        assert!(by_name("sim-llama-7b").cot_gain() < 0.0);
        assert!(by_name("sim-gpt-4").cot_gain() > 0.0);
        assert!(by_name("sim-gpt-4").cot_gain() > by_name("sim-llama-70b").cot_gain());
    }

    #[test]
    fn flan_t5_formats_better_than_bigger_llama() {
        // Instruction tuning buys fidelity, not capability.
        let flan = by_name("sim-flan-t5-xxl");
        let llama70 = by_name("sim-llama-70b");
        assert!(flan.fidelity() > llama70.fidelity());
        assert!(flan.capability() < llama70.capability());
    }

    #[test]
    fn gpt4_most_expensive() {
        let models = builtin_models();
        let gpt4 = by_name("sim-gpt-4");
        for m in &models {
            assert!(m.price_out_per_1k <= gpt4.price_out_per_1k);
        }
    }

    #[test]
    fn unique_names() {
        let mut names: Vec<_> = builtin_models().into_iter().map(|m| m.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), builtin_models().len());
    }

    #[test]
    fn reading_depth_scales() {
        assert!(by_name("sim-gpt-4").reading_depth() > by_name("sim-llama-7b").reading_depth());
        assert!(by_name("sim-llama-7b").reading_depth() >= 64);
    }

    #[test]
    fn synthetic_models_follow_scaling_law() {
        let small = ModelSpec::synthetic("s-3b", 3.0, ModelFamily::OpenChat);
        let big = ModelSpec::synthetic("s-300b", 300.0, ModelFamily::OpenChat);
        assert!(small.capability() < big.capability());
        assert!(small.price_out_per_1k < big.price_out_per_1k);
        assert!(small.latency_per_token_ms < big.latency_per_token_ms);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn synthetic_rejects_zero_params() {
        ModelSpec::synthetic("bad", 0.0, ModelFamily::OpenChat);
    }

    #[test]
    fn safety_tuned_models_refuse_more() {
        assert!(by_name("sim-gpt-4").refusal_rate() > by_name("sim-llama-7b").refusal_rate());
    }
}
