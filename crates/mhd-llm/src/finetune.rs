//! Instruction fine-tuning via LoRA adapters.
//!
//! The endpoint mirrors the OpenAI fine-tune API shape the surveyed papers
//! use: submit `(prompt, completion)` pairs, get back a new model id. Under
//! the hood it is *real* optimization: a low-rank adapter
//! ([`mhd_nn::LoraAdapter`]) trained by SGD over the frozen backbone's
//! feature representation — so training-set-size effects (Figure F5) and
//! the fine-tuned-vs-zero-shot ordering (Table T4) emerge from actual
//! learning dynamics, not from a lookup table.

use crate::backbone::Backbone;
use crate::parse::parse_prompt;
use crate::zoo::ModelSpec;
use mhd_nn::lora::LoraAdapter;
use mhd_obs::{StatCell, StatTimer};
use mhd_text::hashing::HashingVectorizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One record per adapter epoch across all fine-tune jobs in the process.
static T_FT_EPOCH: StatCell = StatCell::new("llm.finetune.epoch");

/// Dimensionality of the hashed n-gram block in fine-tune feature space.
const HASH_DIM: u32 = 160;
/// Scale applied to lexicon rates so both feature blocks have similar
/// magnitude (rates are ~0.00–0.2, hashed entries ~0.1–0.3).
const RATE_SCALE: f64 = 5.0;

/// A fine-tuning job specification.
#[derive(Debug, Clone)]
pub struct FineTuneJob {
    /// Base model name (must exist in the zoo).
    pub base_model: String,
    /// Training pairs: full prompt text and the gold completion (label).
    pub examples: Vec<(String, String)>,
    /// LoRA rank.
    pub rank: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed for init/shuffling.
    pub seed: u64,
}

impl FineTuneJob {
    /// Sensible defaults: rank 8, 14 epochs.
    pub fn new(base_model: impl Into<String>, examples: Vec<(String, String)>) -> Self {
        FineTuneJob {
            base_model: base_model.into(),
            examples,
            rank: 8,
            epochs: 14,
            lr: 0.02,
            seed: 31,
        }
    }
}

/// A trained fine-tune: the adapter plus its label vocabulary.
#[derive(Debug, Clone)]
pub struct FineTuned {
    /// Label strings in adapter-output order.
    pub labels: Vec<String>,
    adapter: LoraAdapter,
    hasher: HashingVectorizer,
}

/// Combined fine-tune feature vector for a text under a model spec.
pub fn ft_features(backbone: &Backbone, spec: &ModelSpec, hasher: &HashingVectorizer, text: &str) -> Vec<f32> {
    let rates = backbone.features_for(spec, text);
    let mut f: Vec<f32> = rates.iter().map(|&r| (r * RATE_SCALE) as f32).collect();
    let mut hashed = vec![0.0f32; HASH_DIM as usize];
    for (i, v) in hasher.transform(text).iter() {
        hashed[i as usize] = v as f32;
    }
    f.extend(hashed);
    f
}

/// Train a fine-tune. Returns `Err` when the job has no usable examples.
pub fn train_finetune(
    backbone: &Backbone,
    spec: &ModelSpec,
    job: &FineTuneJob,
) -> Result<FineTuned, String> {
    // Extract (query, label) pairs by parsing each training prompt exactly
    // the way inference will.
    let mut labels: Vec<String> = Vec::new();
    let mut pairs: Vec<(String, usize)> = Vec::new();
    for (prompt, completion) in &job.examples {
        let parsed = parse_prompt(prompt);
        if parsed.query.is_empty() {
            continue;
        }
        let target = completion.trim().to_lowercase();
        if target.is_empty() {
            continue;
        }
        let idx = match labels.iter().position(|l| *l == target) {
            Some(i) => i,
            None => {
                labels.push(target);
                labels.len() - 1
            }
        };
        pairs.push((parsed.query, idx));
    }
    if pairs.is_empty() || labels.len() < 2 {
        return Err("fine-tune job needs examples covering at least two labels".to_string());
    }
    let hasher = HashingVectorizer::new(HASH_DIM, 2);
    let xs: Vec<Vec<f32>> =
        pairs.iter().map(|(q, _)| ft_features(backbone, spec, &hasher, q)).collect();
    let ys: Vec<usize> = pairs.iter().map(|&(_, y)| y).collect();
    let dim = xs[0].len();
    // Frozen base map is zero: the pretrained backbone's zero-shot scoring
    // stays available separately; the adapter learns the task head.
    let mut adapter = LoraAdapter::new(
        vec![0.0; labels.len() * dim],
        vec![0.0; labels.len()],
        labels.len(),
        dim,
        job.rank.max(1),
        job.lr,
        job.seed,
    );
    let mut rng = StdRng::seed_from_u64(job.seed);
    let mut order: Vec<usize> = (0..xs.len()).collect();
    for _ in 0..job.epochs {
        let _epoch_t = StatTimer::start(&T_FT_EPOCH);
        order.shuffle(&mut rng);
        for chunk in order.chunks(16) {
            let bx: Vec<Vec<f32>> = chunk.iter().map(|&i| xs[i].clone()).collect();
            let by: Vec<usize> = chunk.iter().map(|&i| ys[i]).collect();
            adapter.train_batch(&bx, &by);
        }
    }
    Ok(FineTuned { labels, adapter, hasher })
}

impl FineTuned {
    /// Score a query; returns probabilities aligned with `self.labels`.
    pub fn predict_proba(&self, backbone: &Backbone, spec: &ModelSpec, query: &str) -> Vec<f64> {
        let f = ft_features(backbone, spec, &self.hasher, query);
        let logits = self.adapter.forward(&f);
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = logits.iter().map(|&l| ((l - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Trainable parameter count of the adapter.
    pub fn trainable_params(&self) -> usize {
        self.adapter.trainable_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::builtin_models;

    fn spec() -> ModelSpec {
        builtin_models().into_iter().find(|m| m.name == "sim-llama-7b").expect("model")
    }

    fn prompt_for(text: &str) -> String {
        format!("Classify the post.\nOptions: happy, sad\nPost: {text}\nAnswer:")
    }

    fn job() -> FineTuneJob {
        let mut examples = Vec::new();
        let sad = [
            "i feel hopeless and empty tonight",
            "crying again, everything is pointless",
            "so worthless and alone, cannot sleep",
            "numb and dark, nothing matters",
            "i am exhausted and hopeless",
            "the sadness never leaves me",
        ];
        let happy = [
            "wonderful day at the park with friends",
            "great dinner and lots of laughs",
            "excited about the weekend trip",
            "the game was fun, we celebrated",
            "grateful and content with life",
            "lovely walk in the sunshine today",
        ];
        for t in sad {
            examples.push((prompt_for(t), "sad".to_string()));
        }
        for t in happy {
            examples.push((prompt_for(t), "happy".to_string()));
        }
        FineTuneJob::new("sim-llama-7b", examples)
    }

    #[test]
    fn finetune_learns_task() {
        let bb = Backbone::new(1);
        let ft = train_finetune(&bb, &spec(), &job()).expect("train ok");
        assert_eq!(ft.labels.len(), 2);
        let p_sad = ft.predict_proba(&bb, &spec(), "hopeless and crying, so empty");
        let p_happy = ft.predict_proba(&bb, &spec(), "fun weekend with friends, grateful");
        let sad_idx = ft.labels.iter().position(|l| l == "sad").expect("label");
        let happy_idx = 1 - sad_idx;
        assert!(p_sad[sad_idx] > 0.6, "{p_sad:?}");
        assert!(p_happy[happy_idx] > 0.6, "{p_happy:?}");
    }

    #[test]
    fn rejects_degenerate_jobs() {
        let bb = Backbone::new(1);
        let empty = FineTuneJob::new("sim-llama-7b", vec![]);
        assert!(train_finetune(&bb, &spec(), &empty).is_err());
        let one_label = FineTuneJob::new(
            "sim-llama-7b",
            vec![(prompt_for("a"), "x".to_string()), (prompt_for("b"), "x".to_string())],
        );
        assert!(train_finetune(&bb, &spec(), &one_label).is_err());
    }

    #[test]
    fn adapter_is_small() {
        let bb = Backbone::new(1);
        let ft = train_finetune(&bb, &spec(), &job()).expect("train ok");
        // Low-rank: far fewer trainable params than a full dense map.
        let dim = 18 + HASH_DIM as usize;
        assert!(ft.trainable_params() < 2 * dim * 8 + 32);
    }

    #[test]
    fn deterministic() {
        let bb = Backbone::new(1);
        let a = train_finetune(&bb, &spec(), &job()).expect("ok");
        let b = train_finetune(&bb, &spec(), &job()).expect("ok");
        let q = "crying tonight";
        assert_eq!(a.predict_proba(&bb, &spec(), q), b.predict_proba(&bb, &spec(), q));
    }

    #[test]
    fn more_data_helps() {
        let bb = Backbone::new(1);
        let full = job();
        // Small job: two examples of each label (examples are 6 sad then 6 happy).
        let small_examples: Vec<_> =
            [0usize, 1, 6, 7].iter().map(|&i| full.examples[i].clone()).collect();
        let small = FineTuneJob { examples: small_examples, ..full.clone() };
        let ft_small = train_finetune(&bb, &spec(), &small).expect("ok");
        let ft_full = train_finetune(&bb, &spec(), &full).expect("ok");
        // Evaluate on held-out phrasings.
        let eval = [
            ("i feel so hopeless and sad and worthless", "sad"),
            ("meaningless dark night, crying alone", "sad"),
            ("joyful trip with my family, wonderful", "happy"),
            ("laughed a lot at the party tonight", "happy"),
        ];
        let acc = |ft: &FineTuned| {
            eval.iter()
                .filter(|(t, gold)| {
                    let p = ft.predict_proba(&bb, &spec(), t);
                    let best = p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).expect("finite")).expect("non-empty").0;
                    ft.labels[best] == *gold
                })
                .count()
        };
        assert!(acc(&ft_full) >= acc(&ft_small));
    }
}
