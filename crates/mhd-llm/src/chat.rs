//! Message-based chat API and batch endpoint.
//!
//! Real LLM APIs take role-tagged message lists rather than one flat string,
//! and offer discounted asynchronous batch endpoints. This module layers
//! both shapes over [`crate::client::LlmClient`] so caller code ports 1:1:
//!
//! - [`ChatMessage`] / [`chat_complete`] — role-tagged conversation input;
//! - [`complete_batch`] — many requests at once, with the industry-standard
//!   50% batch discount applied to the reported cost.

use crate::client::{ChatRequest, ChatResponse, LlmClient, LlmError};

/// Message author role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// System instructions (highest priority framing).
    System,
    /// End-user content.
    User,
    /// Prior assistant turns (for multi-turn transcripts).
    Assistant,
}

impl Role {
    /// Transcript tag.
    fn tag(self) -> &'static str {
        match self {
            Role::System => "system",
            Role::User => "user",
            Role::Assistant => "assistant",
        }
    }
}

/// One conversation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// Author role.
    pub role: Role,
    /// Message text.
    pub content: String,
}

impl ChatMessage {
    /// System message.
    pub fn system(content: impl Into<String>) -> Self {
        ChatMessage { role: Role::System, content: content.into() }
    }

    /// User message.
    pub fn user(content: impl Into<String>) -> Self {
        ChatMessage { role: Role::User, content: content.into() }
    }

    /// Assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        ChatMessage { role: Role::Assistant, content: content.into() }
    }
}

/// Render a message list to the flat prompt the runtime consumes. System
/// content leads; prior turns are kept in order; role tags are dropped for
/// the final user turn so prompt conventions (`Post:`/`Answer:`) survive.
pub fn render_transcript(messages: &[ChatMessage]) -> String {
    let mut out = String::new();
    for (i, m) in messages.iter().enumerate() {
        let is_last = i + 1 == messages.len();
        if is_last && m.role == Role::User {
            out.push_str(&m.content);
        } else {
            out.push_str(&format!("[{}] {}\n", m.role.tag(), m.content));
        }
    }
    out
}

/// Message-based completion: renders the transcript and delegates.
pub fn chat_complete(
    client: &LlmClient,
    model: &str,
    messages: &[ChatMessage],
    temperature: f64,
    seed: u64,
) -> Result<ChatResponse, LlmError> {
    let req = ChatRequest {
        model: model.to_string(),
        prompt: render_transcript(messages),
        temperature,
        seed,
    };
    client.complete(&req)
}

/// Batch discount factor on reported cost.
pub const BATCH_DISCOUNT: f64 = 0.5;

/// Batch endpoint: run every request, apply the batch discount to each
/// response's cost. Per-request errors are returned in-position rather than
/// failing the whole batch (matching real batch-API semantics).
pub fn complete_batch(
    client: &LlmClient,
    requests: &[ChatRequest],
) -> Vec<Result<ChatResponse, LlmError>> {
    requests
        .iter()
        .map(|req| {
            client.complete(req).map(|mut resp| {
                resp.cost_usd *= BATCH_DISCOUNT;
                resp
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> LlmClient {
        LlmClient::new(1234)
    }

    fn classify_messages(post: &str) -> Vec<ChatMessage> {
        vec![
            ChatMessage::system("You are a careful clinical triage assistant."),
            ChatMessage::user(format!(
                "Options: control, depression\nPost: {post}\nAnswer:"
            )),
        ]
    }

    #[test]
    fn chat_api_equivalent_to_flat_prompt() {
        let c = client();
        let messages = classify_messages("i feel hopeless and empty every night");
        let resp = chat_complete(&c, "sim-gpt-4", &messages, 0.0, 1).expect("ok");
        assert!(resp.text.to_lowercase().contains("depress"), "{}", resp.text);
    }

    #[test]
    fn transcript_renders_roles() {
        let messages = vec![
            ChatMessage::system("sys"),
            ChatMessage::assistant("prev"),
            ChatMessage::user("Options: a, b\nPost: x\nAnswer:"),
        ];
        let t = render_transcript(&messages);
        assert!(t.starts_with("[system] sys\n"));
        assert!(t.contains("[assistant] prev\n"));
        assert!(t.ends_with("Answer:"), "final user turn kept verbatim: {t}");
    }

    #[test]
    fn final_user_turn_parses_cleanly() {
        // The parser must still see the Options/Post structure after
        // transcript rendering.
        let t = render_transcript(&classify_messages("some post"));
        let parsed = crate::parse::parse_prompt(&t);
        assert_eq!(parsed.labels, vec!["control", "depression"]);
        assert_eq!(parsed.query, "some post");
    }

    #[test]
    fn batch_discount_applied() {
        let c = client();
        let req = ChatRequest::new(
            "sim-gpt-4",
            "Options: a, b\nPost: batch pricing check\nAnswer:",
        );
        let single = c.complete(&req).expect("ok");
        let batch = complete_batch(&c, std::slice::from_ref(&req));
        let batched = batch[0].as_ref().expect("ok");
        assert!((batched.cost_usd - single.cost_usd * BATCH_DISCOUNT).abs() < 1e-12);
        assert_eq!(batched.text, single.text);
    }

    #[test]
    fn batch_errors_in_position() {
        let c = client();
        let good = ChatRequest::new("sim-gpt-4", "Options: a, b\nPost: fine\nAnswer:");
        let bad = ChatRequest::new("no-such-model", "hi");
        let results = complete_batch(&c, &[good, bad]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(LlmError::UnknownModel(_))));
    }

    #[test]
    fn empty_batch() {
        let c = client();
        assert!(complete_batch(&c, &[]).is_empty());
    }
}
