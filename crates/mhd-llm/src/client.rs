//! The chat client: the single API surface callers prompt against.

use crate::backbone::Backbone;
use crate::cost::{cost_usd, latency_ms, CostTracker};
use crate::finetune::{train_finetune, FineTuneJob, FineTuned};
use crate::parse::parse_prompt;
use crate::render::{render_completion, render_refusal};
use crate::zoo::{builtin_models, ModelFamily, ModelSpec};
use mhd_fault::{retry_transient, Fault, FaultInjector, RetryPolicy, Site};
use mhd_text::bpe::estimate_tokens;
use mhd_text::hashing::fnv1a;
use mhd_text::lexicon::LexiconCategory;
use mhd_text::tokenize::words;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Token accounting for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Usage {
    /// Tokens in the prompt.
    pub prompt_tokens: usize,
    /// Tokens in the completion.
    pub completion_tokens: usize,
}

/// A completion request.
#[derive(Debug, Clone)]
pub struct ChatRequest {
    /// Model id ("sim-gpt-4", or a fine-tuned "ft:…" id).
    pub model: String,
    /// The full prompt text.
    pub prompt: String,
    /// Sampling temperature (0 = deterministic argmax).
    pub temperature: f64,
    /// Request seed: with the same seed and prompt, responses are identical.
    pub seed: u64,
}

impl ChatRequest {
    /// Deterministic request with temperature 0.
    pub fn new(model: impl Into<String>, prompt: impl Into<String>) -> Self {
        ChatRequest { model: model.into(), prompt: prompt.into(), temperature: 0.0, seed: 0 }
    }
}

/// A completion response.
#[derive(Debug, Clone)]
pub struct ChatResponse {
    /// The completion text.
    pub text: String,
    /// Token accounting.
    pub usage: Usage,
    /// Modelled latency, ms.
    pub latency_ms: f64,
    /// Dollar cost.
    pub cost_usd: f64,
    /// Whether the model refused (safety behaviour).
    pub refused: bool,
    /// Probability mass the model put on its chosen answer — the analogue
    /// of reading the answer token's logprob from a real API. `None` on
    /// refusals.
    pub top_prob: Option<f64>,
}

/// Errors the API can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// Requested model does not exist.
    UnknownModel(String),
    /// Prompt exceeds the model's context window.
    ContextOverflow {
        /// Prompt length in tokens.
        tokens: usize,
        /// Model's window.
        window: usize,
    },
    /// Fine-tune job was rejected.
    BadFineTune(String),
    /// A model with this name is already registered.
    ModelExists(String),
    /// Transient: the provider shed load; retry after the given delay.
    RateLimited {
        /// Provider-suggested retry delay, milliseconds.
        retry_after_ms: u64,
    },
    /// Transient: the request exceeded its deadline at the provider.
    TimedOut {
        /// How long the request ran before timing out, milliseconds.
        after_ms: u64,
    },
}

impl LlmError {
    /// True for errors worth retrying with backoff (rate limits and
    /// timeouts); permanent errors (unknown model, overflow, …) are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, LlmError::RateLimited { .. } | LlmError::TimedOut { .. })
    }
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::UnknownModel(m) => write!(f, "unknown model: {m}"),
            LlmError::ContextOverflow { tokens, window } => {
                write!(f, "prompt of {tokens} tokens exceeds context window {window}")
            }
            LlmError::BadFineTune(msg) => write!(f, "fine-tune rejected: {msg}"),
            LlmError::ModelExists(m) => write!(f, "model already registered: {m}"),
            LlmError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited; retry after {retry_after_ms} ms")
            }
            LlmError::TimedOut { after_ms } => {
                write!(f, "request timed out after {after_ms} ms")
            }
        }
    }
}

impl std::error::Error for LlmError {}

/// The simulated LLM service: model zoo, backbone, fine-tunes, cache and
/// cost accounting.
///
/// The client is `Send + Sync`: all mutable state sits behind locks (or an
/// atomic counter), so one client can serve requests from many worker
/// threads concurrently. Responses stay deterministic per request — the
/// decision seed depends only on (model, query, seed), never on which
/// thread issues the call or in what order calls interleave.
pub struct LlmClient {
    models: RwLock<HashMap<String, ModelSpec>>,
    backbone: Backbone,
    fine_tuned: RwLock<HashMap<String, (String, Arc<FineTuned>)>>, // id → (base, ft)
    cache: Mutex<HashMap<u64, ChatResponse>>,
    tracker: Mutex<CostTracker>,
    next_ft_id: AtomicU64,
    faults: RwLock<Option<Arc<FaultInjector>>>,
}

impl LlmClient {
    /// Create a client with the built-in zoo. `pretrain_seed` fixes the
    /// backbone's knowledge; the benchmark default is 1234.
    pub fn new(pretrain_seed: u64) -> Self {
        let models = builtin_models().into_iter().map(|m| (m.name.clone(), m)).collect();
        LlmClient {
            models: RwLock::new(models),
            backbone: Backbone::new(pretrain_seed),
            fine_tuned: RwLock::new(HashMap::new()),
            cache: Mutex::new(HashMap::new()),
            tracker: Mutex::new(CostTracker::new()),
            next_ft_id: AtomicU64::new(0),
            faults: RwLock::new(None),
        }
    }

    /// Install (or clear) a fault injector. While installed, every
    /// [`LlmClient::complete`] call consults the injector's
    /// `llm_request` site and may surface a transient
    /// [`LlmError::RateLimited`] or [`LlmError::TimedOut`] before any
    /// work is done — the simulated analogue of provider-side shedding.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.faults.write().unwrap_or_else(PoisonError::into_inner) = injector;
    }

    /// Names of all available models (zoo + fine-tunes), sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().unwrap_or_else(PoisonError::into_inner).keys().cloned().collect();
        names.extend(self.fine_tuned.read().unwrap_or_else(PoisonError::into_inner).keys().cloned());
        names.sort();
        names
    }

    /// Spec of a model (owned: the zoo lives behind a lock).
    pub fn spec(&self, model: &str) -> Option<ModelSpec> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        models.get(model).cloned().or_else(|| {
            self.fine_tuned
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .get(model)
                .and_then(|(base, _)| models.get(base).cloned())
        })
    }

    /// Issue a completion request.
    pub fn complete(&self, req: &ChatRequest) -> Result<ChatResponse, LlmError> {
        // Fault seam: the provider may shed this request before any work
        // happens. The injector decides purely from (scenario, seed,
        // op index), so the same storm replays identically.
        if let Some(inj) = self.faults.read().unwrap_or_else(PoisonError::into_inner).as_ref() {
            match inj.next(Site::LlmRequest) {
                Some(Fault::RateLimited { retry_after_ms }) => {
                    mhd_obs::counter_add("llm.rate_limited", 1);
                    return Err(LlmError::RateLimited { retry_after_ms });
                }
                Some(Fault::TimedOut { after_ms }) => {
                    mhd_obs::counter_add("llm.timed_out", 1);
                    return Err(LlmError::TimedOut { after_ms });
                }
                _ => {}
            }
        }
        let (spec, ft) = self.resolve(&req.model)?;
        let prompt_tokens = estimate_tokens(&req.prompt);
        if prompt_tokens > spec.context_window {
            return Err(LlmError::ContextOverflow {
                tokens: prompt_tokens,
                window: spec.context_window,
            });
        }
        // Cache key covers everything that determines the response.
        let key = fnv1a(
            format!("{}|{}|{}|{}", req.model, req.prompt, req.temperature.to_bits(), req.seed)
                .as_bytes(),
        );
        if let Some(hit) = self.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            mhd_obs::counter_add("llm.cache_hits", 1);
            return Ok(hit.clone());
        }

        let parsed = parse_prompt(&req.prompt);
        // The decision seed hashes (model, query post, request seed) — NOT
        // the full prompt — so the model's "misreading" of a given post is
        // a stable property of the post, and strategy comparisons on the
        // same post are paired (a temperature-0 API behaves the same way:
        // per-post error patterns persist across prompt variants).
        let decision_seed = fnv1a(format!("{}|{}", parsed.query, req.seed).as_bytes());
        let model_seed = decision_seed ^ fnv1a(req.model.as_bytes());

        // Safety refusal on death-saturated queries (API-family behaviour).
        let refusal_roll = (model_seed % 10_000) as f64 / 10_000.0;
        let death_rate = self
            .backbone
            .knowledge()
            .lexicon()
            .profile(&words(&parsed.query))
            .rate(LexiconCategory::Death);
        let refused = death_rate > 0.08 && refusal_roll < spec.refusal_rate();

        let (text, top_prob) = if refused {
            (render_refusal(), None)
        } else if let Some(ft_model) = ft {
            // Fine-tuned path: adapter probabilities over trained labels.
            // Total argmax: no NaN/empty assumptions, ties break to the
            // first (lowest-index) label on every platform.
            let probs = ft_model.predict_proba(&self.backbone, &spec, &parsed.query);
            let best = probs
                .iter()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |acc, (i, &p)| if p > acc.1 { (i, p) } else { acc })
                .0;
            // Fine-tuned models answer in exactly the trained format.
            let label = ft_model.labels.get(best).map(String::as_str).unwrap_or("unknown");
            (format!("Answer: {label}"), probs.get(best).copied())
        } else {
            let decision = self.backbone.decide(&spec, &parsed, req.temperature, decision_seed);
            let conf = decision.confidence();
            (render_completion(&spec, &parsed, &decision, req.temperature, model_seed), Some(conf))
        };

        let usage = Usage { prompt_tokens, completion_tokens: estimate_tokens(&text) };
        let response = ChatResponse {
            cost_usd: cost_usd(&spec, &usage),
            latency_ms: latency_ms(&spec, &usage),
            text,
            usage,
            refused,
            top_prob,
        };
        self.tracker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(&req.model, &usage, response.cost_usd, response.latency_ms);
        if mhd_obs::is_enabled() {
            // Side-channel accounting only: nothing here feeds the response.
            mhd_obs::counter_add("llm.requests", 1);
            if refused {
                mhd_obs::counter_add("llm.refusals", 1);
            }
            mhd_obs::counter_add("llm.prompt_tokens", usage.prompt_tokens as u64);
            mhd_obs::counter_add("llm.completion_tokens", usage.completion_tokens as u64);
            // Integer nano-USD keeps the manifest free of float formatting.
            mhd_obs::counter_add("llm.cost_nano_usd", (response.cost_usd * 1e9).round() as u64);
            mhd_obs::hist_record("llm.latency_ms", response.latency_ms.round() as u64);
        }
        // Two threads may race to compute the same key; both compute the
        // identical response (pure function of the request), so last-write
        // wins is harmless.
        self.cache.lock().unwrap_or_else(PoisonError::into_inner).insert(key, response.clone());
        Ok(response)
    }

    /// [`LlmClient::complete`] with seeded exponential-backoff retry on
    /// transient errors (rate limits, timeouts). Permanent errors return
    /// immediately; the jitter salt is derived from the request, so the
    /// delay schedule is reproducible per request under a fixed policy.
    pub fn complete_with_retry(
        &self,
        req: &ChatRequest,
        policy: &RetryPolicy,
    ) -> Result<ChatResponse, LlmError> {
        let salt = fnv1a(format!("{}|{}|{}", req.model, req.prompt, req.seed).as_bytes());
        retry_transient(policy, salt, LlmError::is_transient, |_| self.complete(req))
    }

    fn resolve(&self, model: &str) -> Result<(ModelSpec, Option<Arc<FineTuned>>), LlmError> {
        // Fine-tunes first: their spec is also registered in `models` (for
        // pricing lookups), but the adapter must drive inference.
        if let Some((_, ft)) = self.fine_tuned.read().unwrap_or_else(PoisonError::into_inner).get(model) {
            let spec = self
                .models
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .get(model)
                .cloned()
                .ok_or_else(|| LlmError::UnknownModel(model.to_string()))?;
            return Ok((spec, Some(Arc::clone(ft))));
        }
        match self.models.read().unwrap_or_else(PoisonError::into_inner).get(model).cloned() {
            Some(spec) => Ok((spec, None)),
            None => Err(LlmError::UnknownModel(model.to_string())),
        }
    }

    /// Register a custom model (e.g. a [`ModelSpec::synthetic`] scale-sweep
    /// point). Rejects name collisions with existing models.
    pub fn register_model(&self, spec: ModelSpec) -> Result<(), LlmError> {
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        if models.contains_key(&spec.name)
            || self.fine_tuned.read().unwrap_or_else(PoisonError::into_inner).contains_key(&spec.name)
        {
            return Err(LlmError::ModelExists(spec.name));
        }
        models.insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Submit a fine-tuning job; returns the new model id (`ft:<base>:<n>`).
    pub fn fine_tune(&self, job: &FineTuneJob) -> Result<String, LlmError> {
        let base = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&job.base_model)
            .ok_or_else(|| LlmError::UnknownModel(job.base_model.clone()))?
            .clone();
        // Train outside any lock — this is the expensive part.
        let ft = train_finetune(&self.backbone, &base, job).map_err(LlmError::BadFineTune)?;
        let n = self.next_ft_id.fetch_add(1, Ordering::Relaxed);
        let id = format!("ft:{}:{}", job.base_model, n);
        // A fine-tuned model behaves like its base but with fine-tune-family
        // pricing/fidelity; the adapter drives inference via `resolve`.
        let mut spec = base;
        spec.name = id.clone();
        spec.family = ModelFamily::FineTuned;
        self.models.write().unwrap_or_else(PoisonError::into_inner).insert(id.clone(), spec);
        self.fine_tuned
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id.clone(), (job.base_model.clone(), Arc::new(ft)));
        Ok(id)
    }

    /// Cumulative cost totals.
    pub fn tracker(&self) -> CostTracker {
        self.tracker.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Reset cumulative cost totals.
    pub fn reset_tracker(&self) {
        self.tracker.lock().unwrap_or_else(PoisonError::into_inner).reset();
    }

    /// Number of cached responses.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Access the backbone (used by diagnostics and tests).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> LlmClient {
        LlmClient::new(1234)
    }

    fn prompt(post: &str) -> String {
        format!("Classify the post.\nOptions: control, depression\nPost: {post}\nAnswer:")
    }

    #[test]
    fn basic_completion() {
        let c = client();
        let r = c
            .complete(&ChatRequest::new("sim-gpt-4", prompt("i feel hopeless and empty, crying all night, everything dark")))
            .expect("ok");
        assert!(r.text.to_lowercase().contains("depress"), "{}", r.text);
        assert!(r.usage.prompt_tokens > 0);
        assert!(r.usage.completion_tokens > 0);
        assert!(r.cost_usd > 0.0);
        assert!(r.latency_ms > 0.0);
    }

    #[test]
    fn unknown_model_rejected() {
        let c = client();
        let err = c.complete(&ChatRequest::new("gpt-99", "hi")).unwrap_err();
        assert_eq!(err, LlmError::UnknownModel("gpt-99".into()));
    }

    #[test]
    fn context_overflow_rejected() {
        let c = client();
        let huge = "word ".repeat(20_000);
        let err = c.complete(&ChatRequest::new("sim-llama-7b", huge)).unwrap_err();
        assert!(matches!(err, LlmError::ContextOverflow { .. }));
    }

    #[test]
    fn responses_cached_and_deterministic() {
        let c = client();
        let req = ChatRequest::new("sim-gpt-3.5", prompt("i feel sad"));
        let a = c.complete(&req).expect("ok");
        let n = c.cache_len();
        let b = c.complete(&req).expect("ok");
        assert_eq!(a.text, b.text);
        assert_eq!(c.cache_len(), n, "second call served from cache");
    }

    #[test]
    fn different_seeds_can_differ_at_temperature() {
        let c = client();
        let mut texts = std::collections::HashSet::new();
        for seed in 0..10 {
            let req = ChatRequest {
                model: "sim-llama-7b".into(),
                prompt: prompt("feeling a bit tired today but ok"),
                temperature: 1.2,
                seed,
            };
            texts.insert(c.complete(&req).expect("ok").text);
        }
        assert!(texts.len() > 1, "temperature should diversify outputs");
    }

    #[test]
    fn cost_tracking_accumulates() {
        let c = client();
        c.complete(&ChatRequest::new("sim-gpt-4", prompt("hello"))).expect("ok");
        c.complete(&ChatRequest::new("sim-gpt-4", prompt("hello again"))).expect("ok");
        let totals = c.tracker().totals("sim-gpt-4");
        assert_eq!(totals.requests, 2);
        assert!(totals.usd > 0.0);
    }

    #[test]
    fn refusals_happen_on_death_heavy_content() {
        let c = client();
        let post = "i want to die, kill myself, suicide, overdose on pills, die die die";
        let mut refused = 0;
        for seed in 0..300 {
            let req = ChatRequest {
                model: "sim-gpt-4".into(),
                prompt: format!("Options: control, depression\nPost: {post} variant {seed}\nAnswer:"),
                temperature: 0.0,
                seed,
            };
            if c.complete(&req).expect("ok").refused {
                refused += 1;
            }
        }
        assert!(refused > 0, "expected some refusals");
        assert!(refused < 60, "refusals should be rare, got {refused}");
    }

    #[test]
    fn finetune_roundtrip() {
        let c = client();
        let mk = |t: &str| prompt(t);
        let mut examples = Vec::new();
        for t in [
            "hopeless and crying tonight",
            "empty and numb, pointless days",
            "worthless, cannot sleep, dark thoughts",
            "sad and alone, everything hurts",
        ] {
            examples.push((mk(t), "depression".to_string()));
        }
        for t in [
            "great day at the beach with friends",
            "fun game night and pizza",
            "lovely walk and a good book",
            "excited for the trip tomorrow",
        ] {
            examples.push((mk(t), "control".to_string()));
        }
        let ft_id = c.fine_tune(&FineTuneJob::new("sim-llama-7b", examples)).expect("ft ok");
        assert!(ft_id.starts_with("ft:sim-llama-7b:"));
        assert!(c.model_names().contains(&ft_id));
        let r = c
            .complete(&ChatRequest::new(&ft_id, prompt("crying again, so hopeless and empty")))
            .expect("ok");
        assert_eq!(r.text, "Answer: depression");
        let r2 = c
            .complete(&ChatRequest::new(&ft_id, prompt("wonderful dinner with my friends")))
            .expect("ok");
        assert_eq!(r2.text, "Answer: control");
    }

    #[test]
    fn finetune_of_unknown_base_rejected() {
        let c = client();
        let err = c.fine_tune(&FineTuneJob::new("nope", vec![])).unwrap_err();
        assert!(matches!(err, LlmError::UnknownModel(_)));
    }

    #[test]
    fn injected_rate_limit_bursts_are_transient_and_reproducible() {
        use mhd_fault::{FaultInjector, FaultPlan, Scenario};
        let run = |seed: u64| -> Vec<bool> {
            let c = client();
            c.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultPlan::new(
                Scenario::RateLimitBurst,
                seed,
            )))));
            (0..128)
                .map(|i| {
                    let req = ChatRequest::new("sim-gpt-4", prompt(&format!("post {i}")));
                    match c.complete(&req) {
                        Ok(_) => true,
                        Err(e) => {
                            assert!(e.is_transient(), "burst produced permanent error {e}");
                            false
                        }
                    }
                })
                .collect()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b, "same seed must shed the same requests");
        assert!(a.iter().any(|&ok| ok), "some requests get through");
        assert!(a.iter().any(|&ok| !ok), "some requests are shed");
        let c = run(6);
        assert_ne!(a, c, "different seeds shed differently");
    }

    #[test]
    fn retry_rides_out_a_rate_limit_burst() {
        use mhd_fault::{FaultInjector, FaultPlan, RetryPolicy, Scenario};
        let c = client();
        c.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultPlan::new(
            Scenario::RateLimitBurst,
            3,
        )))));
        // Generous budget: a burst is 12 ops wide, so 16 attempts always
        // escape it even if every attempt lands inside.
        let policy = RetryPolicy { max_attempts: 16, base_us: 1, max_us: 50, seed: 3 };
        for i in 0..40 {
            let req = ChatRequest::new("sim-gpt-4", prompt(&format!("retry post {i}")));
            let r = c.complete_with_retry(&req, &policy);
            assert!(r.is_ok(), "request {i} failed through retries: {:?}", r.err());
        }
        // Permanent errors must not burn retry attempts.
        c.set_fault_injector(None);
        let err = c
            .complete_with_retry(&ChatRequest::new("gpt-99", "hi"), &policy)
            .unwrap_err();
        assert_eq!(err, LlmError::UnknownModel("gpt-99".into()));
    }

    #[test]
    fn clearing_the_injector_restores_clean_service() {
        use mhd_fault::{FaultInjector, FaultPlan, Scenario};
        let c = client();
        let req = ChatRequest::new("sim-gpt-4", prompt("steady state"));
        let clean = c.complete(&req).expect("clean");
        c.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultPlan::new(
            Scenario::RateLimitBurst,
            1,
        )))));
        let _ = c.complete(&req); // may or may not fault
        c.set_fault_injector(None);
        let after = c.complete(&req).expect("clean again");
        assert_eq!(clean.text, after.text, "fault plane must not leak into results");
    }

    #[test]
    fn client_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LlmClient>();
    }

    #[test]
    fn concurrent_completions_match_serial() {
        use std::sync::Arc;
        let serial = client();
        let expected: Vec<String> = (0..16)
            .map(|i| {
                let req = ChatRequest::new("sim-gpt-4", prompt(&format!("post number {i} sad")));
                serial.complete(&req).expect("ok").text
            })
            .collect();

        let shared = Arc::new(client());
        let mut handles = Vec::new();
        for i in 0..16u64 {
            let c = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let req = ChatRequest::new("sim-gpt-4", prompt(&format!("post number {i} sad")));
                (i as usize, c.complete(&req).expect("ok").text)
            }));
        }
        for h in handles {
            let (i, text) = h.join().expect("thread ok");
            assert_eq!(text, expected[i], "response {i} must not depend on threading");
        }
        // Every request recorded exactly once despite contention.
        assert_eq!(shared.tracker().totals("sim-gpt-4").requests, 16);
    }
}
