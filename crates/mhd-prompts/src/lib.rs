#![forbid(unsafe_code)]
//! # mhd-prompts — prompt engineering toolkit
//!
//! Everything between a dataset and the LLM API: prompt templates for every
//! strategy the survey ablates ([`template`]), demonstration selection for
//! few-shot prompting ([`select`]), and output parsers that recover a label
//! index from free-form completions ([`output`]).
//!
//! [`audit`] adds pre-flight prompt hygiene checks (leakage, imbalance,
//! cost estimation).
//!
//! The [`Strategy`] enum is the benchmark's prompting axis (Table T3):
//! zero-shot, zero-shot CoT, few-shot, few-shot CoT, emotion-enhanced, and
//! clinician-persona prompting.

pub mod audit;
pub mod output;
pub mod select;
pub mod template;

pub use output::{parse_label, ParseOutcome};
pub use select::{DemoSelector, SelectorKind};
pub use template::{build_prompt, Strategy};
