//! Prompt auditing: the checks a careful experimenter runs before sending
//! thousands of prompts to a paid API.
//!
//! - token-length statistics (will the prompt fit the context window? what
//!   will the sweep cost?);
//! - **demonstration leakage**: does any few-shot demonstration duplicate
//!   the query post (the classic train/test contamination bug in prompting
//!   pipelines);
//! - demonstration label balance (a skewed demo set biases the model toward
//!   the over-represented label — majority-label bias, Zhao et al. 2021).

use mhd_llm::parse::{parse_prompt, ParsedPrompt};
use mhd_text::bpe::estimate_tokens;
use std::collections::HashMap;

/// Findings from auditing one prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptAudit {
    /// Estimated prompt tokens.
    pub est_tokens: usize,
    /// Number of demonstrations found.
    pub n_demos: usize,
    /// A demonstration's post text equals the query (contamination).
    pub demo_leaks_query: bool,
    /// Demo label counts, by label string.
    pub demo_label_counts: HashMap<String, usize>,
    /// Maximum |count − mean| across labels, normalized by demo count;
    /// 0 = perfectly balanced, → 1 = one label dominates.
    pub demo_imbalance: f64,
    /// The prompt declares a label inventory.
    pub has_label_inventory: bool,
    /// The prompt has a non-empty query.
    pub has_query: bool,
}

impl PromptAudit {
    /// Does the audit pass the standard hygiene bar?
    pub fn is_clean(&self) -> bool {
        !self.demo_leaks_query && self.has_label_inventory && self.has_query
    }
}

/// Audit a raw prompt string.
pub fn audit_prompt(prompt: &str) -> PromptAudit {
    audit_parsed(prompt, &parse_prompt(prompt))
}

/// Audit with an already-parsed view (avoids re-parsing in hot loops).
pub fn audit_parsed(prompt: &str, parsed: &ParsedPrompt) -> PromptAudit {
    let mut demo_label_counts: HashMap<String, usize> = HashMap::new();
    let mut demo_leaks_query = false;
    for (post, label) in &parsed.demos {
        *demo_label_counts.entry(label.to_lowercase()).or_insert(0) += 1;
        if !parsed.query.is_empty() && post.trim() == parsed.query.trim() {
            demo_leaks_query = true;
        }
    }
    let n_demos = parsed.demos.len();
    let demo_imbalance = if demo_label_counts.len() <= 1 || n_demos == 0 {
        if n_demos == 0 {
            0.0
        } else {
            1.0 // all demos share one label
        }
    } else {
        let mean = n_demos as f64 / demo_label_counts.len() as f64;
        let max_dev = demo_label_counts
            .values()
            .map(|&c| (c as f64 - mean).abs())
            .fold(0.0f64, f64::max);
        (max_dev / n_demos as f64).min(1.0)
    };
    PromptAudit {
        est_tokens: estimate_tokens(prompt),
        n_demos,
        demo_leaks_query,
        demo_label_counts,
        demo_imbalance,
        has_label_inventory: !parsed.labels.is_empty(),
        has_query: !parsed.query.is_empty(),
    }
}

/// Cost estimate for sending `n_prompts` prompts of `est_tokens` each at the
/// given input price, assuming `completion_tokens` per reply at the output
/// price. The arithmetic experimenters do on a napkin, made explicit.
pub fn sweep_cost_usd(
    n_prompts: usize,
    est_tokens: usize,
    completion_tokens: usize,
    price_in_per_1k: f64,
    price_out_per_1k: f64,
) -> f64 {
    let n = n_prompts as f64;
    n * (est_tokens as f64 / 1000.0 * price_in_per_1k
        + completion_tokens as f64 / 1000.0 * price_out_per_1k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn few_shot_prompt(query: &str) -> String {
        format!(
            "Decide the label.\nOptions: depression, control\n\
             Post: \"sad and empty\"\nAnswer: depression\n\
             Post: \"great day out\"\nAnswer: control\n\
             Post: \"{query}\"\nAnswer:"
        )
    }

    #[test]
    fn clean_prompt_passes() {
        let a = audit_prompt(&few_shot_prompt("i cry every night"));
        assert!(a.is_clean());
        assert_eq!(a.n_demos, 2);
        assert!(!a.demo_leaks_query);
        assert_eq!(a.demo_imbalance, 0.0, "one demo per label");
        assert!(a.est_tokens > 20);
    }

    #[test]
    fn leakage_detected() {
        let a = audit_prompt(&few_shot_prompt("sad and empty"));
        assert!(a.demo_leaks_query, "query equals a demo post");
        assert!(!a.is_clean());
    }

    #[test]
    fn imbalance_detected() {
        let prompt = "Options: a, b\n\
                      Post: one\nAnswer: a\n\
                      Post: two\nAnswer: a\n\
                      Post: three\nAnswer: a\n\
                      Post: q\nAnswer:";
        let a = audit_prompt(prompt);
        assert_eq!(a.demo_imbalance, 1.0, "all demos one label");
        assert_eq!(a.demo_label_counts.get("a"), Some(&3));
    }

    #[test]
    fn missing_inventory_flagged() {
        let a = audit_prompt("is this person sad? i feel awful");
        assert!(!a.has_label_inventory);
        assert!(!a.is_clean());
        assert!(a.has_query);
    }

    #[test]
    fn zero_shot_prompt_no_demo_findings() {
        let a = audit_prompt("Options: x, y\nPost: hello\nAnswer:");
        assert_eq!(a.n_demos, 0);
        assert_eq!(a.demo_imbalance, 0.0);
        assert!(a.is_clean());
    }

    #[test]
    fn sweep_cost_arithmetic() {
        let c = sweep_cost_usd(1000, 200, 10, 0.03, 0.06);
        assert!((c - (1000.0 * (0.2 * 0.03 + 0.01 * 0.06))).abs() < 1e-12);
    }

    #[test]
    fn benchmark_templates_audit_clean() {
        // The library's own templates must pass their own audit.
        use crate::template::{build_prompt, Strategy};
        use mhd_corpus::taxonomy::Task;
        let task = Task {
            name: "t",
            description: "whether the poster is stressed",
            labels: vec!["not stressed", "stressed"],
        };
        let demos = vec![
            ("work is heavy".to_string(), "stressed".to_string()),
            ("nice walk today".to_string(), "not stressed".to_string()),
        ];
        for s in Strategy::ALL {
            let p = build_prompt(&task, s, "deadlines everywhere", &demos);
            let a = audit_prompt(&p);
            assert!(a.is_clean(), "{s:?}: {a:?}");
        }
    }
}
