//! Prompt templates for every strategy in the benchmark.

use mhd_corpus::taxonomy::Task;

/// Prompting strategy (Table T3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Plain instruction + options + post.
    ZeroShot,
    /// Zero-shot with a step-by-step reasoning request.
    ZeroShotCot,
    /// `k` labelled demonstrations before the query.
    FewShot(usize),
    /// Few-shot plus reasoning request.
    FewShotCot(usize),
    /// Zero-shot with explicit attention to expressed emotions
    /// (the "emotion-enhanced" strategy of the Mental-LLM line).
    EmotionEnhanced,
    /// Zero-shot with a clinician persona preamble.
    Persona,
}

impl Strategy {
    /// All strategies at the benchmark's default k = 4.
    pub const ALL: [Strategy; 6] = [
        Strategy::ZeroShot,
        Strategy::ZeroShotCot,
        Strategy::FewShot(4),
        Strategy::FewShotCot(4),
        Strategy::EmotionEnhanced,
        Strategy::Persona,
    ];

    /// Number of demonstrations the strategy wants.
    pub fn shots(&self) -> usize {
        match self {
            Strategy::FewShot(k) | Strategy::FewShotCot(k) => *k,
            _ => 0,
        }
    }

    /// Short name used in result tables.
    pub fn name(&self) -> String {
        match self {
            Strategy::ZeroShot => "zero_shot".to_string(),
            Strategy::ZeroShotCot => "zero_shot_cot".to_string(),
            Strategy::FewShot(k) => format!("few_shot_k{k}"),
            Strategy::FewShotCot(k) => format!("few_shot_cot_k{k}"),
            Strategy::EmotionEnhanced => "emotion_enhanced".to_string(),
            Strategy::Persona => "persona".to_string(),
        }
    }
}

/// Build the full prompt for a query post under a strategy.
///
/// `demos` are `(post, label)` pairs; they are only used by the few-shot
/// strategies and must already be selected/ordered by the caller.
pub fn build_prompt(task: &Task, strategy: Strategy, post: &str, demos: &[(String, String)]) -> String {
    let mut p = String::with_capacity(256 + post.len() + demos.iter().map(|(d, _)| d.len() + 24).sum::<usize>());
    // Preamble.
    match strategy {
        Strategy::Persona => {
            p.push_str(
                "You are a compassionate clinical psychologist with twenty years of \
                 experience assessing social media disclosures.\n",
            );
        }
        _ => {
            p.push_str("You are an assistant that analyzes social media posts.\n");
        }
    }
    // Instruction.
    p.push_str(&format!("Read the post and decide {}.\n", task.description));
    if strategy == Strategy::EmotionEnhanced {
        p.push_str(
            "Pay close attention to the emotions expressed in the post and how intense they are.\n",
        );
    }
    // Options.
    p.push_str("Options: ");
    p.push_str(&task.labels.join(", "));
    p.push('\n');
    // Reasoning request.
    match strategy {
        Strategy::ZeroShotCot | Strategy::FewShotCot(_) => {
            p.push_str(
                "Think step by step about the evidence in the post, then give the final answer.\n",
            );
        }
        _ => {
            p.push_str("Respond with exactly one option and nothing else.\n");
        }
    }
    // Demonstrations.
    let k = strategy.shots().min(demos.len());
    for (demo_post, demo_label) in &demos[..k] {
        p.push_str(&format!("Post: \"{demo_post}\"\nAnswer: {demo_label}\n"));
    }
    // Query.
    p.push_str(&format!("Post: \"{post}\"\nAnswer:"));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task {
            name: "stress_binary",
            description: "whether the poster is experiencing psychological stress",
            labels: vec!["not stressed", "stressed"],
        }
    }

    #[test]
    fn zero_shot_structure() {
        let p = build_prompt(&task(), Strategy::ZeroShot, "work is crushing me", &[]);
        assert!(p.contains("Options: not stressed, stressed"));
        assert!(p.contains("Post: \"work is crushing me\""));
        assert!(p.ends_with("Answer:"));
        assert!(!p.to_lowercase().contains("step by step"));
    }

    #[test]
    fn cot_marker_present() {
        let p = build_prompt(&task(), Strategy::ZeroShotCot, "x", &[]);
        assert!(p.to_lowercase().contains("step by step"));
    }

    #[test]
    fn few_shot_includes_k_demos() {
        let demos = vec![
            ("demo one".to_string(), "stressed".to_string()),
            ("demo two".to_string(), "not stressed".to_string()),
            ("demo three".to_string(), "stressed".to_string()),
        ];
        let p = build_prompt(&task(), Strategy::FewShot(2), "query post", &demos);
        assert!(p.contains("demo one"));
        assert!(p.contains("demo two"));
        assert!(!p.contains("demo three"), "k=2 must truncate");
        // Query comes last.
        assert!(p.rfind("query post").expect("query") > p.rfind("demo two").expect("demo"));
    }

    #[test]
    fn emotion_marker_present() {
        let p = build_prompt(&task(), Strategy::EmotionEnhanced, "x", &[]);
        assert!(p.to_lowercase().contains("emotion"));
    }

    #[test]
    fn persona_preamble() {
        let p = build_prompt(&task(), Strategy::Persona, "x", &[]);
        assert!(p.contains("clinical psychologist"));
    }

    #[test]
    fn roundtrips_through_llm_parser() {
        // The templates must parse back cleanly with mhd-llm's parser.
        let demos = vec![("i am so stressed".to_string(), "stressed".to_string())];
        for s in Strategy::ALL {
            let p = build_prompt(&task(), s, "deadline panic again", &demos);
            let parsed = mhd_llm::parse::parse_prompt(&p);
            assert_eq!(parsed.labels, vec!["not stressed", "stressed"], "{s:?}");
            assert_eq!(parsed.query, "deadline panic again", "{s:?}");
            assert_eq!(parsed.demos.len(), s.shots().min(1), "{s:?}");
            match s {
                Strategy::ZeroShotCot | Strategy::FewShotCot(_) => assert!(parsed.wants_cot),
                _ => assert!(!parsed.wants_cot, "{s:?}"),
            }
            if s == Strategy::EmotionEnhanced {
                assert!(parsed.wants_emotion);
            }
        }
    }

    #[test]
    fn strategy_names_unique() {
        let mut names: Vec<_> = Strategy::ALL.iter().map(|s| s.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Strategy::ALL.len());
    }

    #[test]
    fn shots_accessor() {
        assert_eq!(Strategy::FewShot(8).shots(), 8);
        assert_eq!(Strategy::ZeroShot.shots(), 0);
    }
}
