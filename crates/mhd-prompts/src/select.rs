//! Demonstration selection for few-shot prompting.
//!
//! Three selectors from the surveyed methodology:
//!
//! - **Random** — uniform over the training pool;
//! - **Stratified** — round-robin over classes so every label is shown;
//! - **Similarity** — nearest training posts to the query in lexicon-rate
//!   space (retrieval-augmented demonstration selection).

use mhd_text::lexicon::Lexicon;
use mhd_text::tokenize::words;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which selection policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Uniform random from the pool.
    Random,
    /// Round-robin per class (balanced label coverage).
    Stratified,
    /// Nearest neighbours to the query in lexicon space.
    Similarity,
}

impl SelectorKind {
    /// All selector kinds.
    pub const ALL: [SelectorKind; 3] =
        [SelectorKind::Random, SelectorKind::Stratified, SelectorKind::Similarity];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Random => "random",
            SelectorKind::Stratified => "stratified",
            SelectorKind::Similarity => "similarity",
        }
    }
}

/// A demonstration selector bound to a training pool.
pub struct DemoSelector {
    kind: SelectorKind,
    pool_texts: Vec<String>,
    pool_labels: Vec<String>,
    lexicon: Lexicon,
    seed: u64,
}

impl DemoSelector {
    /// Build a selector over a training pool. `labels` are label *strings*
    /// (already verbalized), parallel to `texts`.
    pub fn new(kind: SelectorKind, texts: Vec<String>, labels: Vec<String>, seed: u64) -> Self {
        assert_eq!(texts.len(), labels.len(), "pool slices must be parallel");
        DemoSelector { kind, pool_texts: texts, pool_labels: labels, lexicon: Lexicon::standard(), seed }
    }

    /// Select `k` demonstrations for `query`. Deterministic given the
    /// selector seed and `query_id` (callers pass the example id so each
    /// query gets its own random draw).
    pub fn select(&self, query: &str, query_id: u64, k: usize) -> Vec<(String, String)> {
        let k = k.min(self.pool_texts.len());
        if k == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ query_id.wrapping_mul(0x9e3779b97f4a7c15));
        let indices: Vec<usize> = match self.kind {
            SelectorKind::Random => {
                let mut idx: Vec<usize> = (0..self.pool_texts.len()).collect();
                idx.shuffle(&mut rng);
                idx.truncate(k);
                idx
            }
            SelectorKind::Stratified => {
                // Group by label, shuffle within groups, round-robin.
                let mut by_label: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
                for (i, l) in self.pool_labels.iter().enumerate() {
                    by_label.entry(l.as_str()).or_default().push(i);
                }
                let mut groups: Vec<Vec<usize>> = by_label.into_values().collect();
                for g in &mut groups {
                    g.shuffle(&mut rng);
                }
                let mut out = Vec::with_capacity(k);
                let mut round = 0;
                while out.len() < k {
                    let mut progressed = false;
                    for g in &groups {
                        if let Some(&i) = g.get(round) {
                            out.push(i);
                            progressed = true;
                            if out.len() == k {
                                break;
                            }
                        }
                    }
                    if !progressed {
                        break;
                    }
                    round += 1;
                }
                out
            }
            SelectorKind::Similarity => {
                // Cosine similarity: scale-invariant, so short and long
                // posts with the same category mix rank equally.
                let qf = self.lexicon.profile(&words(query)).rates();
                let mut scored: Vec<(usize, f64)> = self
                    .pool_texts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let f = self.lexicon.profile(&words(t)).rates();
                        (i, cosine(&f, &qf))
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                scored.into_iter().take(k).map(|(i, _)| i).collect()
            }
        };
        indices
            .into_iter()
            .map(|i| (self.pool_texts[i].clone(), self.pool_labels[i].clone()))
            .collect()
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> (Vec<String>, Vec<String>) {
        let texts = vec![
            "hopeless and crying".to_string(),
            "empty and numb tonight".to_string(),
            "great day with friends".to_string(),
            "fun game and pizza".to_string(),
            "panic and constant worry".to_string(),
            "anxious about everything".to_string(),
        ];
        let labels = vec![
            "depression".to_string(),
            "depression".to_string(),
            "control".to_string(),
            "control".to_string(),
            "anxiety".to_string(),
            "anxiety".to_string(),
        ];
        (texts, labels)
    }

    #[test]
    fn random_selects_k_unique() {
        let (t, l) = pool();
        let s = DemoSelector::new(SelectorKind::Random, t, l, 1);
        let demos = s.select("whatever", 0, 4);
        assert_eq!(demos.len(), 4);
        let mut texts: Vec<&str> = demos.iter().map(|(t, _)| t.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), 4, "no duplicates");
    }

    #[test]
    fn stratified_covers_all_classes() {
        let (t, l) = pool();
        let s = DemoSelector::new(SelectorKind::Stratified, t, l, 2);
        let demos = s.select("q", 7, 3);
        let mut labels: Vec<&str> = demos.iter().map(|(_, l)| l.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["anxiety", "control", "depression"]);
    }

    #[test]
    fn similarity_retrieves_lexically_close() {
        let (t, l) = pool();
        let s = DemoSelector::new(SelectorKind::Similarity, t, l, 3);
        let demos = s.select("i am so anxious and panicking about work", 0, 2);
        assert!(
            demos.iter().all(|(_, l)| l == "anxiety"),
            "nearest demos should be anxiety: {demos:?}"
        );
    }

    #[test]
    fn deterministic_per_query_id() {
        let (t, l) = pool();
        let s = DemoSelector::new(SelectorKind::Random, t, l, 5);
        assert_eq!(s.select("q", 3, 4), s.select("q", 3, 4));
        // Different query ids generally draw differently.
        let many_same = (0..20).filter(|&i| s.select("q", i, 4) == s.select("q", 0, 4)).count();
        assert!(many_same < 20);
    }

    #[test]
    fn k_larger_than_pool_capped() {
        let (t, l) = pool();
        let s = DemoSelector::new(SelectorKind::Stratified, t, l, 1);
        assert_eq!(s.select("q", 0, 100).len(), 6);
    }

    #[test]
    fn zero_k_empty() {
        let (t, l) = pool();
        let s = DemoSelector::new(SelectorKind::Random, t, l, 1);
        assert!(s.select("q", 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_pool_rejected() {
        DemoSelector::new(SelectorKind::Random, vec!["a".into()], vec![], 1);
    }
}
