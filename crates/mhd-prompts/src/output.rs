//! Output parsing: recovering a label index from a free-form completion.
//!
//! The parsing ladder (strictest first) mirrors what the surveyed papers'
//! evaluation scripts do:
//!
//! 1. exact label after an `Answer:` / `Label:` marker (or JSON `"label"`);
//! 2. exact label as the whole (trimmed) completion;
//! 3. longest label appearing as a substring anywhere in the completion —
//!    longest first so "not stressed" wins over "stressed";
//! 4. synonym table lookup ("depressed" → "depression", …);
//! 5. give up — the caller falls back to a default class and counts a
//!    parse failure.

/// How the label was recovered, for diagnostics (Table T3's parse-rate
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseOutcome {
    /// Found after an explicit answer marker or JSON key.
    Marker,
    /// The completion was exactly the label.
    Exact,
    /// Found as a substring.
    Substring,
    /// Recovered through the synonym table.
    Synonym,
    /// Unparseable.
    Failed,
}

impl ParseOutcome {
    /// Did parsing succeed?
    pub fn is_success(self) -> bool {
        self != ParseOutcome::Failed
    }
}

/// Parse a completion against a label inventory. Returns the label index
/// and how it was found.
pub fn parse_label(completion: &str, labels: &[&str]) -> (Option<usize>, ParseOutcome) {
    let text = completion.trim();
    let lower = text.to_lowercase();

    // 1. Marker-based: text after the *last* answer marker (CoT puts the
    // answer at the end), or a JSON "label"/"answer" value.
    if let Some(candidate) = after_marker(&lower) {
        if let Some(idx) = match_exact(&candidate, labels) {
            return (Some(idx), ParseOutcome::Marker);
        }
        if let Some(idx) = match_substring(&candidate, labels) {
            return (Some(idx), ParseOutcome::Marker);
        }
        if let Some(idx) = match_synonym(&candidate, labels) {
            return (Some(idx), ParseOutcome::Marker);
        }
    }
    // 2. Whole completion is the label.
    if let Some(idx) = match_exact(&lower, labels) {
        return (Some(idx), ParseOutcome::Exact);
    }
    // 3. Substring, longest label first.
    if let Some(idx) = match_substring(&lower, labels) {
        return (Some(idx), ParseOutcome::Substring);
    }
    // 4. Synonyms.
    if let Some(idx) = match_synonym(&lower, labels) {
        return (Some(idx), ParseOutcome::Synonym);
    }
    (None, ParseOutcome::Failed)
}

fn after_marker(lower: &str) -> Option<String> {
    for marker in ["answer:", "label:", "\"label\":", "\"answer\":", "final answer:"] {
        if let Some(pos) = lower.rfind(marker) {
            let tail = lower[pos + marker.len()..]
                .trim()
                .trim_matches(|c: char| c == '"' || c == '}' || c == '{' || c == '.')
                .trim();
            if !tail.is_empty() {
                return Some(tail.to_string());
            }
        }
    }
    None
}

fn match_exact(text: &str, labels: &[&str]) -> Option<usize> {
    let clean = text.trim().trim_matches(|c: char| !c.is_alphanumeric() && c != ' ');
    labels.iter().position(|l| l.eq_ignore_ascii_case(clean))
}

fn match_substring(text: &str, labels: &[&str]) -> Option<usize> {
    // Longest label first, so "not stressed" beats "stressed".
    let mut order: Vec<usize> = (0..labels.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(labels[i].len()));
    order.into_iter().find(|&i| text.contains(&labels[i].to_lowercase()))
}

/// Synonyms the render layer may emit, mapped back to canonical label words.
/// Checked longest-synonym-first.
const SYNONYMS: &[(&str, &str)] = &[
    ("not under stress", "not stressed"),
    ("no stress", "not stressed"),
    ("calm", "not stressed"),
    ("stressed out", "stress"),
    ("under stress", "stress"),
    ("high stress", "stress"),
    ("major depression", "depression"),
    ("depressive disorder", "depression"),
    ("depressed", "depression"),
    ("depressive", "depression"),
    ("suicide risk", "suicide"),
    ("self-harm risk", "suicide"),
    ("suicidal", "suicide"),
    ("anxiety disorder", "anxiety"),
    ("anxious", "anxiety"),
    ("post-traumatic stress", "ptsd"),
    ("trauma-related", "ptsd"),
    ("bipolar disorder", "bipolar"),
    ("manic-depressive", "bipolar"),
    ("no disorder", "control"),
    ("healthy", "control"),
    ("normal", "control"),
];

fn match_synonym(text: &str, labels: &[&str]) -> Option<usize> {
    let mut pairs: Vec<&(&str, &str)> = SYNONYMS.iter().collect();
    pairs.sort_by_key(|(s, _)| std::cmp::Reverse(s.len()));
    for (synonym, canonical) in pairs {
        if text.contains(synonym) {
            // The canonical word must map onto exactly one label (substring
            // match, longest first for safety).
            if let Some(idx) = match_substring(canonical, labels) {
                return Some(idx);
            }
            // Canonical may itself be *contained in* a label ("suicide" for
            // label "suicidal ideation"). Prefer the SHORTEST containing
            // label: "under stress" → "stress" must resolve to "stressed",
            // not "not stressed" (both contain the canonical, but the extra
            // words of the longer label are unmotivated).
            if let Some(idx) = labels
                .iter()
                .enumerate()
                .filter(|(_, l)| l.to_lowercase().contains(canonical))
                .min_by_key(|(_, l)| l.len())
                .map(|(i, _)| i)
            {
                return Some(idx);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const BINARY: &[&str] = &["not stressed", "stressed"];
    const TRIAGE: &[&str] = &["depression", "anxiety", "bipolar", "suicidewatch", "offmychest"];

    #[test]
    fn clean_answer_marker() {
        let (idx, how) = parse_label("Answer: stressed", BINARY);
        assert_eq!(idx, Some(1));
        assert_eq!(how, ParseOutcome::Marker);
    }

    #[test]
    fn negated_label_wins_longest_match() {
        let (idx, _) = parse_label("Answer: not stressed", BINARY);
        assert_eq!(idx, Some(0), "'not stressed' must not match 'stressed'");
        let (idx2, _) = parse_label("the person is not stressed at all", BINARY);
        assert_eq!(idx2, Some(0));
    }

    #[test]
    fn bare_label() {
        let (idx, how) = parse_label("depression", TRIAGE);
        assert_eq!(idx, Some(0));
        assert_eq!(how, ParseOutcome::Exact);
    }

    #[test]
    fn prose_wrapper() {
        let (idx, how) = parse_label("I would say this is anxiety.", TRIAGE);
        assert_eq!(idx, Some(1));
        assert_eq!(how, ParseOutcome::Substring);
    }

    #[test]
    fn cot_answer_at_end() {
        let completion =
            "Reasoning: the post mentions \"hopeless\", \"empty\", consistent with low mood. Answer: depression";
        let (idx, how) = parse_label(completion, TRIAGE);
        assert_eq!(idx, Some(0));
        assert_eq!(how, ParseOutcome::Marker);
    }

    #[test]
    fn json_output() {
        let (idx, _) = parse_label("{\"label\": \"bipolar\"}", TRIAGE);
        assert_eq!(idx, Some(2));
        // Wrong key still recovered.
        let (idx2, _) = parse_label("{\"answer\": \"bipolar\"}", TRIAGE);
        assert_eq!(idx2, Some(2));
    }

    #[test]
    fn synonym_recovery() {
        let (idx, how) = parse_label("The poster seems depressed.", TRIAGE);
        assert_eq!(idx, Some(0));
        assert_eq!(how, ParseOutcome::Synonym);
        let (idx2, _) = parse_label("clearly suicidal", TRIAGE);
        assert_eq!(idx2, Some(3), "suicidal → suicide → suicidewatch");
    }

    #[test]
    fn refusal_fails_to_parse() {
        let refusal = "I'm sorry, I can't provide an assessment. Please reach out to a crisis line.";
        let (idx, how) = parse_label(refusal, BINARY);
        assert_eq!(idx, None);
        assert_eq!(how, ParseOutcome::Failed);
        assert!(!how.is_success());
    }

    #[test]
    fn empty_completion_fails() {
        let (idx, how) = parse_label("", TRIAGE);
        assert_eq!(idx, None);
        assert_eq!(how, ParseOutcome::Failed);
    }

    #[test]
    fn case_insensitive() {
        let (idx, _) = parse_label("ANSWER: Depression", TRIAGE);
        assert_eq!(idx, Some(0));
    }

    #[test]
    fn drifted_stress_synonyms_resolve_to_positive_label() {
        // "under stress" / "stressed out" mean *stressed* — they must never
        // resolve to "not stressed" just because that label also contains
        // the canonical word.
        for drift in ["the poster is under stress", "seems stressed out", "high stress levels"] {
            let (idx, _) = parse_label(drift, BINARY);
            assert_eq!(idx, Some(1), "{drift:?}");
        }
    }

    #[test]
    fn severity_labels() {
        let severities = &["minimum", "mild", "moderate", "severe"];
        let (idx, _) = parse_label("Answer: moderate", severities);
        assert_eq!(idx, Some(2));
        let (idx2, _) = parse_label("this looks severe to me", severities);
        assert_eq!(idx2, Some(3));
    }
}
