//! Calibration: reliability bins and expected calibration error (ECE).

/// One reliability-diagram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Lower confidence edge (inclusive).
    pub lo: f64,
    /// Upper confidence edge (exclusive; last bin inclusive).
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean confidence of the bin.
    pub mean_confidence: f64,
    /// Empirical accuracy of the bin.
    pub accuracy: f64,
}

/// Reliability diagram + ECE for confidence/correctness pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The bins, low to high confidence.
    pub bins: Vec<Bin>,
    /// Expected calibration error: Σ (nᵢ/N)·|accᵢ − confᵢ|.
    pub ece: f64,
    /// Mean confidence overall.
    pub mean_confidence: f64,
    /// Overall accuracy.
    pub accuracy: f64,
}

/// Compute calibration over `(confidence, correct)` pairs with `n_bins`
/// equal-width bins.
pub fn calibration(confidence: &[f64], correct: &[bool], n_bins: usize) -> Calibration {
    assert_eq!(confidence.len(), correct.len());
    assert!(n_bins > 0, "need at least one bin");
    let n = confidence.len();
    let mut sums = vec![(0usize, 0.0f64, 0usize); n_bins]; // (count, conf sum, correct)
    for (&c, &ok) in confidence.iter().zip(correct) {
        assert!((0.0..=1.0).contains(&c), "confidence out of [0,1]: {c}");
        let mut b = (c * n_bins as f64) as usize;
        if b == n_bins {
            b -= 1; // c == 1.0 lands in the top bin
        }
        sums[b].0 += 1;
        sums[b].1 += c;
        if ok {
            sums[b].2 += 1;
        }
    }
    let mut bins = Vec::with_capacity(n_bins);
    let mut ece = 0.0;
    for (i, &(count, conf_sum, n_correct)) in sums.iter().enumerate() {
        let lo = i as f64 / n_bins as f64;
        let hi = (i + 1) as f64 / n_bins as f64;
        let (mean_confidence, accuracy) = if count == 0 {
            (0.0, 0.0)
        } else {
            (conf_sum / count as f64, n_correct as f64 / count as f64)
        };
        if count > 0 && n > 0 {
            ece += (count as f64 / n as f64) * (accuracy - mean_confidence).abs();
        }
        bins.push(Bin { lo, hi, count, mean_confidence, accuracy });
    }
    let mean_confidence = if n == 0 { 0.0 } else { confidence.iter().sum::<f64>() / n as f64 };
    let accuracy = if n == 0 {
        0.0
    } else {
        correct.iter().filter(|&&b| b).count() as f64 / n as f64
    };
    Calibration { bins, ece, mean_confidence, accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_low_ece() {
        // Confidence 0.75 predictions that are right 75% of the time.
        let confidence = vec![0.75; 100];
        let correct: Vec<bool> = (0..100).map(|i| i % 4 != 0).collect();
        let c = calibration(&confidence, &correct, 10);
        assert!(c.ece < 1e-9, "ece {}", c.ece);
        assert_eq!(c.accuracy, 0.75);
    }

    #[test]
    fn overconfident_high_ece() {
        // Confidence 0.99 but only 50% accurate → ECE ≈ 0.49.
        let confidence = vec![0.99; 100];
        let correct: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let c = calibration(&confidence, &correct, 10);
        assert!((c.ece - 0.49).abs() < 0.01, "ece {}", c.ece);
    }

    #[test]
    fn bins_partition_unit_interval() {
        let c = calibration(&[0.0, 0.5, 1.0], &[true, false, true], 5);
        assert_eq!(c.bins.len(), 5);
        assert_eq!(c.bins[0].lo, 0.0);
        assert_eq!(c.bins[4].hi, 1.0);
        let total: usize = c.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 3);
        // 1.0 goes to the last bin, not out of range.
        assert_eq!(c.bins[4].count, 1);
    }

    #[test]
    fn empty_input() {
        let c = calibration(&[], &[], 4);
        assert_eq!(c.ece, 0.0);
        assert_eq!(c.accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_confidence_rejected() {
        calibration(&[1.5], &[true], 4);
    }
}
