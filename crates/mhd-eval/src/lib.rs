#![forbid(unsafe_code)]
//! # mhd-eval — evaluation metrics and reporting
//!
//! All measurement machinery for the benchmark:
//!
//! - [`metrics`] — accuracy, precision/recall/F1 (macro/micro/weighted),
//!   balanced accuracy, Matthews correlation, Cohen's kappa
//! - [`confusion`] — confusion matrices (Figure F4)
//! - [`bootstrap`] — percentile bootstrap confidence intervals
//! - [`mcnemar`] — McNemar's paired significance test
//! - [`calibration`] — reliability bins and expected calibration error
//!   (Figure F3)
//! - [`auc`] — ROC curves and AUC (Mann–Whitney)
//! - [`per_class`] — sklearn-style per-class P/R/F1 reports
//! - [`ordinal`] — MAE and quadratic weighted kappa for graded tasks
//! - [`table`] — plain-text/markdown/CSV table rendering for every report

pub mod auc;
pub mod bootstrap;
pub mod calibration;
pub mod confusion;
pub mod mcnemar;
pub mod metrics;
pub mod ordinal;
pub mod per_class;
pub mod table;

pub use confusion::ConfusionMatrix;
pub use metrics::Metrics;
pub use table::Table;
