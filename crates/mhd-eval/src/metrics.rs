//! Classification metrics.

use crate::confusion::ConfusionMatrix;

/// The full metric set reported in the benchmark tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Plain accuracy.
    pub accuracy: f64,
    /// Balanced accuracy (mean per-class recall).
    pub balanced_accuracy: f64,
    /// Macro-averaged precision.
    pub macro_precision: f64,
    /// Macro-averaged recall.
    pub macro_recall: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Support-weighted F1 — the headline metric of the surveyed papers.
    pub weighted_f1: f64,
    /// Micro F1 (= accuracy for single-label classification).
    pub micro_f1: f64,
    /// Cohen's kappa against the gold distribution.
    pub kappa: f64,
    /// Matthews correlation coefficient (multi-class generalization).
    pub mcc: f64,
}

impl Metrics {
    /// Compute everything from gold/pred label slices.
    pub fn compute(gold: &[usize], pred: &[usize], k: usize) -> Metrics {
        Self::from_confusion(&ConfusionMatrix::from_pairs(gold, pred, k))
    }

    /// Compute from an existing confusion matrix.
    pub fn from_confusion(c: &ConfusionMatrix) -> Metrics {
        let k = c.n_classes();
        let n = c.total() as f64;
        let accuracy = if n == 0.0 { 0.0 } else { c.correct() as f64 / n };

        let mut precisions = Vec::with_capacity(k);
        let mut recalls = Vec::with_capacity(k);
        let mut f1s = Vec::with_capacity(k);
        let mut weighted_f1 = 0.0;
        for class in 0..k {
            let tp = c.tp(class) as f64;
            let fp = c.fp(class) as f64;
            let fn_ = c.fn_(class) as f64;
            let p = if tp + fp == 0.0 { 0.0 } else { tp / (tp + fp) };
            let r = if tp + fn_ == 0.0 { 0.0 } else { tp / (tp + fn_) };
            let f1 = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
            precisions.push(p);
            recalls.push(r);
            f1s.push(f1);
            weighted_f1 += f1 * c.support(class) as f64;
        }
        let macro_precision = mean(&precisions);
        let macro_recall = mean(&recalls);
        let macro_f1 = mean(&f1s);
        let weighted_f1 = if n == 0.0 { 0.0 } else { weighted_f1 / n };
        // Micro F1 = accuracy in single-label settings.
        let micro_f1 = accuracy;
        // Balanced accuracy = macro recall.
        let balanced_accuracy = macro_recall;
        // Cohen's kappa.
        let pe: f64 = (0..k)
            .map(|class| {
                let gold_rate = c.support(class) as f64 / n.max(1.0);
                let pred_count: f64 = (0..k).map(|g| c.at(g, class) as f64).sum();
                gold_rate * (pred_count / n.max(1.0))
            })
            .sum();
        let kappa = if (1.0 - pe).abs() < 1e-12 { 0.0 } else { (accuracy - pe) / (1.0 - pe) };
        // Multi-class MCC (Gorodkin).
        let mcc = multiclass_mcc(c);
        Metrics {
            accuracy,
            balanced_accuracy,
            macro_precision,
            macro_recall,
            macro_f1,
            weighted_f1,
            micro_f1,
            kappa,
            mcc,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn multiclass_mcc(c: &ConfusionMatrix) -> f64 {
    let k = c.n_classes();
    let n = c.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let correct = c.correct() as f64;
    let mut sum_gold_pred = 0.0; // Σ_k gold_k · pred_k
    let mut sum_gold2 = 0.0;
    let mut sum_pred2 = 0.0;
    for class in 0..k {
        let gold_k = c.support(class) as f64;
        let pred_k: f64 = (0..k).map(|g| c.at(g, class) as f64).sum();
        sum_gold_pred += gold_k * pred_k;
        sum_gold2 += gold_k * gold_k;
        sum_pred2 += pred_k * pred_k;
    }
    let num = correct * n - sum_gold_pred;
    let den = ((n * n - sum_pred2) * (n * n - sum_gold2)).sqrt();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let m = Metrics::compute(&[0, 1, 2, 0], &[0, 1, 2, 0], 3);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.macro_f1, 1.0);
        assert_eq!(m.weighted_f1, 1.0);
        assert!((m.kappa - 1.0).abs() < 1e-12);
        assert!((m.mcc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn majority_prediction_zero_kappa() {
        // Predicting the majority class always: kappa ≈ 0 (chance-level).
        let gold = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 0, 0, 0, 0];
        let m = Metrics::compute(&gold, &pred, 2);
        assert_eq!(m.accuracy, 0.5);
        assert!(m.kappa.abs() < 1e-12, "kappa {}", m.kappa);
        assert_eq!(m.mcc, 0.0);
        // F1 for the never-predicted class is 0.
        assert!(m.macro_f1 < m.accuracy);
    }

    #[test]
    fn binary_f1_matches_manual() {
        // gold: 1,1,1,0,0 ; pred: 1,1,0,0,1 → class-1: tp=2 fp=1 fn=1
        let m = Metrics::compute(&[1, 1, 1, 0, 0], &[1, 1, 0, 0, 1], 2);
        let p1 = 2.0 / 3.0;
        let r1 = 2.0 / 3.0;
        let f1_1 = 2.0 * p1 * r1 / (p1 + r1);
        // class-0: tp=1 fp=1 fn=1 → p=r=f=0.5
        let expected_macro = (f1_1 + 0.5) / 2.0;
        assert!((m.macro_f1 - expected_macro).abs() < 1e-12);
        let expected_weighted = (f1_1 * 3.0 + 0.5 * 2.0) / 5.0;
        assert!((m.weighted_f1 - expected_weighted).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_is_macro_recall() {
        let m = Metrics::compute(&[0, 0, 0, 0, 1], &[0, 0, 0, 0, 0], 2);
        assert!((m.balanced_accuracy - 0.5).abs() < 1e-12);
        assert!(m.accuracy > m.balanced_accuracy, "imbalance gap visible");
    }

    #[test]
    fn inverted_predictions_negative_mcc() {
        let m = Metrics::compute(&[0, 0, 1, 1], &[1, 1, 0, 0], 2);
        assert!((m.mcc + 1.0).abs() < 1e-12, "mcc {}", m.mcc);
        assert!(m.kappa < 0.0);
    }

    #[test]
    fn micro_f1_equals_accuracy() {
        let m = Metrics::compute(&[0, 1, 2, 1], &[0, 2, 2, 1], 3);
        assert_eq!(m.micro_f1, m.accuracy);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let m = Metrics::compute(&[], &[], 2);
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.macro_f1, 0.0);
    }
}
