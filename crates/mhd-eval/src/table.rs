//! Plain-text table rendering (markdown and CSV).
//!
//! Purpose-built instead of pulling in a serialization stack: every report
//! in the benchmark is a rectangular table of strings/numbers.

/// A simple rectangular table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Access rows (for assertions in tests/benches).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Find the first row whose first cell equals `key`.
    pub fn row_by_key(&self, key: &str) -> Option<&[String]> {
        self.rows.iter().find(|r| r[0] == key).map(Vec::as_slice)
    }

    /// Render as aligned markdown.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = ncols;
        out
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

// The fmtN helpers below are the single home for float precision in report
// output (enforced by mhd-lint rule R4): every table/CSV cell routes through
// one of them, so changing a precision decision changes exactly one line.

/// Format a float rounded to an integer (counts, token averages).
pub fn fmt0(x: f64) -> String {
    format!("{x:.0}")
}

/// Format a float with 1 decimal (ratios, day counts).
pub fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals (thresholds).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals (the tables' numeric style).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 4 decimals (cost figures).
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a half-open numeric range with 1 decimal per endpoint (bin labels).
pub fn fmt_range1(lo: f64, hi: f64) -> String {
    format!("{lo:.1}-{hi:.1}")
}

/// Format a float as a percentage with 1 decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["method", "acc", "f1"]);
        t.push_row(vec!["logreg".into(), "0.91".into(), "0.90".into()]);
        t.push_row(vec!["nb, smoothed".into(), "0.87".into(), "0.85".into()]);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = table().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| method"));
        assert!(md.contains("logreg"));
        assert!(md.contains("0.85"));
        assert!(md.lines().count() >= 5);
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = table().to_csv();
        assert!(csv.starts_with("method,acc,f1\n"));
        assert!(csv.contains("\"nb, smoothed\""));
    }

    #[test]
    fn row_lookup() {
        let t = table();
        assert_eq!(t.row_by_key("logreg").expect("row")[1], "0.91");
        assert!(t.row_by_key("nope").is_none());
        assert_eq!(t.cell(0, 2), "0.90");
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt0(123.4), "123");
        assert_eq!(fmt1(2.26), "2.3");
        assert_eq!(fmt2(0.304), "0.30");
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt4(0.00012), "0.0001");
        assert_eq!(fmt_range1(0.0, 0.5), "0.0-0.5");
        assert_eq!(fmt_pct(0.876), "87.6%");
    }
}
