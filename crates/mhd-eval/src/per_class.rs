//! Per-class classification reports (the sklearn-style breakdown).

use crate::confusion::ConfusionMatrix;
use crate::table::{fmt3, Table};

/// Precision/recall/F1/support for one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class label string.
    pub label: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Gold count.
    pub support: u64,
}

/// Compute per-class reports from gold/pred with label names.
pub fn per_class_report(gold: &[usize], pred: &[usize], labels: &[&str]) -> Vec<ClassReport> {
    let c = ConfusionMatrix::from_pairs(gold, pred, labels.len());
    labels
        .iter()
        .enumerate()
        .map(|(k, &label)| {
            let tp = c.tp(k) as f64;
            let fp = c.fp(k) as f64;
            let fn_ = c.fn_(k) as f64;
            let precision = if tp + fp == 0.0 { 0.0 } else { tp / (tp + fp) };
            let recall = if tp + fn_ == 0.0 { 0.0 } else { tp / (tp + fn_) };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            ClassReport { label: label.to_string(), precision, recall, f1, support: c.support(k) }
        })
        .collect()
}

/// Render per-class reports as a table.
pub fn per_class_table(title: &str, reports: &[ClassReport]) -> Table {
    let mut t = Table::new(title, &["class", "precision", "recall", "f1", "support"]);
    for r in reports {
        t.push_row(vec![
            r.label.clone(),
            fmt3(r.precision),
            fmt3(r.recall),
            fmt3(r.f1),
            r.support.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_manual_binary() {
        // gold: 1,1,1,0,0 ; pred: 1,1,0,0,1
        let reports = per_class_report(&[1, 1, 1, 0, 0], &[1, 1, 0, 0, 1], &["neg", "pos"]);
        assert_eq!(reports.len(), 2);
        let pos = &reports[1];
        assert!((pos.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pos.recall - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pos.support, 3);
        let neg = &reports[0];
        assert!((neg.precision - 0.5).abs() < 1e-12);
        assert_eq!(neg.support, 2);
    }

    #[test]
    fn absent_class_all_zero() {
        let reports = per_class_report(&[0, 0], &[0, 0], &["a", "b"]);
        assert_eq!(reports[1].support, 0);
        assert_eq!(reports[1].f1, 0.0);
    }

    #[test]
    fn table_rendering() {
        let reports = per_class_report(&[0, 1], &[0, 1], &["a", "b"]);
        let t = per_class_table("demo", &reports);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.row_by_key("a").expect("row")[3], "1.000");
    }
}
