//! Ordinal classification metrics for graded tasks (depression severity,
//! suicide risk): mean absolute error over grades and quadratic weighted
//! kappa (Cohen's kappa with quadratic disagreement weights) — the metrics
//! the DepSign/CSSRS literature reports alongside F1, because confusing
//! "mild" with "moderate" is not as bad as confusing it with "severe".

/// Mean absolute error between gold and predicted grade indices.
pub fn ordinal_mae(gold: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(gold.len(), pred.len());
    if gold.is_empty() {
        return 0.0;
    }
    let total: f64 = gold
        .iter()
        .zip(pred)
        .map(|(&g, &p)| (g as f64 - p as f64).abs())
        .sum();
    total / gold.len() as f64
}

/// Quadratic weighted kappa over `k` ordered grades.
///
/// `κ_w = 1 − (Σ wᵢⱼ Oᵢⱼ) / (Σ wᵢⱼ Eᵢⱼ)` with `wᵢⱼ = (i−j)²/(k−1)²`,
/// `O` the observed confusion matrix and `E` the outer product of the
/// marginals. 1 = perfect, 0 = chance, negative = worse than chance.
pub fn quadratic_weighted_kappa(gold: &[usize], pred: &[usize], k: usize) -> f64 {
    assert_eq!(gold.len(), pred.len());
    assert!(k >= 2, "need at least two grades");
    let n = gold.len();
    if n == 0 {
        return 0.0;
    }
    let mut observed = vec![vec![0.0f64; k]; k];
    let mut gold_marginal = vec![0.0f64; k];
    let mut pred_marginal = vec![0.0f64; k];
    for (&g, &p) in gold.iter().zip(pred) {
        assert!(g < k && p < k, "grade out of range");
        observed[g][p] += 1.0;
        gold_marginal[g] += 1.0;
        pred_marginal[p] += 1.0;
    }
    let denom_w = ((k - 1) * (k - 1)) as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..k {
        for j in 0..k {
            let w = ((i as f64 - j as f64) * (i as f64 - j as f64)) / denom_w;
            let expected = gold_marginal[i] * pred_marginal[j] / n as f64;
            num += w * observed[i][j];
            den += w * expected;
        }
    }
    if den == 0.0 {
        // No expected disagreement (degenerate marginals): perfect if no
        // observed disagreement either.
        if num == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basics() {
        assert_eq!(ordinal_mae(&[0, 1, 2], &[0, 1, 2]), 0.0);
        assert_eq!(ordinal_mae(&[0, 1, 2], &[1, 2, 3]), 1.0);
        assert_eq!(ordinal_mae(&[0, 3], &[3, 0]), 3.0);
        assert_eq!(ordinal_mae(&[], &[]), 0.0);
    }

    #[test]
    fn qwk_perfect_is_one() {
        let g = [0, 1, 2, 3, 2, 1];
        assert!((quadratic_weighted_kappa(&g, &g, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qwk_penalizes_distance() {
        let gold = [0, 0, 3, 3];
        let near = [1, 0, 2, 3]; // off-by-one errors
        let far = [3, 0, 0, 3]; // maximal errors
        let k_near = quadratic_weighted_kappa(&gold, &near, 4);
        let k_far = quadratic_weighted_kappa(&gold, &far, 4);
        assert!(k_near > k_far, "near {k_near} vs far {k_far}");
    }

    #[test]
    fn qwk_chance_is_about_zero() {
        // Predictions independent of gold with matching marginals.
        let gold: Vec<usize> = (0..400).map(|i| i % 4).collect();
        let pred: Vec<usize> = (0..400).map(|i| (i / 4) % 4).collect();
        let k = quadratic_weighted_kappa(&gold, &pred, 4);
        assert!(k.abs() < 0.1, "chance-level kappa should be ≈ 0: {k}");
    }

    #[test]
    fn qwk_inverted_is_negative() {
        let gold = [0, 0, 0, 3, 3, 3];
        let pred = [3, 3, 3, 0, 0, 0];
        assert!(quadratic_weighted_kappa(&gold, &pred, 4) < -0.5);
    }

    #[test]
    fn qwk_degenerate_single_grade() {
        let gold = [1, 1, 1];
        assert_eq!(quadratic_weighted_kappa(&gold, &gold, 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qwk_rejects_bad_grade() {
        quadratic_weighted_kappa(&[5], &[0], 4);
    }
}
