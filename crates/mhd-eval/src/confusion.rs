//! Confusion matrices.

/// A `k×k` confusion matrix; rows = gold, columns = predicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>, // row-major k×k
}

impl ConfusionMatrix {
    /// Build from parallel gold/pred slices. Panics when a label ≥ `k`.
    pub fn from_pairs(gold: &[usize], pred: &[usize], k: usize) -> Self {
        assert_eq!(gold.len(), pred.len(), "gold/pred must be parallel");
        assert!(k > 0, "k must be positive");
        let mut counts = vec![0u64; k * k];
        for (&g, &p) in gold.iter().zip(pred) {
            assert!(g < k && p < k, "label out of range: gold {g} pred {p} (k={k})");
            counts[g * k + p] += 1;
        }
        ConfusionMatrix { k, counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Count at (gold, pred).
    pub fn at(&self, gold: usize, pred: usize) -> u64 {
        self.counts[gold * self.k + pred]
    }

    /// Total examples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Diagonal sum (correct predictions).
    pub fn correct(&self) -> u64 {
        (0..self.k).map(|i| self.at(i, i)).sum()
    }

    /// True positives for a class.
    pub fn tp(&self, class: usize) -> u64 {
        self.at(class, class)
    }

    /// False positives for a class (predicted class, gold ≠ class).
    pub fn fp(&self, class: usize) -> u64 {
        (0..self.k).filter(|&g| g != class).map(|g| self.at(g, class)).sum()
    }

    /// False negatives for a class (gold class, predicted ≠ class).
    pub fn fn_(&self, class: usize) -> u64 {
        (0..self.k).filter(|&p| p != class).map(|p| self.at(class, p)).sum()
    }

    /// True negatives for a class.
    pub fn tn(&self, class: usize) -> u64 {
        self.total() - self.tp(class) - self.fp(class) - self.fn_(class)
    }

    /// Gold count ("support") of a class.
    pub fn support(&self, class: usize) -> u64 {
        (0..self.k).map(|p| self.at(class, p)).sum()
    }

    /// Row-normalized matrix (each gold row sums to 1; zero rows stay zero).
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        (0..self.k)
            .map(|g| {
                let s = self.support(g) as f64;
                (0..self.k)
                    .map(|p| if s == 0.0 { 0.0 } else { self.at(g, p) as f64 / s })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ConfusionMatrix {
        // gold: 0,0,0,1,1,2 ; pred: 0,1,0,1,1,0
        ConfusionMatrix::from_pairs(&[0, 0, 0, 1, 1, 2], &[0, 1, 0, 1, 1, 0], 3)
    }

    #[test]
    fn counts() {
        let c = m();
        assert_eq!(c.at(0, 0), 2);
        assert_eq!(c.at(0, 1), 1);
        assert_eq!(c.at(2, 0), 1);
        assert_eq!(c.total(), 6);
        assert_eq!(c.correct(), 4);
    }

    #[test]
    fn per_class_counts() {
        let c = m();
        assert_eq!(c.tp(0), 2);
        assert_eq!(c.fp(0), 1); // the class-2 example predicted as 0
        assert_eq!(c.fn_(0), 1); // the class-0 example predicted as 1
        assert_eq!(c.tn(0), 2);
        assert_eq!(c.support(2), 1);
        assert_eq!(c.tp(2) + c.fp(2) + c.fn_(2) + c.tn(2), 6);
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let n = m().normalized();
        for (g, row) in n.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {g} sums to {s}");
        }
    }

    #[test]
    fn zero_row_stays_zero() {
        let c = ConfusionMatrix::from_pairs(&[0], &[0], 2);
        let n = c.normalized();
        assert!(n[1].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        ConfusionMatrix::from_pairs(&[5], &[0], 2);
    }
}
