//! Percentile bootstrap confidence intervals over per-example outcomes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate on the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

/// Percentile bootstrap for any statistic of `(gold, pred)` pairs.
///
/// `statistic` receives resampled parallel slices and returns a scalar
/// (e.g. accuracy or weighted F1). `level` is the confidence level, e.g.
/// 0.95.
pub fn bootstrap_ci<F>(
    gold: &[usize],
    pred: &[usize],
    statistic: F,
    n_resamples: usize,
    level: f64,
    seed: u64,
) -> Interval
where
    F: Fn(&[usize], &[usize]) -> f64,
{
    assert_eq!(gold.len(), pred.len());
    assert!(!gold.is_empty(), "empty sample");
    assert!((0.5..1.0).contains(&level), "level must be in [0.5, 1)");
    let n = gold.len();
    let point = statistic(gold, pred);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut g = vec![0usize; n];
    let mut p = vec![0usize; n];
    for _ in 0..n_resamples {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            g[i] = gold[j];
            p[i] = pred[j];
        }
        stats.push(statistic(&g, &p));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((n_resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((n_resamples as f64) * (1.0 - alpha)).ceil() as usize).min(n_resamples - 1);
    Interval { point, lo: stats[lo_idx], hi: stats[hi_idx] }
}

/// Convenience: bootstrap CI of plain accuracy.
pub fn accuracy_ci(gold: &[usize], pred: &[usize], n_resamples: usize, seed: u64) -> Interval {
    bootstrap_ci(
        gold,
        pred,
        |g, p| {
            let correct = g.iter().zip(p).filter(|(a, b)| a == b).count();
            correct as f64 / g.len() as f64
        },
        n_resamples,
        0.95,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_matches_statistic() {
        let gold = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let pred = vec![0, 1, 0, 1, 0, 0, 1, 1];
        let ci = accuracy_ci(&gold, &pred, 200, 1);
        assert!((ci.point - 0.75).abs() < 1e-12);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    }

    #[test]
    fn perfect_predictions_tight_interval() {
        let gold = vec![0, 1, 0, 1];
        let ci = accuracy_ci(&gold, &gold, 100, 2);
        assert_eq!(ci.point, 1.0);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let gold = vec![0, 1, 1, 0, 1, 0];
        let pred = vec![0, 1, 0, 0, 1, 1];
        let a = accuracy_ci(&gold, &pred, 300, 7);
        let b = accuracy_ci(&gold, &pred, 300, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_samples_narrower_intervals() {
        let small_gold: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let small_pred: Vec<usize> = (0..20).map(|i| if i % 5 == 0 { 1 - i % 2 } else { i % 2 }).collect();
        let big_gold: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        let big_pred: Vec<usize> = (0..2000).map(|i| if i % 5 == 0 { 1 - i % 2 } else { i % 2 }).collect();
        let small = accuracy_ci(&small_gold, &small_pred, 300, 3);
        let big = accuracy_ci(&big_gold, &big_pred, 300, 3);
        assert!((big.hi - big.lo) < (small.hi - small.lo));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        accuracy_ci(&[], &[], 10, 1);
    }
}
