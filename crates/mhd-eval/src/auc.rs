//! ROC analysis: AUC and curve points for binary scoring.

/// One ROC point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold the point corresponds to.
    pub threshold: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate (recall).
    pub tpr: f64,
}

/// Area under the ROC curve for positive-class scores.
///
/// Computed via the Mann–Whitney U statistic (ties counted half), which is
/// exact and O(n log n). Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f64], positive: &[bool]) -> f64 {
    assert_eq!(scores.len(), positive.len());
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 =
        ranks.iter().zip(positive).filter(|(_, &p)| p).map(|(&r, _)| r).sum();
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Full ROC curve, sweeping every distinct score as a threshold. Points are
/// ordered by increasing FPR and include the (0,0) and (1,1) endpoints.
pub fn roc_curve(scores: &[f64], positive: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), positive.len());
    let n_pos = positive.iter().filter(|&&p| p).count() as f64;
    let n_neg = (positive.len() - n_pos as usize) as f64;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Descending score: lowering the threshold adds points.
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let mut points = vec![RocPoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 }];
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume all examples at this score.
        while i < order.len() && scores[order[i]] == threshold {
            if positive[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold,
            fpr: if n_neg == 0.0 { 0.0 } else { fp / n_neg },
            tpr: if n_pos == 0.0 { 0.0 } else { tp / n_pos },
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let pos = [true, true, false, false];
        assert!((roc_auc(&scores, &pos) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let pos = [true, true, false, false];
        assert!(roc_auc(&scores, &pos).abs() < 1e-12);
    }

    #[test]
    fn random_scores_auc_half() {
        // Identical scores: every pair is a tie → AUC exactly 0.5.
        let scores = [0.5; 10];
        let pos: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!((roc_auc(&scores, &pos) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.7], &[false, false]), 0.5);
    }

    #[test]
    fn known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs: (0.8>0.6)✓ (0.8>0.2)✓ (0.4<0.6)✗ (0.4>0.2)✓ → 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let pos = [true, true, false, false];
        assert!((roc_auc(&scores, &pos) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let scores = [0.9, 0.7, 0.6, 0.3, 0.2];
        let pos = [true, false, true, false, true];
        let curve = roc_curve(&scores, &pos);
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
    }

    #[test]
    fn trapezoid_matches_mann_whitney() {
        let scores = [0.95, 0.8, 0.7, 0.65, 0.5, 0.4, 0.3, 0.2];
        let pos = [true, true, false, true, false, true, false, false];
        let curve = roc_curve(&scores, &pos);
        let mut area = 0.0;
        for w in curve.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        assert!((area - roc_auc(&scores, &pos)).abs() < 1e-9);
    }
}
