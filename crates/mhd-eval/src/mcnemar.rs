//! McNemar's test for paired classifier comparison.
//!
//! Given two classifiers evaluated on the same test set, only the
//! *discordant* pairs matter: `b` = examples A got right and B got wrong,
//! `c` = the reverse. The continuity-corrected statistic
//! `(|b−c|−1)²/(b+c)` is χ²(1)-distributed under H₀ (equal error rates).

/// Result of a McNemar test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McNemar {
    /// A-right/B-wrong count.
    pub b: u64,
    /// A-wrong/B-right count.
    pub c: u64,
    /// Continuity-corrected χ² statistic (0 when b + c = 0).
    pub statistic: f64,
    /// Approximate two-sided p-value from the χ²(1) distribution.
    pub p_value: f64,
}

impl McNemar {
    /// Is the difference significant at `alpha`?
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the test from gold labels and two prediction vectors.
pub fn mcnemar(gold: &[usize], pred_a: &[usize], pred_b: &[usize]) -> McNemar {
    assert_eq!(gold.len(), pred_a.len());
    assert_eq!(gold.len(), pred_b.len());
    let mut b = 0u64;
    let mut c = 0u64;
    for i in 0..gold.len() {
        let a_ok = pred_a[i] == gold[i];
        let b_ok = pred_b[i] == gold[i];
        match (a_ok, b_ok) {
            (true, false) => b += 1,
            (false, true) => c += 1,
            _ => {}
        }
    }
    let statistic = if b + c == 0 {
        0.0
    } else {
        let diff = (b as f64 - c as f64).abs() - 1.0;
        let diff = diff.max(0.0);
        diff * diff / (b + c) as f64
    };
    McNemar { b, c, statistic, p_value: chi2_1_sf(statistic) }
}

/// Survival function of χ²(1): P(X > x) = erfc(√(x/2)).
fn chi2_1_sf(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    erfc((x / 2.0).sqrt())
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let val = poly * (-x * x).exp();
    if x >= 0.0 {
        val
    } else {
        2.0 - val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classifiers_not_significant() {
        let gold = vec![0, 1, 0, 1, 0, 1];
        let pred = vec![0, 1, 0, 0, 1, 1];
        let r = mcnemar(&gold, &pred, &pred);
        assert_eq!(r.b, 0);
        assert_eq!(r.c, 0);
        assert_eq!(r.statistic, 0.0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn one_sided_dominance_significant() {
        // A is right on 30 examples B gets wrong; B never beats A.
        let n = 60;
        let gold: Vec<usize> = vec![1; n];
        let pred_a: Vec<usize> = vec![1; n];
        let pred_b: Vec<usize> = (0..n).map(|i| if i < 30 { 0 } else { 1 }).collect();
        let r = mcnemar(&gold, &pred_a, &pred_b);
        assert_eq!(r.b, 30);
        assert_eq!(r.c, 0);
        assert!(r.significant(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn balanced_disagreement_not_significant() {
        let gold: Vec<usize> = vec![1; 20];
        let mut pred_a = vec![1; 20];
        let mut pred_b = vec![1; 20];
        // 5 discordant each way.
        pred_a[..5].fill(0);
        pred_b[5..10].fill(0);
        let r = mcnemar(&gold, &pred_a, &pred_b);
        assert_eq!(r.b, 5);
        assert_eq!(r.c, 5);
        assert!(!r.significant(0.05));
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-4);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-4);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn chi2_known_quantile() {
        // χ²(1) 95th percentile ≈ 3.841 → sf ≈ 0.05.
        assert!((chi2_1_sf(3.841) - 0.05).abs() < 0.002);
    }
}
