//! Int8 inference contract tests, pinned at the experiment-engine level:
//!
//! 1. **Tolerance** — on a standard generated corpus, the quantized
//!    `bert_mini` detector must track its own f32 weights: near-total
//!    prediction agreement and a small accuracy delta. Quantization may
//!    move a few borderline posts across the decision boundary; it must
//!    not change what the model learned.
//! 2. **Determinism** — the int8 path accumulates in i32 (exactly
//!    associative), so its evaluation output must be *byte-identical*
//!    across worker-thread counts, same as the f32 kernels. Flips the
//!    vendored rayon shim's reconfigurable global pool between 1 and 8
//!    workers inside one test so the configurations cannot race.

use mhd_core::experiments::{ExperimentConfig, Precision};
use mhd_core::methods::{make_detector_with, ClassicalKind, MethodSpec, SharedClient};
use mhd_core::pipeline::{evaluate, EvalResult};
use mhd_corpus::builders::DatasetId;
use mhd_corpus::dataset::Split;

fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new().num_threads(n).build_global().expect("pool config");
}

fn eval_bert_mini(cfg: &ExperimentConfig) -> EvalResult {
    let client = SharedClient::new(cfg.pretrain_seed);
    let spec = MethodSpec::Classical(ClassicalKind::BertMini);
    let mut det = make_detector_with(&spec, &client, cfg.precision);
    let dataset = cfg.dataset(DatasetId::DreadditS);
    evaluate(det.as_mut(), &dataset, Split::Test)
}

/// Confidence values with bit-exact comparability.
fn confidence_bits(r: &EvalResult) -> Vec<u64> {
    r.confidence.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn int8_tracks_f32_and_is_byte_identical_across_job_counts() {
    let f32_cfg =
        ExperimentConfig { seed: 42, scale: 0.1, pretrain_seed: 1234, ..Default::default() };
    let i8_cfg = ExperimentConfig { precision: Precision::Int8, ..f32_cfg };

    // --- tolerance: int8 vs f32 on the same corpus, same training run ---
    set_jobs(1);
    let rf = eval_bert_mini(&f32_cfg);
    let ri_serial = eval_bert_mini(&i8_cfg);

    assert_eq!(rf.pred.len(), ri_serial.pred.len());
    let n = rf.pred.len();
    let agree = rf.pred.iter().zip(&ri_serial.pred).filter(|(a, b)| a == b).count();
    assert!(
        agree * 100 >= n * 95,
        "int8 prediction agreement with f32 too low: {agree}/{n}"
    );
    let acc_delta = (rf.metrics.accuracy - ri_serial.metrics.accuracy).abs();
    assert!(
        acc_delta <= 0.05,
        "int8 accuracy drifted from f32 by {acc_delta} (f32 {}, int8 {})",
        rf.metrics.accuracy,
        ri_serial.metrics.accuracy
    );
    // The quantized model must still clearly beat chance on this binary
    // task — quantization cannot have destroyed the decision function.
    assert!(ri_serial.metrics.accuracy > 0.6, "int8 accuracy {}", ri_serial.metrics.accuracy);

    // --- determinism: same int8 evaluation at 8 workers, byte for byte ---
    set_jobs(8);
    let ri_parallel = eval_bert_mini(&i8_cfg);
    assert_eq!(ri_serial.pred, ri_parallel.pred, "int8 labels depend on worker count");
    assert_eq!(
        confidence_bits(&ri_serial),
        confidence_bits(&ri_parallel),
        "int8 confidences must be bit-identical at 1 vs 8 workers"
    );
    assert_eq!(ri_serial.metrics.accuracy.to_bits(), ri_parallel.metrics.accuracy.to_bits());
}
