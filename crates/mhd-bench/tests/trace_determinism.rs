//! The observability contract: enabling the mhd-obs sink must never change
//! a single artifact byte, at any worker count. Wall-clock flows only into
//! the manifest side channel.
//!
//! The enable/disable flag and the rayon pool are process globals, so every
//! test that touches them serializes on [`guard`] (the vendored rayon
//! shim's reconfigurable global pool lets one process flip worker counts).

use mhd_core::experiments::ExperimentConfig;
use mhd_core::report::Artifact;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
}

fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new().num_threads(n).build_global().expect("pool config");
}

fn render(artifact: Artifact, cfg: &ExperimentConfig) -> String {
    let mut out = artifact.generate(cfg).to_csv();
    out.push('\n');
    out
}

/// T2 exercises every method family (classical, prompted, fine-tuned), so
/// tracing it covers dataset builds, TF-IDF fits, gemm kernels, and the
/// simulated LLM client. Four configurations of (tracing, jobs) must agree.
#[test]
fn tracing_never_changes_artifact_bytes() {
    let _g = guard();
    let cfg = ExperimentConfig { seed: 42, scale: 0.06, pretrain_seed: 1234, ..Default::default() };

    mhd_obs::disable();
    set_jobs(1);
    let baseline = render(Artifact::T2, &cfg);

    mhd_obs::reset();
    mhd_obs::enable();
    let traced_serial = render(Artifact::T2, &cfg);
    assert!(
        !mhd_obs::spans_snapshot().children.is_empty(),
        "tracing was on: the span tree must not be empty"
    );

    set_jobs(8);
    let traced_parallel = render(Artifact::T2, &cfg);

    mhd_obs::disable();
    let untraced_parallel = render(Artifact::T2, &cfg);

    assert_eq!(baseline, traced_serial, "tracing changed bytes at --jobs 1");
    assert_eq!(baseline, traced_parallel, "tracing changed bytes at --jobs 8");
    assert_eq!(baseline, untraced_parallel, "jobs changed bytes with tracing off");
}

/// A traced run's manifest is schema-valid and carries the signals the
/// acceptance criteria name: artifact row counts, cache counters, and a
/// span tree rooted at the artifact.
#[test]
fn manifest_carries_run_evidence() {
    let _g = guard();
    let cfg = ExperimentConfig { seed: 7, scale: 0.06, pretrain_seed: 1234, ..Default::default() };

    mhd_obs::reset();
    mhd_obs::enable();
    let table = Artifact::T2.generate(&cfg);
    mhd_obs::disable();

    let mut rows = BTreeMap::new();
    rows.insert("t2".to_string(), table.n_rows() as u64);
    let header = mhd_obs::RunHeader {
        tool: "trace_determinism".to_string(),
        git: "test".to_string(),
        seed: cfg.seed,
        scale: cfg.scale,
        jobs: rayon::current_num_threads(),
    };
    let manifest = mhd_obs::render_manifest(&header, &rows);

    assert!(manifest.contains("\"schema\": \"mhd-obs/manifest/v2\""));
    assert!(manifest.contains("\"seed\": 7"));
    assert!(manifest.contains(&format!("\"t2\": {}", table.n_rows())));
    // The feature cache was exercised (hit or miss, depending on what the
    // process-global cache already holds).
    assert!(manifest.contains("feature_cache.dataset."), "{manifest}");
    // The span tree reaches from the dispatcher into the evaluation cells.
    assert!(manifest.contains("\"name\": \"t2\""), "{manifest}");
    assert!(manifest.contains("\"name\": \"eval:"), "{manifest}");
    assert!(manifest.contains("\"name\": \"detect\""), "{manifest}");
    // Rendering is a pure function of the recorded state.
    assert_eq!(manifest, mhd_obs::render_manifest(&header, &rows));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property: for any seed, tracing the cheap dataset-overview table
    /// leaves its bytes untouched.
    #[test]
    fn traced_t1_matches_untraced_for_any_seed(seed in 0u64..1000) {
        let _g = guard();
        let cfg = ExperimentConfig { seed, scale: 0.05, pretrain_seed: 1234, ..Default::default() };
        mhd_obs::disable();
        let plain = render(Artifact::T1, &cfg);
        mhd_obs::enable();
        let traced = render(Artifact::T1, &cfg);
        mhd_obs::disable();
        prop_assert_eq!(plain, traced);
    }
}
