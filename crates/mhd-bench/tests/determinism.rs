//! Regression test for the parallel experiment engine: tables must be
//! byte-identical no matter how many worker threads generate them.
//!
//! Uses the vendored rayon shim's reconfigurable global pool to flip the
//! same process between 1 and 4 workers. One test function runs both
//! configurations so they cannot race each other over the global pool.

use mhd_core::experiments::{t2_main_results, t5_robustness, ExperimentConfig};

fn set_jobs(n: usize) {
    rayon::ThreadPoolBuilder::new().num_threads(n).build_global().expect("pool config");
}

#[test]
fn tables_are_byte_identical_across_job_counts() {
    let cfg = ExperimentConfig { seed: 42, scale: 0.06, pretrain_seed: 1234, ..Default::default() };

    // T2 covers every method family (classical, prompted, fine-tuned) and
    // so also proves the fine-tune id counter is output-neutral; T5 covers
    // the prepared-once/evaluated-many robustness pattern.
    set_jobs(1);
    let t2_serial = t2_main_results(&cfg).to_csv();
    let t5_serial = t5_robustness(&cfg).to_csv();

    set_jobs(4);
    let t2_parallel = t2_main_results(&cfg).to_csv();
    let t5_parallel = t5_robustness(&cfg).to_csv();

    assert_eq!(t2_serial, t2_parallel, "t2 must not depend on worker count");
    assert_eq!(t5_serial, t5_parallel, "t5 must not depend on worker count");
}
