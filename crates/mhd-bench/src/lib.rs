#![forbid(unsafe_code)]
//! # mhd-bench — benchmark harness
//!
//! Two entry points:
//!
//! - the **`repro` binary** (`cargo run --release -p mhd-bench --bin repro`)
//!   regenerates any table/figure of the survey: `repro --table t2`,
//!   `repro --figure f1`, `repro --all`, with `--scale` controlling dataset
//!   size and `--csv` switching the output format;
//! - the **criterion benches** (`cargo bench -p mhd-bench`) measure the
//!   substrate (tokenization, vectorizers, generation, LLM query latency,
//!   training) and time a reduced-size run of every experiment.

use mhd_core::experiments::ExperimentConfig;
use mhd_core::report::Artifact;

/// Resolved CLI options for the repro binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproOptions {
    /// Artifacts to generate.
    pub artifacts: Vec<Artifact>,
    /// Experiment configuration.
    pub config: ExperimentConfig,
    /// Emit CSV instead of markdown.
    pub csv: bool,
    /// Just list available artifact ids and exit.
    pub list: bool,
    /// Worker-thread count (`--jobs`). `None` = unset on the command line;
    /// the binary then falls back to `MHD_JOBS`, then to all cores.
    pub jobs: Option<usize>,
    /// Write a `RUN_MANIFEST.json` trace to this path (`--trace`). `None`
    /// = unset on the command line; the binary then falls back to the
    /// `MHD_TRACE=1` environment variable (default path).
    pub trace: Option<String>,
    /// Print the flamegraph-style trace summary on stderr (`--trace-summary`).
    pub trace_summary: bool,
    /// Silence all progress output (`--quiet`).
    pub quiet: bool,
    /// Compare freshly generated output against the committed report at
    /// this path instead of printing (`--check-report`). Implies `--all`
    /// when no artifacts are given explicitly.
    pub check_report: Option<String>,
}

/// Resolve the worker-thread count: an explicit `--jobs` wins, then the
/// `MHD_JOBS` environment variable, then `None` (let rayon use all cores).
pub fn resolve_jobs(cli_jobs: Option<usize>) -> Option<usize> {
    cli_jobs.or_else(|| std::env::var("MHD_JOBS").ok().and_then(|v| v.parse().ok()))
}

/// Parse repro CLI arguments (everything after the binary name).
///
/// Grammar: `[--table <id>]* [--figure <id>]* [--all] [--scale <f>]
/// [--seed <n>] [--jobs <n>] [--precision f32|int8] [--csv]
/// [--trace <path>] [--trace-summary] [--quiet] [--check-report <path>]`.
/// Unknown flags are an error.
pub fn parse_args(args: &[String]) -> Result<ReproOptions, String> {
    let mut artifacts = Vec::new();
    let mut config = ExperimentConfig::default();
    let mut csv = false;
    let mut jobs = None;
    let mut trace = None;
    let mut trace_summary = false;
    let mut quiet = false;
    let mut check_report = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" | "--figure" => {
                let name = args.get(i + 1).ok_or_else(|| format!("{} needs an id", args[i]))?;
                let artifact = Artifact::from_name(name)
                    .ok_or_else(|| format!("unknown artifact id: {name}"))?;
                artifacts.push(artifact);
                i += 2;
            }
            "--all" => {
                artifacts.extend(Artifact::ALL);
                i += 1;
            }
            "--scale" => {
                let v = args.get(i + 1).ok_or("--scale needs a value")?;
                config.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                i += 2;
            }
            "--seed" => {
                let v = args.get(i + 1).ok_or("--seed needs a value")?;
                config.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                i += 2;
            }
            "--precision" => {
                let v = args.get(i + 1).ok_or("--precision needs a value (f32|int8)")?;
                config.precision = mhd_core::experiments::Precision::parse(v)
                    .ok_or_else(|| format!("bad precision (want f32|int8): {v}"))?;
                i += 2;
            }
            "--jobs" => {
                let v = args.get(i + 1).ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad jobs: {v}"))?;
                if n == 0 {
                    return Err("jobs must be >= 1".to_string());
                }
                jobs = Some(n);
                i += 2;
            }
            "--csv" => {
                csv = true;
                i += 1;
            }
            "--trace" => {
                let v = args.get(i + 1).ok_or("--trace needs a path")?;
                trace = Some(v.clone());
                i += 2;
            }
            "--trace-summary" => {
                trace_summary = true;
                i += 1;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            "--check-report" => {
                let v = args.get(i + 1).ok_or("--check-report needs a path")?;
                check_report = Some(v.clone());
                i += 2;
            }
            "--list" => {
                return Ok(ReproOptions {
                    artifacts: Vec::new(),
                    config,
                    csv: false,
                    list: true,
                    jobs,
                    trace: None,
                    trace_summary: false,
                    quiet,
                    check_report: None,
                });
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if artifacts.is_empty() {
        if check_report.is_some() {
            // Checking defaults to the full report, like the committed file.
            artifacts.extend(Artifact::ALL);
        } else {
            return Err(
                "nothing to do: pass --table <id>, --figure <id>, --all or --list".to_string(),
            );
        }
    }
    artifacts.dedup();
    Ok(ReproOptions {
        artifacts,
        config,
        csv,
        list: false,
        jobs,
        trace,
        trace_summary,
        quiet,
        check_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_single_table() {
        let o = parse_args(&sv(&["--table", "t2"])).expect("ok");
        assert_eq!(o.artifacts, vec![Artifact::T2]);
        assert!(!o.csv);
        assert!(!o.list);
    }

    #[test]
    fn list_flag() {
        let o = parse_args(&sv(&["--list"])).expect("ok");
        assert!(o.list);
        assert!(o.artifacts.is_empty());
    }

    #[test]
    fn parses_all_with_scale() {
        let o = parse_args(&sv(&["--all", "--scale", "0.5", "--csv"])).expect("ok");
        assert_eq!(o.artifacts.len(), Artifact::ALL.len());
        assert!((o.config.scale - 0.5).abs() < 1e-12);
        assert!(o.csv);
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_args(&sv(&["--frobnicate"])).is_err());
    }

    #[test]
    fn rejects_unknown_artifact() {
        assert!(parse_args(&sv(&["--table", "t9"])).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn seed_override() {
        let o = parse_args(&sv(&["--figure", "f1", "--seed", "7"])).expect("ok");
        assert_eq!(o.config.seed, 7);
    }

    #[test]
    fn jobs_flag() {
        let o = parse_args(&sv(&["--table", "t2", "--jobs", "4"])).expect("ok");
        assert_eq!(o.jobs, Some(4));
        let o = parse_args(&sv(&["--table", "t2"])).expect("ok");
        assert_eq!(o.jobs, None);
        assert!(parse_args(&sv(&["--table", "t2", "--jobs", "0"])).is_err());
        assert!(parse_args(&sv(&["--table", "t2", "--jobs", "x"])).is_err());
    }

    #[test]
    fn precision_flag() {
        use mhd_core::experiments::Precision;
        let o = parse_args(&sv(&["--table", "t2", "--precision", "int8"])).expect("ok");
        assert_eq!(o.config.precision, Precision::Int8);
        let o = parse_args(&sv(&["--table", "t2", "--precision", "f32"])).expect("ok");
        assert_eq!(o.config.precision, Precision::F32);
        let o = parse_args(&sv(&["--table", "t2"])).expect("ok");
        assert_eq!(o.config.precision, Precision::F32, "default stays f32");
        assert!(parse_args(&sv(&["--table", "t2", "--precision", "fp16"])).is_err());
        assert!(parse_args(&sv(&["--table", "t2", "--precision"])).is_err());
    }

    #[test]
    fn explicit_jobs_beats_env() {
        assert_eq!(resolve_jobs(Some(3)), Some(3));
    }

    #[test]
    fn trace_flags() {
        let o = parse_args(&sv(&["--table", "t2", "--trace", "m.json", "--trace-summary"]))
            .expect("ok");
        assert_eq!(o.trace.as_deref(), Some("m.json"));
        assert!(o.trace_summary);
        assert!(!o.quiet);
        assert!(parse_args(&sv(&["--table", "t2", "--trace"])).is_err());
    }

    #[test]
    fn quiet_flag() {
        let o = parse_args(&sv(&["--all", "--quiet"])).expect("ok");
        assert!(o.quiet);
    }

    #[test]
    fn check_report_implies_all() {
        let o = parse_args(&sv(&["--check-report", "reports/benchmark_report.md"])).expect("ok");
        assert_eq!(o.check_report.as_deref(), Some("reports/benchmark_report.md"));
        assert_eq!(o.artifacts.len(), Artifact::ALL.len());
        // Explicit artifacts win over the implied --all.
        let o = parse_args(&sv(&["--table", "t1", "--check-report", "x.md"])).expect("ok");
        assert_eq!(o.artifacts, vec![Artifact::T1]);
        assert!(parse_args(&sv(&["--check-report"])).is_err());
    }
}
