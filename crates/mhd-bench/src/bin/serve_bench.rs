#![forbid(unsafe_code)]
//! Load harness for the `mhd-serve` micro-batching service; emits
//! `BENCH_serve.json`.
//!
//! ```text
//! serve_bench                        # full run, writes BENCH_serve.json
//! serve_bench --smoke                # tiny stream (CI liveness check)
//! serve_bench --jobs 4               # shard pool + worker threads
//! serve_bench --out path.json        # write elsewhere
//! serve_bench --trace manifest.json  # also emit a RUN_MANIFEST trace
//! serve_bench --check-bench <path>   # validate a committed BENCH_serve.json
//! serve_bench --chaos <scenario>     # seeded fault storm, writes a digest CSV
//! serve_bench --chaos-seed <n>       # storm seed (default: the bench seed)
//! serve_bench --chaos-out <path>     # digest path (default CHAOS_digest.csv)
//! serve_bench --digest <path>        # plain (unwrapped) serve digest, same format
//! serve_bench --telemetry <prefix>   # live exporter: <prefix>.series.jsonl,
//!                                    #   <prefix>.prom, <prefix>.journal.jsonl
//! ```
//!
//! Chaos mode (`--chaos`) replays a seeded fault schedule from
//! `mhd-fault` through the serving stack: the zoo loads through the
//! checkpoint fault seam with retry, a supervised phase drives the
//! int8 service through injected panics/stalls, and a degraded phase
//! routes the same stream through the f32 fallback. Every request's
//! outcome lands in a digest CSV (`phase,idx,status,row-bits`); with
//! the `zero_fault` scenario the digest is byte-identical to the plain
//! `--digest` run at any `--jobs`/shard count.
//!
//! Three drivers over seeded synthetic post streams:
//!
//! * **capacity (burst)** — a submitter keeps the bounded queue full
//!   (yielding on `QueueFull`) until the whole stream is served; the
//!   drain rate is the service's saturation throughput, and the
//!   headline micro-batched-int8 vs batch-1-f32 speedup comes from
//!   these rows.
//! * **closed loop** — a pool of client threads each blocking on every
//!   request; measures interactive client-observed p50/p95/p99 latency
//!   for f32 vs int8 and micro-batched vs batch-size-1 serving.
//! * **open loop** — a dispatcher follows a seeded arrival schedule
//!   (steady, bursty, diurnal) regardless of completions; measures
//!   latency under offered load and counts typed `QueueFull`
//!   rejections, making the admission-control path visible.
//!
//! The model zoo is loaded once through the mapping loader
//! (`Checkpoint::map`); its one-shot startup cost is reported next to
//! the streams it serves. `MHD_BENCH_SMOKE=1` in the environment is the
//! CI form of `--smoke`. All clock reads go through
//! `mhd_obs::time::Stopwatch` (lint rule R5).

use std::collections::BTreeMap;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use mhd_bench::resolve_jobs;
use mhd_fault::{FaultInjector, FaultPlan, RetryPolicy, Scenario};
use mhd_nn::quant::Precision;
use mhd_nn::Mlp;
use mhd_obs::time::Stopwatch;
use mhd_serve::traffic::{arrival_offsets_ns, synthetic_posts, ArrivalPattern, TrafficSpec};
use mhd_serve::{
    BatchModel, FallbackModel, FaultyModel, MlpVariant, ModelZoo, ServeConfig, ServeError,
    Service, Ticket,
};

/// Schema tag written to (and required from) `BENCH_serve.json`.
/// v2: added the `telemetry_overhead` section.
const SCHEMA: &str = "mhd-bench/serve/v2";
/// Dense feature width served by the detector MLP (T2's input width).
const DIM: usize = 178;
const CLASSES: usize = 9;
const SEED: u64 = 20260807;
/// Deadline trigger for micro-batched scenarios.
const MAX_WAIT_US: u64 = 200;
const QUEUE_CAP: usize = 4096;

struct Options {
    out: String,
    smoke: bool,
    jobs: Option<usize>,
    check_bench: Option<String>,
    trace: Option<String>,
    chaos: Option<Scenario>,
    chaos_seed: u64,
    chaos_out: String,
    digest: Option<String>,
    telemetry: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_serve.json".to_string(),
        smoke: std::env::var("MHD_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false),
        jobs: None,
        check_bench: None,
        trace: None,
        chaos: None,
        chaos_seed: SEED,
        chaos_out: "CHAOS_digest.csv".to_string(),
        digest: None,
        telemetry: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = it.next().ok_or("--out needs a path")?.clone();
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a count")?;
                opts.jobs = Some(v.parse().map_err(|_| format!("bad --jobs value: {v}"))?);
            }
            "--check-bench" => {
                opts.check_bench = Some(it.next().ok_or("--check-bench needs a path")?.clone());
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--chaos" => {
                let v = it.next().ok_or("--chaos needs a scenario")?;
                opts.chaos = Some(v.parse::<Scenario>()?);
            }
            "--chaos-seed" => {
                let v = it.next().ok_or("--chaos-seed needs a number")?;
                opts.chaos_seed =
                    v.parse().map_err(|_| format!("bad --chaos-seed value: {v}"))?;
            }
            "--chaos-out" => {
                opts.chaos_out = it.next().ok_or("--chaos-out needs a path")?.clone();
            }
            "--digest" => {
                opts.digest = Some(it.next().ok_or("--digest needs a path")?.clone());
            }
            "--telemetry" => {
                opts.telemetry =
                    Some(it.next().ok_or("--telemetry needs a path prefix")?.clone());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.chaos.is_some() && opts.digest.is_some() {
        return Err("--chaos and --digest are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// Validate a committed `BENCH_serve.json`: current schema, produced by
/// a full run, all sections and scenario rows present. String checks
/// suffice — the file is machine-written by this binary.
fn check_bench_file(contents: &str) -> Vec<String> {
    let mut problems = Vec::new();
    if !contents.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!(
            "schema is not {SCHEMA}: regenerate with `cargo run --release -p mhd-bench --bin serve_bench`"
        ));
    }
    if !contents.contains("\"smoke\": false") {
        problems.push("committed bench must come from a full run, not --smoke".to_string());
    }
    for section in [
        "\"zoo\":",
        "\"capacity\":",
        "\"closed_loop\":",
        "\"open_loop\":",
        "\"microbatch_speedup\":",
        "\"telemetry_overhead\":",
    ] {
        if !contents.contains(section) {
            problems.push(format!("missing section {section}"));
        }
    }
    for row in ["mlp_f32", "mlp_int8", "steady", "bursty", "diurnal", "int8_micro_vs_f32_single"] {
        if !contents.contains(row) {
            problems.push(format!("missing entry {row}"));
        }
    }
    // The telemetry tax is a gated claim, not just a reported number:
    // full recording must keep >= 95% of telemetry-off capacity.
    match overhead_ratio(contents) {
        Some(r) if r >= 0.95 => {}
        Some(r) => problems.push(format!(
            "telemetry_overhead ratio {r:.3} is below the 0.95 floor: full telemetry costs too much; regenerate or investigate"
        )),
        None => problems.push("telemetry_overhead section has no parsable \"ratio\"".to_string()),
    }
    problems
}

/// Pull `"ratio": <f64>` out of the `telemetry_overhead` section.
fn overhead_ratio(contents: &str) -> Option<f64> {
    let section = contents.split("\"telemetry_overhead\":").nth(1)?;
    let rest = section.split("\"ratio\":").nth(1)?;
    let end = rest.find([',', '}'])?;
    rest.get(..end)?.trim().parse().ok()
}

/// `p`-th percentile (nearest-rank on an already sorted slice), in the
/// slice's unit.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied().unwrap_or(0)
}

/// Window width for the live exporter when `--telemetry` is on: short
/// enough that a smoke run closes several windows, long enough that
/// polling stays invisible next to the serving work.
const TELEMETRY_WINDOW_US: u64 = 50_000;

/// Start the live exporter at `prefix` and spawn its polling thread.
fn start_telemetry(prefix: &str) -> mhd_obs::Poller {
    let cfg = mhd_obs::TelemetryConfig::at_prefix(prefix, TELEMETRY_WINDOW_US);
    let exporter = match mhd_obs::Exporter::create(cfg) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: cannot start telemetry exporter at {prefix}: {e}");
            std::process::exit(1);
        }
    };
    mhd_obs::Poller::spawn(exporter, TELEMETRY_WINDOW_US)
}

/// Stop the polling thread and close the final window.
fn finish_telemetry(poller: mhd_obs::Poller) {
    if let Err(e) = poller.finish() {
        eprintln!("error: telemetry exporter failed: {e}");
        std::process::exit(1);
    }
}

/// Mean micro-batch size the service actually ran, from the obs sink.
fn mean_batch_size() -> f64 {
    mhd_obs::hist_snapshot()
        .get("serve.batch_size")
        .map(|h| h.sum as f64 / (h.count.max(1)) as f64)
        .unwrap_or(0.0)
}

struct ClosedRow {
    model: &'static str,
    max_batch: usize,
    shards: usize,
    clients: usize,
    posts: usize,
    wall_secs: f64,
    lat_us: Vec<u64>,
    mean_batch: f64,
}

impl ClosedRow {
    fn posts_per_sec(&self) -> f64 {
        self.posts as f64 / self.wall_secs.max(1e-12)
    }
}

/// Closed-loop drive: `clients` threads each submit-and-wait over their
/// slice of the stream until `posts` requests have been served.
fn closed_loop(
    variant: &MlpVariant,
    cfg: ServeConfig,
    clients: usize,
    per_client: usize,
    posts: &[Vec<f32>],
) -> ClosedRow {
    mhd_obs::reset();
    let model = variant.label();
    let svc = Service::start(Arc::new(variant.clone()), cfg);
    let sw = Stopwatch::start();
    let mut lat_us: Vec<u64> = Vec::with_capacity(clients * per_client);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let svc = &svc;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let post = &posts[(c * per_client + i) % posts.len()];
                        let t = Stopwatch::start();
                        let row = svc.predict(post.clone()).expect("closed-loop request served");
                        assert_eq!(row.len(), CLASSES);
                        lats.push(t.elapsed_ns() / 1_000);
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            lat_us.extend(h.join().expect("client thread"));
        }
    });
    let wall_secs = sw.elapsed_secs();
    let mean_batch = mean_batch_size();
    drop(svc);
    lat_us.sort_unstable();
    ClosedRow {
        model,
        max_batch: cfg.max_batch,
        shards: cfg.shards,
        clients,
        posts: clients * per_client,
        wall_secs,
        lat_us,
        mean_batch,
    }
}

struct BurstRow {
    model: &'static str,
    max_batch: usize,
    shards: usize,
    posts: usize,
    trials: usize,
    wall_secs: f64,
    retries: usize,
    mean_batch: f64,
}

impl BurstRow {
    fn posts_per_sec(&self) -> f64 {
        self.posts as f64 / self.wall_secs.max(1e-12)
    }
}

/// One saturation trial: keep exactly `queue_cap` requests in flight —
/// submit until the window is full, then retire the oldest ticket
/// before admitting the next post. The submitter only ever blocks on a
/// ticket whose reply the pool owes it (a condvar wait the shard
/// thread ends with one wake per *batch*, since every ticket behind
/// the oldest is already resolved when it wakes), never on admission
/// itself, so the elapsed wall time measures the service's capacity
/// rather than backpressure spin. Latency under saturation is
/// queue-depth-bound by construction; the closed- and open-loop
/// drivers own the latency story.
fn burst(variant: &MlpVariant, cfg: ServeConfig, n: usize, posts: &[Vec<f32>]) -> BurstRow {
    mhd_obs::reset();
    let model = variant.label();
    let svc = Service::start(Arc::new(variant.clone()), cfg);
    let mut retries = 0usize;
    let mut window: std::collections::VecDeque<Ticket> =
        std::collections::VecDeque::with_capacity(cfg.queue_cap);
    let sw = Stopwatch::start();
    for i in 0..n {
        if window.len() == cfg.queue_cap {
            if let Some(oldest) = window.pop_front() {
                let _ = oldest.wait();
            }
        }
        loop {
            match svc.submit(posts[i % posts.len()].clone()) {
                Ok(ticket) => {
                    window.push_back(ticket);
                    break;
                }
                Err(_) => {
                    // Unreachable while in-flight <= queue_cap, but keep
                    // the admission contract honest: retire a ticket and
                    // retry rather than assuming the queue has room.
                    retries += 1;
                    if let Some(oldest) = window.pop_front() {
                        let _ = oldest.wait();
                    }
                }
            }
        }
    }
    for ticket in window {
        let _ = ticket.wait();
    }
    let wall_secs = sw.elapsed_secs();
    let mean_batch = mean_batch_size();
    drop(svc);
    BurstRow {
        model,
        max_batch: cfg.max_batch,
        shards: cfg.shards,
        posts: n,
        trials: 1,
        wall_secs,
        retries,
        mean_batch,
    }
}

struct OpenRow {
    pattern: &'static str,
    model: &'static str,
    offered_per_sec: f64,
    accepted: usize,
    rejected: usize,
    wall_secs: f64,
    lat_us: Vec<u64>,
    mean_batch: f64,
}

impl OpenRow {
    fn served_per_sec(&self) -> f64 {
        self.accepted as f64 / self.wall_secs.max(1e-12)
    }
}

/// Open-loop drive: submissions follow the seeded arrival schedule
/// whether or not earlier requests have completed; `QueueFull`
/// rejections are counted, not retried (the backpressure contract).
fn open_loop(
    variant: &MlpVariant,
    cfg: ServeConfig,
    spec: &TrafficSpec,
    posts: &[Vec<f32>],
) -> OpenRow {
    mhd_obs::reset();
    let model = variant.label();
    let offsets = arrival_offsets_ns(spec);
    let svc = Service::start(Arc::new(variant.clone()), cfg);
    const COLLECTORS: usize = 4;
    let mut senders: Vec<mpsc::Sender<(Ticket, Stopwatch)>> = Vec::with_capacity(COLLECTORS);
    let mut rejected = 0usize;
    let mut accepted = 0usize;
    let mut lat_us: Vec<u64> = Vec::with_capacity(offsets.len());
    let sw = Stopwatch::start();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..COLLECTORS)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<(Ticket, Stopwatch)>();
                senders.push(tx);
                s.spawn(move || {
                    let mut lats = Vec::new();
                    while let Ok((ticket, t)) = rx.recv() {
                        if ticket.wait().is_ok() {
                            lats.push(t.elapsed_ns() / 1_000);
                        }
                    }
                    lats
                })
            })
            .collect();
        for (i, off) in offsets.iter().enumerate() {
            let elapsed = sw.elapsed_ns();
            if *off > elapsed + 1_000 {
                std::thread::sleep(Duration::from_nanos(*off - elapsed));
            }
            let post = posts[i % posts.len()].clone();
            match svc.submit(post) {
                Ok(ticket) => {
                    accepted += 1;
                    let _ = senders[i % COLLECTORS].send((ticket, Stopwatch::start()));
                }
                Err(_) => rejected += 1,
            }
        }
        senders.clear();
        for h in handles {
            lat_us.extend(h.join().expect("collector thread"));
        }
    });
    let wall_secs = sw.elapsed_secs();
    let mean_batch = mean_batch_size();
    drop(svc);
    let sim_secs = offsets.last().copied().unwrap_or(0) as f64 / 1e9;
    lat_us.sort_unstable();
    OpenRow {
        pattern: spec.pattern.name(),
        model,
        offered_per_sec: offsets.len() as f64 / sim_secs.max(1e-12),
        accepted,
        rejected,
        wall_secs,
        lat_us,
        mean_batch,
    }
}

struct OverheadRow {
    on_posts_per_sec: f64,
    off_posts_per_sec: f64,
    trials: usize,
}

impl OverheadRow {
    fn ratio(&self) -> f64 {
        self.on_posts_per_sec / self.off_posts_per_sec.max(1e-12)
    }
}

/// The telemetry tax: int8 micro-batched capacity with the sink fully
/// on (every-request latency recording plus the live exporter polling)
/// vs the sink disabled. On/off trials interleave round by round so
/// frequency and scheduler drift hit both sides alike; each side
/// reports its best round (the same min-time estimator as `capacity`).
fn telemetry_overhead(
    zoo: &ModelZoo,
    shards: usize,
    n: usize,
    posts: &[Vec<f32>],
    trials: usize,
) -> OverheadRow {
    let cfg = ServeConfig {
        max_batch: 32,
        max_wait_us: MAX_WAIT_US,
        queue_cap: QUEUE_CAP,
        shards,
        ..ServeConfig::default()
    };
    let prefix = std::env::temp_dir()
        .join(format!("mhd_serve_overhead_{}", std::process::id()))
        .display()
        .to_string();
    let variant = zoo.variant(Precision::Int8);
    let (mut best_on, mut best_off) = (0.0f64, 0.0f64);
    for _ in 0..trials {
        mhd_obs::disable();
        best_off = best_off.max(burst(&variant, cfg, n, posts).posts_per_sec());
        mhd_obs::enable();
        let poller = start_telemetry(&prefix);
        best_on = best_on.max(burst(&variant, cfg, n, posts).posts_per_sec());
        finish_telemetry(poller);
    }
    mhd_obs::enable();
    for suffix in [".series.jsonl", ".prom", ".journal.jsonl"] {
        let _ = std::fs::remove_file(format!("{prefix}{suffix}"));
    }
    OverheadRow { on_posts_per_sec: best_on, off_posts_per_sec: best_off, trials }
}

/// Hex render of a probability row's IEEE bits: exact, diffable, and
/// platform-stable — the digest currency of the chaos byte-identity
/// checks.
fn row_bits(row: &[f32]) -> String {
    let mut s = String::with_capacity(row.len() * 8);
    for v in row {
        s.push_str(&format!("{:08x}", v.to_bits()));
    }
    s
}

/// Stable status tag for one request outcome.
fn status_tag(e: &ServeError) -> &'static str {
    match e {
        ServeError::QueueFull { .. } => "queue_full",
        ServeError::ShuttingDown => "shutting_down",
        ServeError::Disconnected => "disconnected",
        ServeError::ShardFailed { .. } => "shard_failed",
        ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
    }
}

/// Drive one chaos phase: serialized submit→wait over the stream (so
/// request `k` is operation `k` and digests are reproducible), every
/// outcome appended to the digest as `phase,idx,status,row-bits`.
fn chaos_phase<M: BatchModel<Input = Vec<f32>>>(
    model: Arc<M>,
    cfg: ServeConfig,
    posts: &[Vec<f32>],
    phase: &str,
    digest: &mut String,
) -> (usize, usize) {
    let svc = Service::start(model, cfg);
    let (mut ok, mut failed) = (0usize, 0usize);
    for (i, post) in posts.iter().enumerate() {
        match svc.predict(post.clone()) {
            Ok(row) => {
                ok += 1;
                digest.push_str(&format!("{phase},{i},ok,{}\n", row_bits(&row)));
            }
            Err(e) => {
                failed += 1;
                digest.push_str(&format!("{phase},{i},{},\n", status_tag(&e)));
            }
        }
    }
    drop(svc); // clean drain is part of the contract under every scenario
    (ok, failed)
}

/// Chaos / plain-digest mode. `scenario: Some(_)` wraps the serving
/// stack in the seeded fault plane; `None` (the `--digest` form) runs
/// the exact same drivers unwrapped, so a `zero_fault` chaos digest
/// can be byte-diffed against it to prove the injection seams are true
/// pass-throughs.
fn run_chaos(opts: &Options, shards: usize) {
    let scenario = opts.chaos;
    let seed = opts.chaos_seed;
    // Injected panics are the chaos plane's crash model and always
    // caught by supervision; silence their backtraces so the output
    // stays readable while genuine panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected model panic"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    let n = if opts.smoke { 192 } else { 384 };
    let injector = Arc::new(FaultInjector::new(match scenario {
        Some(sc) => FaultPlan::new(sc, seed),
        None => FaultPlan::zero(),
    }));
    let tag = scenario.map(|s| s.name()).unwrap_or("plain");

    let mlp = Mlp::new(DIM, 64, CLASSES, 1e-3, SEED);
    let zoo_path = std::env::temp_dir()
        .join(format!("mhd_serve_chaos_zoo_{}_{tag}.ckpt", std::process::id()));
    ModelZoo::write(&mlp, &zoo_path).expect("write serving zoo");
    // The zoo load itself goes through the checkpoint fault seam with
    // seeded retry — transient injected read faults are ridden out.
    let policy = RetryPolicy { max_attempts: 64, base_us: 50, max_us: 5_000, seed };
    let zoo = match ModelZoo::load_resilient(&zoo_path, &injector, &policy) {
        Ok(z) => z,
        Err(e) => {
            let _ = std::fs::remove_file(&zoo_path);
            eprintln!("chaos: zoo load failed after retries: {e}");
            std::process::exit(1);
        }
    };
    let posts = synthetic_posts(n, DIM, SEED ^ 1);
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_us: MAX_WAIT_US,
        queue_cap: QUEUE_CAP,
        shards,
        deadline_us: 2_000_000,
        max_restarts: 64,
        ..ServeConfig::default()
    };

    // The exporter is pure side channel: digests stay byte-identical
    // with it on or off (CI pins this).
    let poller = opts.telemetry.as_deref().map(|prefix| {
        mhd_obs::progress(
            "serve_bench",
            &format!("telemetry exporter on: {prefix}.series.jsonl, .prom, .journal.jsonl"),
        );
        start_telemetry(prefix)
    });

    let mut digest = String::new();
    let (ok1, failed1, ok2, failed2) = if scenario.is_some() {
        // Phase 1 — supervised: injected panics are caught by the shard
        // supervisor; victims get typed ShardFailed, the shard restarts.
        let supervised =
            FaultyModel::new(Arc::new(zoo.variant(Precision::Int8)), Arc::clone(&injector));
        let (ok1, failed1) =
            chaos_phase(Arc::new(supervised), cfg, &posts, "supervised", &mut digest);
        // Phase 2 — degraded: the same faulty primary behind the f32
        // fallback; panics downgrade to full-precision answers instead
        // of burning restart budget.
        let degraded = FallbackModel::new(
            FaultyModel::new(Arc::new(zoo.variant(Precision::Int8)), Arc::clone(&injector)),
            zoo.variant(Precision::F32),
        );
        let (ok2, failed2) = chaos_phase(Arc::new(degraded), cfg, &posts, "degraded", &mut digest);
        (ok1, failed1, ok2, failed2)
    } else {
        // `--digest` control: the exact same two-phase drive with the
        // fault plane entirely absent. A zero-fault `--chaos` digest
        // must byte-equal this, proving the seams are pass-throughs.
        let (ok1, failed1) = chaos_phase(
            Arc::new(zoo.variant(Precision::Int8)),
            cfg,
            &posts,
            "supervised",
            &mut digest,
        );
        let (ok2, failed2) = chaos_phase(
            Arc::new(zoo.variant(Precision::Int8)),
            cfg,
            &posts,
            "degraded",
            &mut digest,
        );
        (ok1, failed1, ok2, failed2)
    };
    let _ = std::fs::remove_file(&zoo_path);
    if let Some(p) = poller {
        finish_telemetry(p);
    }

    mhd_obs::progress(
        "serve_bench",
        &format!(
            "chaos {tag} seed {seed} shards {shards}: supervised {ok1} ok / {failed1} failed, \
             degraded {ok2} ok / {failed2} failed"
        ),
    );
    // Invariant: every request resolved one way or the other.
    assert_eq!(ok1 + failed1 + ok2 + failed2, 2 * n, "requests lost without a typed outcome");

    let out = if scenario.is_some() {
        opts.chaos_out.clone()
    } else {
        opts.digest.clone().unwrap_or_else(|| "SERVE_digest.csv".to_string())
    };
    if let Err(e) = std::fs::write(&out, &digest) {
        eprintln!("error: cannot write digest {out}: {e}");
        std::process::exit(1);
    }
    mhd_obs::progress("serve_bench", &format!("wrote digest {out} ({} requests)", 2 * n));

    if let Some(path) = &opts.trace {
        let header = mhd_obs::RunHeader {
            tool: "serve_bench".to_string(),
            git: mhd_obs::manifest::git_describe(),
            seed,
            scale: 1.0,
            jobs: rayon::current_num_threads(),
        };
        let mut artifacts: BTreeMap<String, u64> = BTreeMap::new();
        artifacts.insert("chaos/supervised_ok".to_string(), ok1 as u64);
        artifacts.insert("chaos/supervised_failed".to_string(), failed1 as u64);
        artifacts.insert("chaos/degraded_ok".to_string(), ok2 as u64);
        artifacts.insert("chaos/degraded_failed".to_string(), failed2 as u64);
        let manifest = mhd_obs::render_manifest(&header, &artifacts);
        if let Err(e) = std::fs::write(path, &manifest) {
            eprintln!("error: cannot write trace manifest {path}: {e}");
            std::process::exit(1);
        }
        mhd_obs::progress("serve_bench", &format!("wrote trace manifest {path}"));
    }
}

fn render_json(
    smoke: bool,
    zoo: &ModelZoo,
    capacity: &[BurstRow],
    closed: &[ClosedRow],
    open: &[OpenRow],
    speedup: f64,
    overhead: &OverheadRow,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"worker_threads\": {},\n", rayon::current_num_threads()));
    s.push_str(&format!(
        "  \"zoo\": {{\"load_secs\": {:.6}, \"bytes\": {}, \"loader\": \"Checkpoint::map\"}},\n",
        zoo.load_ns() as f64 / 1e9,
        zoo.size_bytes()
    ));
    s.push_str("  \"capacity\": [\n");
    for (i, r) in capacity.iter().enumerate() {
        let comma = if i + 1 < capacity.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"max_batch\": {}, \"shards\": {}, \"posts\": {}, \
             \"posts_per_sec\": {:.1}, \"mean_batch\": {:.2}, \"queue_full_retries\": {}, \
             \"trials\": {}}}{comma}\n",
            r.model,
            r.max_batch,
            r.shards,
            r.posts,
            r.posts_per_sec(),
            r.mean_batch,
            r.retries,
            r.trials,
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"closed_loop\": [\n");
    for (i, r) in closed.iter().enumerate() {
        let comma = if i + 1 < closed.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"max_batch\": {}, \"shards\": {}, \"clients\": {}, \
             \"posts\": {}, \"posts_per_sec\": {:.1}, \"mean_batch\": {:.2}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{comma}\n",
            r.model,
            r.max_batch,
            r.shards,
            r.clients,
            r.posts,
            r.posts_per_sec(),
            r.mean_batch,
            percentile(&r.lat_us, 50.0),
            percentile(&r.lat_us, 95.0),
            percentile(&r.lat_us, 99.0),
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"microbatch_speedup\": {{\"int8_micro_vs_f32_single\": {speedup:.2}}},\n"
    ));
    s.push_str(&format!(
        "  \"telemetry_overhead\": {{\"model\": \"mlp_int8\", \"max_batch\": 32, \
         \"on_posts_per_sec\": {:.1}, \"off_posts_per_sec\": {:.1}, \"ratio\": {:.3}, \
         \"trials\": {}}},\n",
        overhead.on_posts_per_sec,
        overhead.off_posts_per_sec,
        overhead.ratio(),
        overhead.trials,
    ));
    s.push_str("  \"open_loop\": [\n");
    for (i, r) in open.iter().enumerate() {
        let comma = if i + 1 < open.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"model\": \"{}\", \"offered_per_sec\": {:.1}, \
             \"accepted\": {}, \"rejected\": {}, \"served_per_sec\": {:.1}, \
             \"mean_batch\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{comma}\n",
            r.pattern,
            r.model,
            r.offered_per_sec,
            r.accepted,
            r.rejected,
            r.served_per_sec(),
            r.mean_batch,
            percentile(&r.lat_us, 50.0),
            percentile(&r.lat_us, 95.0),
            percentile(&r.lat_us, 99.0),
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: serve_bench [--smoke] [--out <path>] [--jobs <n>] \
                 [--trace <path>] [--check-bench <path>] [--chaos <scenario>] \
                 [--chaos-seed <n>] [--chaos-out <path>] [--digest <path>] \
                 [--telemetry <prefix>]"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &opts.check_bench {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("check-bench: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let problems = check_bench_file(&contents);
        if problems.is_empty() {
            println!("check-bench: {path} ok ({SCHEMA}, full run, all sections present)");
            return;
        }
        for p in &problems {
            eprintln!("check-bench: {path}: {p}");
        }
        std::process::exit(1);
    }
    let jobs = resolve_jobs(opts.jobs);
    if let Some(n) = jobs {
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("error: cannot configure the worker pool for --jobs {n}: {e}");
            std::process::exit(2);
        }
    }
    mhd_obs::enable();
    let shards = jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .clamp(1, 8);
    if opts.chaos.is_some() || opts.digest.is_some() {
        run_chaos(&opts, shards);
        return;
    }
    let poller = opts.telemetry.as_deref().map(|prefix| {
        mhd_obs::progress(
            "serve_bench",
            &format!("telemetry exporter on: {prefix}.series.jsonl, .prom, .journal.jsonl"),
        );
        start_telemetry(prefix)
    });
    let (clients, per_client, burst_n, open_n, open_rate) =
        if opts.smoke { (4, 40, 2_000, 400, 20_000.0) } else { (32, 1_000, 24_000, 40_000, 150_000.0) };

    // Train-free seeded weights: serving cost does not depend on the
    // loss surface, and a fixed seed keeps the zoo byte-stable.
    let mlp = Mlp::new(DIM, 64, CLASSES, 1e-3, SEED);
    let zoo_path = std::env::temp_dir().join("mhd_serve_bench_zoo.ckpt");
    ModelZoo::write(&mlp, &zoo_path).expect("write serving zoo");
    let zoo = ModelZoo::load(&zoo_path).expect("map serving zoo");
    mhd_obs::progress(
        "serve_bench",
        &format!(
            "zoo mapped in {:.2} ms ({} bytes, one buffer for {} shards)",
            zoo.load_ns() as f64 / 1e6,
            zoo.size_bytes(),
            shards
        ),
    );
    let posts = synthetic_posts(4096, DIM, SEED ^ 1);

    // Capacity runs in many short interleaved rounds — every round
    // measures all four scenarios back to back, and each reported row
    // is its scenario's best round. Saturation capacity is the rate
    // the service *can* sustain; scheduler and frequency noise on a
    // shared 1-core box only ever subtracts throughput, so the best
    // round is the estimator (the min-time principle), and the
    // headline speedup is the quotient of the reported best rows —
    // the JSON's own numbers divide to the claim.
    let trials = if opts.smoke { 1 } else { 15 };
    let scenarios =
        [(Precision::F32, 1usize), (Precision::F32, 32), (Precision::Int8, 1), (Precision::Int8, 32)];
    let mut best: Vec<Option<BurstRow>> = scenarios.iter().map(|_| None).collect();
    for _round in 0..trials {
        for (si, (precision, max_batch)) in scenarios.iter().enumerate() {
            let cfg = ServeConfig {
                max_batch: *max_batch,
                max_wait_us: MAX_WAIT_US,
                queue_cap: QUEUE_CAP,
                shards,
                ..ServeConfig::default()
            };
            let variant = zoo.variant(*precision);
            let row = burst(&variant, cfg, burst_n, &posts);
            let better = best
                .get(si)
                .and_then(Option::as_ref)
                .is_none_or(|b| row.posts_per_sec() > b.posts_per_sec());
            if better {
                if let Some(slot) = best.get_mut(si) {
                    *slot = Some(row);
                }
            }
        }
    }
    let capacity: Vec<BurstRow> = best
        .into_iter()
        .flatten()
        .map(|mut r| {
            r.trials = trials;
            r
        })
        .collect();
    for row in &capacity {
        mhd_obs::progress(
            "serve_bench",
            &format!(
                "  capacity {} max_batch={}: {:.0} posts/s (mean batch {:.1}, {} backpressure retries, best of {})",
                row.model,
                row.max_batch,
                row.posts_per_sec(),
                row.mean_batch,
                row.retries,
                row.trials
            ),
        );
    }
    // int8 micro-batched (last scenario) over f32 batch-1 (first).
    let speedup = capacity.last().map_or(0.0, BurstRow::posts_per_sec)
        / capacity.first().map_or(f64::INFINITY, BurstRow::posts_per_sec);
    mhd_obs::progress(
        "serve_bench",
        &format!("  micro-batched int8 vs batch-1 f32: {speedup:.2}x capacity (best of {trials} rounds)"),
    );

    let mut closed = Vec::new();
    for precision in [Precision::F32, Precision::Int8] {
        for max_batch in [1usize, 32] {
            let cfg = ServeConfig {
                max_batch,
                max_wait_us: MAX_WAIT_US,
                queue_cap: QUEUE_CAP,
                shards,
                ..ServeConfig::default()
            };
            let variant = zoo.variant(precision);
            let row = closed_loop(&variant, cfg, clients, per_client, &posts);
            mhd_obs::progress(
                "serve_bench",
                &format!(
                    "  closed {} max_batch={}: {:.0} posts/s, p50 {} us, p99 {} us (mean batch {:.1})",
                    row.model,
                    row.max_batch,
                    row.posts_per_sec(),
                    percentile(&row.lat_us, 50.0),
                    percentile(&row.lat_us, 99.0),
                    row.mean_batch
                ),
            );
            closed.push(row);
        }
    }

    let mut open = Vec::new();
    for pattern in [ArrivalPattern::Steady, ArrivalPattern::Bursty, ArrivalPattern::Diurnal] {
        let spec = TrafficSpec { pattern, rate_per_sec: open_rate, n: open_n, seed: SEED ^ 2 };
        let cfg = ServeConfig {
            max_batch: 32,
            max_wait_us: MAX_WAIT_US,
            queue_cap: QUEUE_CAP,
            shards,
            ..ServeConfig::default()
        };
        let variant = zoo.variant(Precision::Int8);
        let row = open_loop(&variant, cfg, &spec, &posts);
        mhd_obs::progress(
            "serve_bench",
            &format!(
                "  open {} @{:.0}/s: {} served, {} rejected, p99 {} us",
                row.pattern,
                row.offered_per_sec,
                row.accepted,
                row.rejected,
                percentile(&row.lat_us, 99.0),
            ),
        );
        open.push(row);
    }

    let overhead = telemetry_overhead(&zoo, shards, burst_n, &posts, trials);
    mhd_obs::progress(
        "serve_bench",
        &format!(
            "  telemetry tax: {:.0} posts/s on vs {:.0} posts/s off (ratio {:.3}, best of {trials})",
            overhead.on_posts_per_sec,
            overhead.off_posts_per_sec,
            overhead.ratio()
        ),
    );
    let _ = std::fs::remove_file(&zoo_path);
    if let Some(p) = poller {
        finish_telemetry(p);
    }

    let json = render_json(opts.smoke, &zoo, &capacity, &closed, &open, speedup, &overhead);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    mhd_obs::progress("serve_bench", &format!("wrote {}", opts.out));

    if let Some(path) = &opts.trace {
        let header = mhd_obs::RunHeader {
            tool: "serve_bench".to_string(),
            git: mhd_obs::manifest::git_describe(),
            seed: SEED,
            scale: 1.0,
            jobs: rayon::current_num_threads(),
        };
        let mut artifacts: BTreeMap<String, u64> = BTreeMap::new();
        for r in &capacity {
            artifacts.insert(format!("capacity/{}/b{}", r.model, r.max_batch), r.posts as u64);
        }
        for r in &closed {
            artifacts.insert(format!("closed/{}/b{}", r.model, r.max_batch), r.posts as u64);
        }
        for r in &open {
            artifacts.insert(format!("open/{}", r.pattern), r.accepted as u64);
        }
        let manifest = mhd_obs::render_manifest(&header, &artifacts);
        if let Err(e) = std::fs::write(path, &manifest) {
            eprintln!("error: cannot write trace manifest {path}: {e}");
            std::process::exit(1);
        }
        mhd_obs::progress("serve_bench", &format!("wrote trace manifest {path}"));
    }
}
