#![forbid(unsafe_code)]
//! Offline renderer for the live-telemetry artifacts `serve_bench
//! --telemetry <prefix>` writes.
//!
//! ```text
//! telemetry report <prefix>            # incident timeline + series digest
//! telemetry report --journal <path>    # timeline from one journal file
//! telemetry report --series <path>     # digest of one JSONL time series
//! ```
//!
//! `report` turns the event journal back into the human-readable
//! incident timeline (the same renderer the tests pin) and summarises
//! the windowed time series: windows closed, events seen, and the SLO
//! burn of the worst window. Everything here is read-only over files
//! already on disk; nothing touches the live sink.

use mhd_obs::{parse_journal_line, render_timeline, Event};

struct Options {
    journal: Option<String>,
    series: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("report") => {}
        Some(other) => return Err(format!("unknown command: {other}")),
        None => return Err("missing command (expected `report`)".to_string()),
    }
    let mut opts = Options { journal: None, series: None };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--journal" => {
                opts.journal = Some(it.next().ok_or("--journal needs a path")?.clone());
            }
            "--series" => {
                opts.series = Some(it.next().ok_or("--series needs a path")?.clone());
            }
            prefix if !prefix.starts_with('-') => {
                opts.journal = Some(format!("{prefix}.journal.jsonl"));
                opts.series = Some(format!("{prefix}.series.jsonl"));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.journal.is_none() && opts.series.is_none() {
        return Err("report needs a <prefix>, --journal, or --series".to_string());
    }
    Ok(opts)
}

/// Pull a numeric `"key":123` / `"key":1.25` field out of a JSONL row.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = line.get(line.find(&tag)? + tag.len()..)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest.get(..end)?.trim().parse().ok()
}

fn report_series(path: &str, contents: &str) {
    let rows: Vec<&str> = contents.lines().filter(|l| !l.trim().is_empty()).collect();
    println!("== telemetry series: {path} ({} windows) ==", rows.len());
    let mut events = 0.0;
    let mut worst: Option<(u64, f64)> = None;
    for row in &rows {
        events += num_field(row, "events").unwrap_or(0.0);
        let burn = num_field(row, "latency_burn")
            .unwrap_or(0.0)
            .max(num_field(row, "availability_burn").unwrap_or(0.0));
        let window = num_field(row, "window").unwrap_or(0.0) as u64;
        if worst.is_none_or(|(_, b)| burn > b) {
            worst = Some((window, burn));
        }
    }
    println!("  journal events streamed      {events:>10}");
    if let Some((window, burn)) = worst {
        println!("  worst window SLO burn        {burn:>10.3}  (window {window})");
        if burn > 1.0 {
            println!("  !! error budget burning faster than the objective allows");
        }
    }
    if let Some(last) = rows.last() {
        let t_s = num_field(last, "t_us").unwrap_or(0.0) / 1e6;
        println!("  last window closed at        {t_s:>10.3}s");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: telemetry report <prefix> | --journal <path> | --series <path>");
            std::process::exit(2);
        }
    };
    if let Some(path) = &opts.series {
        match std::fs::read_to_string(path) {
            Ok(contents) => report_series(path, &contents),
            Err(e) => {
                // A prefix without a series file is fine when --journal
                // was derived from the same prefix; only an explicit
                // --series that cannot be read is fatal.
                if opts.journal.is_none() {
                    eprintln!("error: cannot read series {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if let Some(path) = &opts.journal {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot read journal {path}: {e}");
                std::process::exit(1);
            }
        };
        let events: Vec<Event> = contents.lines().filter_map(parse_journal_line).collect();
        print!("{}", render_timeline(&events));
    }
}
