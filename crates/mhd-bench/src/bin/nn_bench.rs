#![forbid(unsafe_code)]
//! Measure the batched GEMM training paths and emit `BENCH_nn.json`.
//!
//! ```text
//! nn_bench                         # full run, writes BENCH_nn.json in cwd
//! nn_bench --out path.json         # write elsewhere
//! nn_bench --smoke                 # tiny sizes, 1 rep (CI liveness check)
//! nn_bench --jobs 4                # cap the worker pool
//! ```
//!
//! Reports three things per the kernel layer's acceptance criteria:
//! GEMM throughput in GFLOP/s for the hot shapes, one-epoch wall-clock
//! for the batched vs per-example reference path of each model family,
//! and the implied posts/sec + speedup — plus, from the always-on mhd-obs
//! sink, cumulative per-kernel call counts and wall-clock. Timing never
//! feeds tables: `BENCH_nn.json` is a side artifact, and all clock reads go
//! through `mhd_obs::time::Stopwatch` (lint rule R5).

use mhd_bench::resolve_jobs;
use mhd_nn::encoder::{Encoder, EncoderConfig};
use mhd_nn::gemm::{gemm_nt, gemm_tn};
use mhd_nn::{LoraAdapter, Mlp};
use mhd_obs::time::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mini-batch size used by every training loop in the workspace.
const BATCH: usize = 32;
const EMBED: usize = 48;
const HIDDEN: usize = 64;

struct Options {
    out: String,
    smoke: bool,
    jobs: Option<usize>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options { out: "BENCH_nn.json".to_string(), smoke: false, jobs: None };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = it.next().ok_or("--out needs a path")?.clone();
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a count")?;
                opts.jobs = Some(v.parse().map_err(|_| format!("bad --jobs value: {v}"))?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0f32)).collect()
}

/// Best-of-`reps` wall-clock for `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Stopwatch::start();
        f();
        best = best.min(t.elapsed_secs());
    }
    best
}

struct GemmRow {
    kernel: &'static str,
    shape: String,
    gflops: f64,
}

struct ModelRow {
    model: &'static str,
    examples: usize,
    batched_secs: f64,
    reference_secs: f64,
}

impl ModelRow {
    fn speedup(&self) -> f64 {
        self.reference_secs / self.batched_secs.max(1e-12)
    }
    fn posts_per_sec(&self) -> f64 {
        self.examples as f64 / self.batched_secs.max(1e-12)
    }
}

fn bench_gemm(reps: usize, inner: usize) -> Vec<GemmRow> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut rows = Vec::new();
    // Head forward: pooled batch through the hidden layer.
    let (m, k, n) = (BATCH, EMBED, HIDDEN);
    let a = randv(&mut rng, m * k);
    let w = randv(&mut rng, n * k);
    let bias = randv(&mut rng, n);
    let mut out = vec![0.0f32; m * n];
    let secs = time_best(reps, || {
        for _ in 0..inner {
            gemm_nt(&a, &w, Some(&bias), m, k, n, &mut out);
        }
    });
    let flops = (2 * m * k * n * inner) as f64;
    rows.push(GemmRow { kernel: "gemm_nt", shape: format!("{m}x{k}x{n}"), gflops: flops / secs / 1e9 });

    // Attention weight gradient: a full batch of max_len token rows.
    let tokens = if inner > 1 { BATCH * 128 } else { BATCH * 8 };
    let dz = randv(&mut rng, tokens * EMBED);
    let e = randv(&mut rng, tokens * EMBED);
    let mut grad = vec![0.0f32; EMBED * EMBED];
    let secs = time_best(reps, || {
        for _ in 0..inner {
            gemm_tn(&dz, &e, tokens, EMBED, EMBED, &mut grad, false);
        }
    });
    let flops = (2 * tokens * EMBED * EMBED * inner) as f64;
    rows.push(GemmRow {
        kernel: "gemm_tn",
        shape: format!("{tokens}x{EMBED}x{EMBED}"),
        gflops: flops / secs / 1e9,
    });
    rows
}

/// One epoch = the example set in `BATCH`-sized minibatches, once.
fn epoch<X, F: FnMut(&[X], &[usize]) -> f32>(xs: &[X], ys: &[usize], mut step: F) {
    for (cx, cy) in xs.chunks(BATCH).zip(ys.chunks(BATCH)) {
        step(cx, cy);
    }
}

fn bench_models(reps: usize, examples: usize) -> Vec<ModelRow> {
    let mut rng = StdRng::seed_from_u64(22);
    let mut rows = Vec::new();

    // Encoder: the fine-tune hot path. Synthetic docs near the corpus'
    // post length so the epoch cost is representative of scale 1.0.
    let docs: Vec<Vec<u32>> = (0..examples)
        .map(|_| {
            let len = rng.gen_range(20..100);
            (0..len).map(|_| rng.gen_range(0..8192u32)).collect()
        })
        .collect();
    let ys: Vec<usize> = (0..examples).map(|i| i % 9).collect();
    let cfg = EncoderConfig {
        vocab_size: 8192,
        embed_dim: EMBED,
        hidden_dim: HIDDEN,
        n_classes: 9,
        max_len: 128,
        lr: 1e-3,
        seed: 2,
    };
    let mut enc = Encoder::new(cfg);
    let batched = time_best(reps, || epoch(&docs, &ys, |cx, cy| enc.train_batch(cx, cy)));
    let mut enc_ref = Encoder::new(cfg);
    let reference = time_best(reps, || epoch(&docs, &ys, |cx, cy| enc_ref.train_batch_reference(cx, cy)));
    rows.push(ModelRow { model: "encoder", examples, batched_secs: batched, reference_secs: reference });

    // Mlp over hashed sparse features densified to 178 dims (T2's mlp input width).
    let xs: Vec<Vec<f32>> = (0..examples).map(|_| randv(&mut rng, 178)).collect();
    let mut mlp = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    let batched = time_best(reps, || epoch(&xs, &ys, |cx, cy| mlp.train_batch(cx, cy)));
    let mut mlp_ref = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    let reference = time_best(reps, || epoch(&xs, &ys, |cx, cy| mlp_ref.train_batch_reference(cx, cy)));
    rows.push(ModelRow { model: "mlp", examples, batched_secs: batched, reference_secs: reference });

    // LoRA adapter over the same feature width.
    let base = randv(&mut rng, 9 * 178);
    let bias = randv(&mut rng, 9);
    let mut lora = LoraAdapter::new(base.clone(), bias.clone(), 9, 178, 8, 1e-3, 3);
    let batched = time_best(reps, || epoch(&xs, &ys, |cx, cy| lora.train_batch(cx, cy)));
    let mut lora_ref = LoraAdapter::new(base, bias, 9, 178, 8, 1e-3, 3);
    let reference = time_best(reps, || epoch(&xs, &ys, |cx, cy| lora_ref.train_batch_reference(cx, cy)));
    rows.push(ModelRow { model: "lora", examples, batched_secs: batched, reference_secs: reference });

    rows
}

fn render_json(smoke: bool, gemm: &[GemmRow], models: &[ModelRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"mhd-bench/nn/v2\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"worker_threads\": {},\n", rayon::current_num_threads()));
    s.push_str("  \"gemm\": [\n");
    for (i, g) in gemm.iter().enumerate() {
        let comma = if i + 1 < gemm.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"gflops\": {:.3}}}{comma}\n",
            g.kernel, g.shape, g.gflops
        ));
    }
    s.push_str("  ],\n");
    // Per-kernel breakdown from the mhd-obs sink: cumulative calls and
    // wall-clock recorded inside the instrumented kernels while the model
    // epochs above ran (the sink is enabled in main).
    s.push_str("  \"kernels\": [\n");
    let kernels = mhd_obs::kernels_snapshot();
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"calls\": {}, \"total_ns\": {}}}{comma}\n",
            k.name, k.calls, k.total_ns
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"models\": [\n");
    for (i, m) in models.iter().enumerate() {
        let comma = if i + 1 < models.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"examples\": {}, \"epoch_batched_secs\": {:.6}, \
             \"epoch_reference_secs\": {:.6}, \"posts_per_sec\": {:.1}, \"speedup\": {:.2}}}{comma}\n",
            m.model,
            m.examples,
            m.batched_secs,
            m.reference_secs,
            m.posts_per_sec(),
            m.speedup()
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: nn_bench [--smoke] [--out <path>] [--jobs <n>]");
            std::process::exit(2);
        }
    };
    if let Some(n) = resolve_jobs(opts.jobs) {
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("error: cannot configure the worker pool for --jobs {n}: {e}");
            std::process::exit(2);
        }
    }
    // nn_bench always traces: BENCH_nn.json is a side artifact, so the
    // per-kernel breakdown costs nothing deterministic.
    mhd_obs::enable();
    let (reps, inner, examples) = if opts.smoke { (1, 1, 64) } else { (3, 200, 2000) };
    mhd_obs::progress("nn_bench", "GEMM kernels…");
    let gemm = bench_gemm(reps, inner);
    for g in &gemm {
        mhd_obs::progress("nn_bench", &format!("  {} {}: {:.2} GFLOP/s", g.kernel, g.shape, g.gflops));
    }
    mhd_obs::progress(
        "nn_bench",
        &format!("one-epoch wall-clock, batched vs reference ({examples} examples)…"),
    );
    let models = bench_models(reps, examples);
    for m in &models {
        mhd_obs::progress(
            "nn_bench",
            &format!(
                "  {}: {:.3}s batched vs {:.3}s reference ({:.2}x, {:.0} posts/s)",
                m.model,
                m.batched_secs,
                m.reference_secs,
                m.speedup(),
                m.posts_per_sec()
            ),
        );
    }
    let json = render_json(opts.smoke, &gemm, &models);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    mhd_obs::progress("nn_bench", &format!("wrote {}", opts.out));
}
