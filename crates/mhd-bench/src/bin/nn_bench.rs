#![forbid(unsafe_code)]
//! Measure the batched GEMM training paths and emit `BENCH_nn.json`.
//!
//! ```text
//! nn_bench                         # full run, writes BENCH_nn.json in cwd
//! nn_bench --out path.json         # write elsewhere
//! nn_bench --smoke                 # tiny sizes, 1 rep (CI liveness check)
//! nn_bench --jobs 4                # cap the worker pool
//! nn_bench --check-bench <path>    # validate a committed BENCH_nn.json
//! ```
//!
//! Reports, per the kernel layer's acceptance criteria: GEMM throughput
//! in GFLOP/s (giga-ops/s for the int8 kernel) for the hot shapes,
//! one-epoch wall-clock for the batched vs per-example reference path of
//! each model family, micro-batched serving throughput for f32 vs int8
//! inference, and checkpoint save/load wall-clock against the retraining
//! it replaces — plus, from the always-on mhd-obs sink, cumulative
//! per-kernel call counts and wall-clock. Timing never feeds tables:
//! `BENCH_nn.json` is a side artifact, and all clock reads go through
//! `mhd_obs::time::Stopwatch` (lint rule R5).
//!
//! `--check-bench` is the CI freshness gate: it validates that the
//! committed file carries the current schema version, was produced by a
//! full (non-smoke) run, and contains every required section, so a schema
//! bump cannot land without regenerating the committed numbers.

use mhd_bench::resolve_jobs;
use mhd_nn::checkpoint::{Checkpoint, Writer};
use mhd_nn::encoder::{Encoder, EncoderConfig};
use mhd_nn::gemm::{gemm_nt, gemm_tn};
use mhd_nn::quant::{quantize_rows_i16, QuantizedLinear};
use mhd_nn::{LoraAdapter, Mlp};
use mhd_obs::time::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mini-batch size used by every training loop in the workspace.
const BATCH: usize = 32;
const EMBED: usize = 48;
const HIDDEN: usize = 64;

/// Schema tag written to (and required from) `BENCH_nn.json`.
const SCHEMA: &str = "mhd-bench/nn/v3";

struct Options {
    out: String,
    smoke: bool,
    jobs: Option<usize>,
    check_bench: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_nn.json".to_string(),
        smoke: false,
        jobs: None,
        check_bench: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = it.next().ok_or("--out needs a path")?.clone();
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a count")?;
                opts.jobs = Some(v.parse().map_err(|_| format!("bad --jobs value: {v}"))?);
            }
            "--check-bench" => {
                opts.check_bench =
                    Some(it.next().ok_or("--check-bench needs a path")?.clone());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// Validate a committed `BENCH_nn.json`: current schema, produced by a
/// full run, all sections present. Returns the list of problems (empty =
/// pass). String checks suffice — the file is machine-written by this
/// binary, so key formatting is stable.
fn check_bench_file(contents: &str) -> Vec<String> {
    let mut problems = Vec::new();
    if !contents.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!(
            "schema is not {SCHEMA}: regenerate with `cargo run --release -p mhd-bench --bin nn_bench`"
        ));
    }
    if !contents.contains("\"smoke\": false") {
        problems.push("committed bench must come from a full run, not --smoke".to_string());
    }
    for section in ["\"gemm\":", "\"kernels\":", "\"models\":", "\"quant\":", "\"checkpoint\":"] {
        if !contents.contains(section) {
            problems.push(format!("missing section {section}"));
        }
    }
    for row in ["gemm_nt_i8", "mlp_infer", "encoder_infer", "load_speedup"] {
        if !contents.contains(row) {
            problems.push(format!("missing entry {row}"));
        }
    }
    problems
}

fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0f32)).collect()
}

/// Best-of-`reps` wall-clock for `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Stopwatch::start();
        f();
        best = best.min(t.elapsed_secs());
    }
    best
}

struct GemmRow {
    kernel: &'static str,
    shape: String,
    gflops: f64,
}

struct ModelRow {
    model: &'static str,
    examples: usize,
    batched_secs: f64,
    reference_secs: f64,
}

impl ModelRow {
    fn speedup(&self) -> f64 {
        self.reference_secs / self.batched_secs.max(1e-12)
    }
    fn posts_per_sec(&self) -> f64 {
        self.examples as f64 / self.batched_secs.max(1e-12)
    }
}

fn bench_gemm(reps: usize, inner: usize) -> Vec<GemmRow> {
    let mut rng = StdRng::seed_from_u64(11);
    let mut rows = Vec::new();
    // Head forward: pooled batch through the hidden layer.
    let (m, k, n) = (BATCH, EMBED, HIDDEN);
    let a = randv(&mut rng, m * k);
    let w = randv(&mut rng, n * k);
    let bias = randv(&mut rng, n);
    let mut out = vec![0.0f32; m * n];
    let secs = time_best(reps, || {
        for _ in 0..inner {
            gemm_nt(&a, &w, Some(&bias), m, k, n, &mut out);
        }
    });
    let flops = (2 * m * k * n * inner) as f64;
    rows.push(GemmRow { kernel: "gemm_nt", shape: format!("{m}x{k}x{n}"), gflops: flops / secs / 1e9 });

    // Attention weight gradient: a full batch of max_len token rows.
    let tokens = if inner > 1 { BATCH * 128 } else { BATCH * 8 };
    let dz = randv(&mut rng, tokens * EMBED);
    let e = randv(&mut rng, tokens * EMBED);
    let mut grad = vec![0.0f32; EMBED * EMBED];
    let secs = time_best(reps, || {
        for _ in 0..inner {
            gemm_tn(&dz, &e, tokens, EMBED, EMBED, &mut grad, false);
        }
    });
    let flops = (2 * tokens * EMBED * EMBED * inner) as f64;
    rows.push(GemmRow {
        kernel: "gemm_tn",
        shape: format!("{tokens}x{EMBED}x{EMBED}"),
        gflops: flops / secs / 1e9,
    });

    // Int8 head forward, same shape as the f32 gemm_nt row. Weights are
    // prepacked once (the quantize-at-fit cost), activations prequantized;
    // the figure is giga integer multiply-adds per second. The i32
    // accumulation is associative, so unlike the bit-exact f32 chains the
    // compiler is free to vectorize the reduction.
    let (m, k, n) = (BATCH, EMBED, HIDDEN);
    let a = randv(&mut rng, m * k);
    let w = randv(&mut rng, n * k);
    let bias = randv(&mut rng, n);
    let ql = QuantizedLinear::from_f32(&w, &bias, n, k);
    let mut aq = Vec::new();
    let mut a_scales = Vec::new();
    quantize_rows_i16(&a, m, k, &mut aq, &mut a_scales);
    let mut out = vec![0.0f32; m * n];
    let secs = time_best(reps, || {
        for _ in 0..inner {
            ql.forward(&aq, &a_scales, m, true, &mut out);
        }
    });
    let ops = (2 * m * k * n * inner) as f64;
    rows.push(GemmRow {
        kernel: "gemm_nt_i8",
        shape: format!("{m}x{k}x{n}"),
        gflops: ops / secs / 1e9,
    });
    rows
}

struct QuantRow {
    model: &'static str,
    examples: usize,
    batch: usize,
    f32_secs: f64,
    int8_secs: f64,
}

impl QuantRow {
    fn speedup(&self) -> f64 {
        self.f32_secs / self.int8_secs.max(1e-12)
    }
    fn f32_posts_per_sec(&self) -> f64 {
        self.examples as f64 / self.f32_secs.max(1e-12)
    }
    fn int8_posts_per_sec(&self) -> f64 {
        self.examples as f64 / self.int8_secs.max(1e-12)
    }
}

/// Micro-batched serving throughput, f32 vs int8, on the shapes the
/// detector layer actually serves: `predict_proba_batch` in `BATCH`-sized
/// chunks (an evaluation sweep scores one split slice per call, so per-call
/// overheads — notably the f32 path's per-call weight pack — are a real
/// fraction of the work).
fn bench_quant(reps: usize, examples: usize) -> Vec<QuantRow> {
    let mut rng = StdRng::seed_from_u64(33);
    let mut rows = Vec::new();

    // MLP over the T2 dense feature width, at the low-latency serving
    // micro-batch (8) and the evaluation-sweep batch (BATCH). The f32
    // path repacks and reallocates its weight panel on every call, so
    // its throughput degrades as batches shrink; the quantized path's
    // weights are packed once at build time and its per-call cost is
    // the (vectorized) activation quantize, so the int8 advantage is
    // largest exactly where serving latency matters most.
    let xs: Vec<Vec<f32>> = (0..examples).map(|_| randv(&mut rng, 178)).collect();
    let mlp = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    let qmlp = mlp.quantize();
    for batch in [8, BATCH] {
        let f32_secs = time_best(reps, || {
            for c in xs.chunks(batch) {
                let _ = mlp.predict_proba_batch(c);
            }
        });
        let int8_secs = time_best(reps, || {
            for c in xs.chunks(batch) {
                let _ = qmlp.predict_proba_batch(c);
            }
        });
        rows.push(QuantRow { model: "mlp_infer", examples, batch, f32_secs, int8_secs });
    }

    // Encoder on synthetic docs near corpus post length.
    let docs: Vec<Vec<u32>> = (0..examples)
        .map(|_| {
            let len = rng.gen_range(20..100);
            (0..len).map(|_| rng.gen_range(0..8192u32)).collect()
        })
        .collect();
    let cfg = EncoderConfig {
        vocab_size: 8192,
        embed_dim: EMBED,
        hidden_dim: HIDDEN,
        n_classes: 9,
        max_len: 128,
        lr: 1e-3,
        seed: 4,
    };
    let enc = Encoder::new(cfg);
    let qenc = enc.quantize();
    let f32_secs = time_best(reps, || {
        for c in docs.chunks(BATCH) {
            let _ = enc.predict_proba_batch(c);
        }
    });
    let int8_secs = time_best(reps, || {
        for c in docs.chunks(BATCH) {
            let _ = qenc.predict_proba_batch(c);
        }
    });
    rows.push(QuantRow { model: "encoder_infer", examples, batch: BATCH, f32_secs, int8_secs });

    rows
}

struct CheckpointStats {
    save_secs: f64,
    load_secs: f64,
    retrain_secs: f64,
    bytes: usize,
}

impl CheckpointStats {
    fn load_speedup(&self) -> f64 {
        self.retrain_secs / self.load_secs.max(1e-12)
    }
}

/// Save/load wall-clock for a model zoo (encoder + mlp + lora + the
/// quantized encoder) against the retraining a load replaces. The retrain
/// figure is the actual wall-clock of producing the zoo's weights here
/// (a few epochs per family) — deliberately conservative: real training
/// runs many more epochs with early stopping.
fn bench_checkpoint(reps: usize, examples: usize, epochs: usize) -> CheckpointStats {
    let mut rng = StdRng::seed_from_u64(44);
    let docs: Vec<Vec<u32>> = (0..examples)
        .map(|_| {
            let len = rng.gen_range(20..100);
            (0..len).map(|_| rng.gen_range(0..8192u32)).collect()
        })
        .collect();
    let ys: Vec<usize> = (0..examples).map(|i| i % 9).collect();
    let xs: Vec<Vec<f32>> = (0..examples).map(|_| randv(&mut rng, 178)).collect();

    let cfg = EncoderConfig {
        vocab_size: 8192,
        embed_dim: EMBED,
        hidden_dim: HIDDEN,
        n_classes: 9,
        max_len: 128,
        lr: 1e-3,
        seed: 6,
    };
    let mut enc = Encoder::new(cfg);
    let mut mlp = Mlp::new(178, HIDDEN, 9, 1e-3, 7);
    let base = randv(&mut rng, 9 * 178);
    let bias = randv(&mut rng, 9);
    let mut lora = LoraAdapter::new(base, bias, 9, 178, 8, 1e-3, 8);
    let t = Stopwatch::start();
    for _ in 0..epochs.max(1) {
        epoch(&docs, &ys, |cx, cy| enc.train_batch(cx, cy));
        epoch(&xs, &ys, |cx, cy| mlp.train_batch(cx, cy));
        epoch(&xs, &ys, |cx, cy| lora.train_batch(cx, cy));
    }
    let retrain_secs = t.elapsed_secs();

    let write_zoo = || {
        let mut w = Writer::new();
        enc.write_checkpoint("enc", &mut w);
        mlp.write_checkpoint("mlp", &mut w);
        lora.write_checkpoint("lora", &mut w);
        enc.quantize().write_checkpoint("qenc", &mut w);
        w
    };
    let path = std::env::temp_dir().join("mhd_nn_bench_zoo.ckpt");
    let save_secs = time_best(reps, || {
        write_zoo().save(&path).expect("save bench zoo");
    });
    let bytes = std::fs::metadata(&path).map(|m| m.len() as usize).unwrap_or(0);
    let load_secs = time_best(reps, || {
        let ck = Checkpoint::load(&path).expect("load bench zoo");
        let _enc = Encoder::from_checkpoint(&ck, "enc").expect("enc");
        let _mlp = Mlp::from_checkpoint(&ck, "mlp").expect("mlp");
        let _lora = LoraAdapter::from_checkpoint(&ck, "lora").expect("lora");
        let _qenc =
            mhd_nn::QuantizedEncoder::from_checkpoint(&ck, "qenc").expect("qenc");
    });
    let _ = std::fs::remove_file(&path);
    CheckpointStats { save_secs, load_secs, retrain_secs, bytes }
}

/// One epoch = the example set in `BATCH`-sized minibatches, once.
fn epoch<X, F: FnMut(&[X], &[usize]) -> f32>(xs: &[X], ys: &[usize], mut step: F) {
    for (cx, cy) in xs.chunks(BATCH).zip(ys.chunks(BATCH)) {
        step(cx, cy);
    }
}

fn bench_models(reps: usize, examples: usize) -> Vec<ModelRow> {
    let mut rng = StdRng::seed_from_u64(22);
    let mut rows = Vec::new();

    // Encoder: the fine-tune hot path. Synthetic docs near the corpus'
    // post length so the epoch cost is representative of scale 1.0.
    let docs: Vec<Vec<u32>> = (0..examples)
        .map(|_| {
            let len = rng.gen_range(20..100);
            (0..len).map(|_| rng.gen_range(0..8192u32)).collect()
        })
        .collect();
    let ys: Vec<usize> = (0..examples).map(|i| i % 9).collect();
    let cfg = EncoderConfig {
        vocab_size: 8192,
        embed_dim: EMBED,
        hidden_dim: HIDDEN,
        n_classes: 9,
        max_len: 128,
        lr: 1e-3,
        seed: 2,
    };
    let mut enc = Encoder::new(cfg);
    let batched = time_best(reps, || epoch(&docs, &ys, |cx, cy| enc.train_batch(cx, cy)));
    let mut enc_ref = Encoder::new(cfg);
    let reference = time_best(reps, || epoch(&docs, &ys, |cx, cy| enc_ref.train_batch_reference(cx, cy)));
    rows.push(ModelRow { model: "encoder", examples, batched_secs: batched, reference_secs: reference });

    // Mlp over hashed sparse features densified to 178 dims (T2's mlp input width).
    let xs: Vec<Vec<f32>> = (0..examples).map(|_| randv(&mut rng, 178)).collect();
    let mut mlp = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    let batched = time_best(reps, || epoch(&xs, &ys, |cx, cy| mlp.train_batch(cx, cy)));
    let mut mlp_ref = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    let reference = time_best(reps, || epoch(&xs, &ys, |cx, cy| mlp_ref.train_batch_reference(cx, cy)));
    rows.push(ModelRow { model: "mlp", examples, batched_secs: batched, reference_secs: reference });

    // LoRA adapter over the same feature width.
    let base = randv(&mut rng, 9 * 178);
    let bias = randv(&mut rng, 9);
    let mut lora = LoraAdapter::new(base.clone(), bias.clone(), 9, 178, 8, 1e-3, 3);
    let batched = time_best(reps, || epoch(&xs, &ys, |cx, cy| lora.train_batch(cx, cy)));
    let mut lora_ref = LoraAdapter::new(base, bias, 9, 178, 8, 1e-3, 3);
    let reference = time_best(reps, || epoch(&xs, &ys, |cx, cy| lora_ref.train_batch_reference(cx, cy)));
    rows.push(ModelRow { model: "lora", examples, batched_secs: batched, reference_secs: reference });

    rows
}

fn render_json(
    smoke: bool,
    gemm: &[GemmRow],
    models: &[ModelRow],
    quant: &[QuantRow],
    ckpt: &CheckpointStats,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"worker_threads\": {},\n", rayon::current_num_threads()));
    s.push_str("  \"gemm\": [\n");
    for (i, g) in gemm.iter().enumerate() {
        let comma = if i + 1 < gemm.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"gflops\": {:.3}}}{comma}\n",
            g.kernel, g.shape, g.gflops
        ));
    }
    s.push_str("  ],\n");
    // Per-kernel breakdown from the mhd-obs sink: cumulative calls and
    // wall-clock recorded inside the instrumented kernels while the model
    // epochs above ran (the sink is enabled in main).
    s.push_str("  \"kernels\": [\n");
    let kernels = mhd_obs::kernels_snapshot();
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"calls\": {}, \"total_ns\": {}}}{comma}\n",
            k.name, k.calls, k.total_ns
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"models\": [\n");
    for (i, m) in models.iter().enumerate() {
        let comma = if i + 1 < models.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"examples\": {}, \"epoch_batched_secs\": {:.6}, \
             \"epoch_reference_secs\": {:.6}, \"posts_per_sec\": {:.1}, \"speedup\": {:.2}}}{comma}\n",
            m.model,
            m.examples,
            m.batched_secs,
            m.reference_secs,
            m.posts_per_sec(),
            m.speedup()
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"quant\": [\n");
    for (i, q) in quant.iter().enumerate() {
        let comma = if i + 1 < quant.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"examples\": {}, \"batch\": {}, \"f32_secs\": {:.6}, \
             \"int8_secs\": {:.6}, \"f32_posts_per_sec\": {:.1}, \
             \"int8_posts_per_sec\": {:.1}, \"speedup\": {:.2}}}{comma}\n",
            q.model,
            q.examples,
            q.batch,
            q.f32_secs,
            q.int8_secs,
            q.f32_posts_per_sec(),
            q.int8_posts_per_sec(),
            q.speedup()
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"checkpoint\": {{\"save_secs\": {:.6}, \"load_secs\": {:.6}, \
         \"retrain_secs\": {:.6}, \"bytes\": {}, \"load_speedup\": {:.1}}}\n",
        ckpt.save_secs,
        ckpt.load_secs,
        ckpt.retrain_secs,
        ckpt.bytes,
        ckpt.load_speedup()
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: nn_bench [--smoke] [--out <path>] [--jobs <n>] [--check-bench <path>]"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &opts.check_bench {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("check-bench: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let problems = check_bench_file(&contents);
        if problems.is_empty() {
            println!("check-bench: {path} ok ({SCHEMA}, full run, all sections present)");
            return;
        }
        for p in &problems {
            eprintln!("check-bench: {path}: {p}");
        }
        std::process::exit(1);
    }
    if let Some(n) = resolve_jobs(opts.jobs) {
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("error: cannot configure the worker pool for --jobs {n}: {e}");
            std::process::exit(2);
        }
    }
    // nn_bench always traces: BENCH_nn.json is a side artifact, so the
    // per-kernel breakdown costs nothing deterministic.
    mhd_obs::enable();
    let (reps, inner, examples) = if opts.smoke { (1, 1, 64) } else { (3, 200, 2000) };
    mhd_obs::progress("nn_bench", "GEMM kernels…");
    let gemm = bench_gemm(reps, inner);
    for g in &gemm {
        mhd_obs::progress("nn_bench", &format!("  {} {}: {:.2} GFLOP/s", g.kernel, g.shape, g.gflops));
    }
    mhd_obs::progress(
        "nn_bench",
        &format!("one-epoch wall-clock, batched vs reference ({examples} examples)…"),
    );
    let models = bench_models(reps, examples);
    for m in &models {
        mhd_obs::progress(
            "nn_bench",
            &format!(
                "  {}: {:.3}s batched vs {:.3}s reference ({:.2}x, {:.0} posts/s)",
                m.model,
                m.batched_secs,
                m.reference_secs,
                m.speedup(),
                m.posts_per_sec()
            ),
        );
    }
    mhd_obs::progress(
        "nn_bench",
        &format!("micro-batched serving, f32 vs int8 ({examples} examples)…"),
    );
    let quant = bench_quant(reps, examples);
    for q in &quant {
        mhd_obs::progress(
            "nn_bench",
            &format!(
                "  {} (batch {}): {:.0} f32 posts/s vs {:.0} int8 posts/s ({:.2}x)",
                q.model,
                q.batch,
                q.f32_posts_per_sec(),
                q.int8_posts_per_sec(),
                q.speedup()
            ),
        );
    }
    mhd_obs::progress("nn_bench", "checkpoint zoo save/load vs retrain…");
    let ckpt_epochs = if opts.smoke { 1 } else { 3 };
    let ckpt = bench_checkpoint(reps, examples, ckpt_epochs);
    mhd_obs::progress(
        "nn_bench",
        &format!(
            "  save {:.4}s, load {:.4}s, retrain {:.2}s ({:.0}x faster than retraining, {} bytes)",
            ckpt.save_secs,
            ckpt.load_secs,
            ckpt.retrain_secs,
            ckpt.load_speedup(),
            ckpt.bytes
        ),
    );
    let json = render_json(opts.smoke, &gemm, &models, &quant, &ckpt);
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    mhd_obs::progress("nn_bench", &format!("wrote {}", opts.out));
}
