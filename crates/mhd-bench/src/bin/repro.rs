#![forbid(unsafe_code)]
//! Regenerate the survey's tables and figures.
//!
//! ```text
//! repro --all                      # every table and figure, full size
//! repro --table t2 --scale 0.25    # main results on quarter-size datasets
//! repro --figure f1 --csv          # scale curve as CSV
//! repro --table t2 --jobs 4        # cap the worker pool at 4 threads
//! ```
//!
//! Worker count: `--jobs N` wins, then the `MHD_JOBS` environment
//! variable, then all cores. Output is byte-identical at any job count.

use mhd_bench::{parse_args, resolve_jobs};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: repro (--table <t1..t6|a1..a6> | --figure <f1..f5> | --all)... \
                 [--scale <f64>] [--seed <u64>] [--jobs <n>] [--csv]"
            );
            std::process::exit(2);
        }
    };
    if options.list {
        for a in mhd_core::report::Artifact::ALL {
            println!("{}", a.name());
        }
        return;
    }
    if let Some(n) = resolve_jobs(options.jobs) {
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("error: cannot configure the worker pool for --jobs {n}: {e}");
            std::process::exit(2);
        }
    }
    let started = Instant::now();
    let mut total_rows = 0usize;
    for artifact in &options.artifacts {
        eprintln!("[repro] generating {} (scale {})…", artifact.name(), options.config.scale);
        let table = artifact.generate(&options.config);
        total_rows += table.n_rows();
        if options.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.to_markdown());
        }
        println!();
    }
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "[repro] {} artifact(s), {} rows in {:.2}s ({:.1} rows/s, {} worker threads)",
        options.artifacts.len(),
        total_rows,
        elapsed,
        total_rows as f64 / elapsed.max(1e-9),
        rayon::current_num_threads(),
    );
}
