//! Regenerate the survey's tables and figures.
//!
//! ```text
//! repro --all                      # every table and figure, full size
//! repro --table t2 --scale 0.25    # main results on quarter-size datasets
//! repro --figure f1 --csv          # scale curve as CSV
//! ```

use mhd_bench::parse_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: repro (--table <t1..t6|a1..a6> | --figure <f1..f5> | --all)... \
                 [--scale <f64>] [--seed <u64>] [--csv]"
            );
            std::process::exit(2);
        }
    };
    if options.list {
        for a in mhd_core::report::Artifact::ALL {
            println!("{}", a.name());
        }
        return;
    }
    for artifact in &options.artifacts {
        eprintln!("[repro] generating {} (scale {})…", artifact.name(), options.config.scale);
        let table = artifact.generate(&options.config);
        if options.csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.to_markdown());
        }
        println!();
    }
}
