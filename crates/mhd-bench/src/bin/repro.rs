#![forbid(unsafe_code)]
//! Regenerate the survey's tables and figures.
//!
//! ```text
//! repro --all                      # every table and figure, full size
//! repro --table t2 --scale 0.25    # main results on quarter-size datasets
//! repro --figure f1 --csv          # scale curve as CSV
//! repro --table t2 --jobs 4        # cap the worker pool at 4 threads
//! repro --all --trace m.json       # also emit a RUN_MANIFEST trace
//! repro --all --trace-summary      # print a span/metric summary on stderr
//! repro --check-report reports/benchmark_report.md   # CI freshness check
//! ```
//!
//! Worker count: `--jobs N` wins, then the `MHD_JOBS` environment
//! variable, then all cores. Output is byte-identical at any job count,
//! with or without tracing: wall-clock flows only into the manifest and
//! summary side channels, never into a table. `MHD_TRACE=1` is the
//! environment-variable form of `--trace RUN_MANIFEST.json`. All progress
//! lines go through the `mhd-obs` console sink (stderr); `--quiet`
//! silences them.

use mhd_bench::{parse_args, resolve_jobs};
use mhd_obs::time::Stopwatch;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: repro (--table <t1..t6|a1..a9> | --figure <f1..f5> | --all)... \
                 [--scale <f64>] [--seed <u64>] [--jobs <n>] [--precision f32|int8] \
                 [--csv] [--trace <path>] [--trace-summary] [--quiet] \
                 [--check-report <path>]"
            );
            std::process::exit(2);
        }
    };
    if options.list {
        for a in mhd_core::report::Artifact::ALL {
            println!("{}", a.name());
        }
        return;
    }
    mhd_obs::set_quiet(options.quiet);
    if let Some(n) = resolve_jobs(options.jobs) {
        if let Err(e) = rayon::ThreadPoolBuilder::new().num_threads(n).build_global() {
            eprintln!("error: cannot configure the worker pool for --jobs {n}: {e}");
            std::process::exit(2);
        }
    }
    let trace_path = options.trace.clone().or_else(|| {
        std::env::var("MHD_TRACE")
            .ok()
            .filter(|v| v == "1")
            .map(|_| "RUN_MANIFEST.json".to_string())
    });
    let tracing = trace_path.is_some() || options.trace_summary;
    if tracing {
        mhd_obs::enable();
    }

    let started = Stopwatch::start();
    let mut artifact_rows: BTreeMap<String, u64> = BTreeMap::new();
    let mut rendered = String::new();
    {
        let _root = mhd_obs::span("repro");
        for artifact in &options.artifacts {
            mhd_obs::progress(
                "repro",
                &format!("generating {} (scale {})…", artifact.name(), options.config.scale),
            );
            let table = artifact.generate(&options.config);
            artifact_rows.insert(artifact.name().to_string(), table.n_rows() as u64);
            rendered.push_str(&if options.csv { table.to_csv() } else { table.to_markdown() });
            rendered.push('\n');
        }
    }

    let mut exit_code = 0;
    match &options.check_report {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(committed) if committed == rendered => {
                mhd_obs::progress("repro", &format!("{path} is up to date with HEAD"));
            }
            Ok(_) => {
                eprintln!(
                    "error: {path} is stale: committed bytes differ from freshly generated \
                     output (regenerate with `repro --all > {path}`)"
                );
                exit_code = 1;
            }
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                exit_code = 2;
            }
        },
        None => print!("{rendered}"),
    }

    if tracing {
        let header = mhd_obs::RunHeader {
            tool: "repro".to_string(),
            git: mhd_obs::manifest::git_describe(),
            seed: options.config.seed,
            scale: options.config.scale,
            jobs: rayon::current_num_threads(),
        };
        if let Some(path) = &trace_path {
            let manifest = mhd_obs::render_manifest(&header, &artifact_rows);
            if let Err(e) = std::fs::write(path, &manifest) {
                eprintln!("error: cannot write trace manifest {path}: {e}");
                std::process::exit(1);
            }
            mhd_obs::progress("repro", &format!("wrote trace manifest {path}"));
        }
        if options.trace_summary {
            // Explicitly requested output: bypasses --quiet by design.
            eprint!("{}", mhd_obs::render_summary(&header));
        }
    }

    let total_rows: u64 = artifact_rows.values().sum();
    let elapsed = started.elapsed_secs();
    mhd_obs::progress(
        "repro",
        &format!(
            "{} artifact(s), {} rows in {:.2}s ({:.1} rows/s, {} worker threads)",
            options.artifacts.len(),
            total_rows,
            elapsed,
            total_rows as f64 / elapsed.max(1e-9),
            rayon::current_num_threads(),
        ),
    );
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
