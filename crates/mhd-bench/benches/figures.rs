//! End-to-end timing of each figure's series generation (reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use mhd_core::experiments::{
    f1_scale_curve, f2_fewshot_sweep, f3_calibration, f4_confusion, f5_finetune_curve,
    ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig { seed: 42, scale: 0.06, pretrain_seed: 1234, ..Default::default() }
}

fn bench_f1(c: &mut Criterion) {
    c.bench_function("figure_f1_scale_curve", |b| b.iter(|| f1_scale_curve(&cfg())));
}

fn bench_f2(c: &mut Criterion) {
    c.bench_function("figure_f2_fewshot_sweep", |b| b.iter(|| f2_fewshot_sweep(&cfg())));
}

fn bench_f3(c: &mut Criterion) {
    c.bench_function("figure_f3_calibration", |b| b.iter(|| f3_calibration(&cfg())));
}

fn bench_f4(c: &mut Criterion) {
    c.bench_function("figure_f4_confusion", |b| b.iter(|| f4_confusion(&cfg())));
}

fn bench_f5(c: &mut Criterion) {
    c.bench_function("figure_f5_finetune_curve", |b| b.iter(|| f5_finetune_curve(&cfg())));
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_f1, bench_f2, bench_f3, bench_f4, bench_f5
}
criterion_main!(figures);
