//! End-to-end timing of each table's generation (reduced dataset scale —
//! the full-size artifacts come from the `repro` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use mhd_core::experiments::{
    t1_dataset_stats, t3_prompting, t5_robustness, t6_cost, ExperimentConfig,
};
use mhd_core::methods::{make_detector, ClassicalKind, MethodSpec, SharedClient};
use mhd_core::pipeline::evaluate;
use mhd_corpus::dataset::Split;
use mhd_corpus::DatasetId;
use mhd_prompts::Strategy;

fn cfg() -> ExperimentConfig {
    ExperimentConfig { seed: 42, scale: 0.06, pretrain_seed: 1234, ..Default::default() }
}

fn bench_t1(c: &mut Criterion) {
    c.bench_function("table_t1_dataset_stats", |b| b.iter(|| t1_dataset_stats(&cfg())));
}

/// T2 is the heaviest table; bench a representative slice — one classical,
/// one LLM and one fine-tune on one dataset each.
fn bench_t2_slice(c: &mut Criterion) {
    let config = cfg();
    c.bench_function("table_t2_slice_logreg", |b| {
        b.iter(|| {
            let dataset = config.dataset(DatasetId::DreadditS);
            let client = SharedClient::new(config.pretrain_seed);
            let mut det =
                make_detector(&MethodSpec::Classical(ClassicalKind::LogReg), &client);
            evaluate(det.as_mut(), &dataset, Split::Test)
        })
    });
    c.bench_function("table_t2_slice_gpt4_zeroshot", |b| {
        b.iter(|| {
            let dataset = config.dataset(DatasetId::SdcnlS);
            let client = SharedClient::new(config.pretrain_seed);
            let spec =
                MethodSpec::Llm { model: "sim-gpt-4".into(), strategy: Strategy::ZeroShot };
            let mut det = make_detector(&spec, &client);
            evaluate(det.as_mut(), &dataset, Split::Test)
        })
    });
    c.bench_function("table_t2_slice_finetune", |b| {
        b.iter(|| {
            let dataset = config.dataset(DatasetId::SdcnlS);
            let client = SharedClient::new(config.pretrain_seed);
            let spec = MethodSpec::FineTuned { base: "sim-llama-7b".into(), max_train: Some(60) };
            let mut det = make_detector(&spec, &client);
            evaluate(det.as_mut(), &dataset, Split::Test)
        })
    });
}

fn bench_t3(c: &mut Criterion) {
    c.bench_function("table_t3_prompting", |b| b.iter(|| t3_prompting(&cfg())));
}

fn bench_t5(c: &mut Criterion) {
    c.bench_function("table_t5_robustness", |b| b.iter(|| t5_robustness(&cfg())));
}

fn bench_t6(c: &mut Criterion) {
    c.bench_function("table_t6_cost", |b| b.iter(|| t6_cost(&cfg())));
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_t1, bench_t2_slice, bench_t3, bench_t5, bench_t6
}
criterion_main!(tables);
