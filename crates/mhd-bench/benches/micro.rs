//! Substrate micro-benchmarks: the hot paths every experiment exercises.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhd_corpus::generator::{Generator, PostSpec};
use mhd_corpus::taxonomy::Disorder;
use mhd_llm::client::{ChatRequest, LlmClient};
use mhd_models::{LogisticRegression, NaiveBayes, TextClassifier};
use mhd_text::lexicon::Lexicon;
use mhd_text::tfidf::{TfidfConfig, TfidfVectorizer};
use mhd_text::tokenize::{tokenize, words};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLE_POST: &str =
    "i don't usually post here but i need to get this out. i feel so hopeless all the time. \
     i haven't slept properly in 4 days. my friend doesn't understand what i'm going through. \
     the bus was late again this morning. everything just feels empty lately.";

fn corpus(n: usize) -> Vec<String> {
    let g = Generator::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let d = if i % 2 == 0 { Disorder::Depression } else { Disorder::Control };
        out.push(g.generate(&PostSpec::simple(d), &mut rng));
    }
    out
}

fn bench_text(c: &mut Criterion) {
    c.bench_function("tokenize_post", |b| b.iter(|| tokenize(black_box(SAMPLE_POST))));
    let lex = Lexicon::standard();
    let toks = words(SAMPLE_POST);
    c.bench_function("lexicon_profile", |b| b.iter(|| lex.profile(black_box(&toks))));
    let docs = corpus(200);
    c.bench_function("tfidf_fit_200_docs", |b| {
        b.iter(|| TfidfVectorizer::fit(black_box(&docs), TfidfConfig::default()))
    });
    let v = TfidfVectorizer::fit(&docs, TfidfConfig::default());
    c.bench_function("tfidf_transform", |b| b.iter(|| v.transform(black_box(SAMPLE_POST))));
    // Per-doc loop vs the batched CSR path over the same corpus — the
    // inference fast path behind predict_proba_batch.
    c.bench_function("tfidf_transform_200_per_doc", |b| {
        b.iter(|| {
            docs.iter().map(|d| v.transform(black_box(d))).collect::<Vec<_>>()
        })
    });
    c.bench_function("tfidf_transform_200_batched_csr", |b| {
        b.iter(|| v.transform_csr(black_box(&docs)))
    });
    let xs = v.transform_csr(&docs);
    let weights = vec![vec![0.01; v.n_features()]; 2];
    let bias = vec![0.0; 2];
    c.bench_function("csr_par_linear_scores_200x2", |b| {
        b.iter(|| xs.par_linear_scores(black_box(&weights), black_box(&bias)))
    });
}

fn bench_generation(c: &mut Criterion) {
    let g = Generator::new();
    c.bench_function("generate_post", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = PostSpec::simple(Disorder::Depression);
        b.iter(|| g.generate(black_box(&spec), &mut rng))
    });
}

fn bench_llm(c: &mut Criterion) {
    let client = LlmClient::new(1234);
    c.bench_function("llm_zero_shot_query_uncached", |b| {
        let mut i: u64 = 0;
        b.iter(|| {
            // Vary the prompt so the response cache never hits.
            i += 1;
            let req = ChatRequest::new(
                "sim-gpt-4",
                format!(
                    "Classify.\nOptions: control, depression\nPost: {SAMPLE_POST} v{i}\nAnswer:"
                ),
            );
            client.complete(black_box(&req)).expect("ok")
        })
    });
    c.bench_function("llm_query_cached", |b| {
        let req = ChatRequest::new(
            "sim-gpt-4",
            format!("Classify.\nOptions: control, depression\nPost: {SAMPLE_POST}\nAnswer:"),
        );
        client.complete(&req).expect("warm");
        b.iter(|| client.complete(black_box(&req)).expect("ok"))
    });
}

fn bench_training(c: &mut Criterion) {
    let docs = corpus(200);
    let texts: Vec<&str> = docs.iter().map(String::as_str).collect();
    let labels: Vec<usize> = (0..docs.len()).map(|i| i % 2).collect();
    c.bench_function("naive_bayes_fit_200", |b| {
        b.iter(|| {
            let mut nb = NaiveBayes::new();
            nb.fit(black_box(&texts), black_box(&labels), 2);
            nb
        })
    });
    c.bench_function("logreg_fit_200", |b| {
        b.iter(|| {
            let mut lr = LogisticRegression::new();
            lr.fit(black_box(&texts), black_box(&labels), 2);
            lr
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_text, bench_generation, bench_llm, bench_training
}
criterion_main!(micro);
