//! Micro-benchmarks for the batched GEMM kernel layer and the batched
//! training paths built on it.
//!
//! Shapes are drawn from the encoder configuration the experiments
//! actually run (`EncoderClfConfig::default`): embed 48, hidden 64,
//! batch 32, max_len 128. Each batched `train_*` bench is paired with
//! its per-example reference so the speedup is visible side by side;
//! `nn_bench` (the binary) turns the same comparison into `BENCH_nn.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhd_nn::encoder::{Encoder, EncoderConfig};
use mhd_nn::gemm::{gemm_nt, gemm_nt_relu, gemm_tn};
use mhd_nn::{LoraAdapter, Mlp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mini-batch size used by every training loop in the workspace.
const BATCH: usize = 32;
/// `EncoderClfConfig::default().embed_dim`.
const EMBED: usize = 48;
/// `EncoderClfConfig::default().hidden_dim`.
const HIDDEN: usize = 64;
/// Token rows in a full batch at `max_len` — the att_w gradient shape.
const TOKENS: usize = BATCH * 128;

fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0f32)).collect()
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    // Head forward: pooled batch (32×48) through the hidden layer (48→64).
    let a = randv(&mut rng, BATCH * EMBED);
    let w = randv(&mut rng, HIDDEN * EMBED);
    let bias = randv(&mut rng, HIDDEN);
    let mut out = vec![0.0f32; BATCH * HIDDEN];
    c.bench_function("gemm_nt 32x48x64 head fwd", |b| {
        b.iter(|| gemm_nt(black_box(&a), black_box(&w), Some(&bias), BATCH, EMBED, HIDDEN, &mut out));
    });
    let mut mask = vec![false; BATCH * HIDDEN];
    c.bench_function("gemm_nt_relu 32x48x64 fused", |b| {
        b.iter(|| {
            gemm_nt_relu(black_box(&a), black_box(&w), &bias, BATCH, EMBED, HIDDEN, &mut out, &mut mask);
        });
    });
    // Attention weight gradient: 4096 token rows reduced into 48×48 —
    // the one shape big enough to cross the kernel's parallel threshold.
    let dz = randv(&mut rng, TOKENS * EMBED);
    let e = randv(&mut rng, TOKENS * EMBED);
    let mut grad = vec![0.0f32; EMBED * EMBED];
    c.bench_function("gemm_tn 4096x48x48 att_w grad", |b| {
        b.iter(|| gemm_tn(black_box(&dz), black_box(&e), TOKENS, EMBED, EMBED, &mut grad, true));
    });
}

fn bench_mlp_train(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(22);
    let xs: Vec<Vec<f32>> = (0..BATCH).map(|_| randv(&mut rng, 178)).collect();
    let ys: Vec<usize> = (0..BATCH).map(|i| i % 9).collect();
    let mut batched = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    c.bench_function("mlp train_batch (batched)", |b| {
        b.iter(|| batched.train_batch(black_box(&xs), &ys));
    });
    let mut reference = Mlp::new(178, HIDDEN, 9, 1e-3, 1);
    c.bench_function("mlp train_batch (reference)", |b| {
        b.iter(|| reference.train_batch_reference(black_box(&xs), &ys));
    });
}

fn encoder_docs(rng: &mut StdRng) -> (Vec<Vec<u32>>, Vec<usize>) {
    let docs = (0..BATCH)
        .map(|_| (0..60).map(|_| rng.gen_range(0..8192u32)).collect())
        .collect();
    let ys = (0..BATCH).map(|i| i % 9).collect();
    (docs, ys)
}

fn encoder_cfg() -> EncoderConfig {
    EncoderConfig {
        vocab_size: 8192,
        embed_dim: EMBED,
        hidden_dim: HIDDEN,
        n_classes: 9,
        max_len: 128,
        lr: 1e-3,
        seed: 2,
    }
}

fn bench_encoder_train(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(33);
    let (docs, ys) = encoder_docs(&mut rng);
    let mut batched = Encoder::new(encoder_cfg());
    c.bench_function("encoder train_batch (batched)", |b| {
        b.iter(|| batched.train_batch(black_box(&docs), &ys));
    });
    let mut reference = Encoder::new(encoder_cfg());
    c.bench_function("encoder train_batch (reference)", |b| {
        b.iter(|| reference.train_batch_reference(black_box(&docs), &ys));
    });
    let predictor = Encoder::new(encoder_cfg());
    c.bench_function("encoder predict_proba_batch", |b| {
        b.iter(|| predictor.predict_proba_batch(black_box(&docs)));
    });
}

fn bench_lora_train(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(44);
    let xs: Vec<Vec<f32>> = (0..BATCH).map(|_| randv(&mut rng, 178)).collect();
    let ys: Vec<usize> = (0..BATCH).map(|i| i % 9).collect();
    let base = randv(&mut rng, 9 * 178);
    let bias = randv(&mut rng, 9);
    let mut batched = LoraAdapter::new(base.clone(), bias.clone(), 9, 178, 8, 1e-3, 3);
    c.bench_function("lora train_batch (batched)", |b| {
        b.iter(|| batched.train_batch(black_box(&xs), &ys));
    });
    let mut reference = LoraAdapter::new(base, bias, 9, 178, 8, 1e-3, 3);
    c.bench_function("lora train_batch (reference)", |b| {
        b.iter(|| reference.train_batch_reference(black_box(&xs), &ys));
    });
}

criterion_group!(nn, bench_gemm_kernels, bench_mlp_train, bench_encoder_train, bench_lora_train);
criterion_main!(nn);
