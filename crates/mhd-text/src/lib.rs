#![forbid(unsafe_code)]
//! # mhd-text — text processing substrate
//!
//! Foundation crate for the `mhd` mental-health disorder detection benchmark.
//! Provides every text-processing primitive the higher layers need:
//!
//! - [`tokenize`](mod@tokenize) — social-media-aware word/sentence tokenization
//! - [`normalize`] — text normalization (case folding, elongation squashing)
//! - [`stem`] — a full Porter stemmer
//! - [`stopwords`] — English stopword membership
//! - [`vocab`] — vocabulary construction with frequency cutoffs
//! - [`ngram`] — word n-gram extraction
//! - [`sparse`] — sparse vector arithmetic used by the vectorizers
//! - [`tfidf`] — TF-IDF vectorization (fit/transform)
//! - [`hashing`] — feature-hashing vectorizer (FNV-1a based)
//! - [`lexicon`] — LIWC-style affect/psycholinguistic category lexicons
//! - [`stats`] — surface text statistics (lengths, pronoun rates, …)
//! - [`bpe`] — a small byte-pair-encoding tokenizer used for LLM token
//!   accounting
//!
//! All components are deterministic and allocation-conscious; the crate has
//! no dependencies.

pub mod bpe;
pub mod hashing;
pub mod lexicon;
pub mod ngram;
pub mod normalize;
pub mod sparse;
pub mod stats;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use hashing::HashingVectorizer;
pub use lexicon::{Lexicon, LexiconCategory, LexiconProfile};
pub use sparse::SparseVec;
pub use stats::TextStats;
pub use tfidf::TfidfVectorizer;
pub use tokenize::{sentences, tokenize, Token, TokenKind};
pub use vocab::Vocabulary;
