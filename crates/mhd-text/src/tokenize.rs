//! Social-media-aware tokenization.
//!
//! The tokenizer recognizes the surface forms that dominate Reddit/Twitter
//! style text: URLs, @-mentions, #hashtags, emoticons, contractions, numbers
//! and plain words. Each token carries a [`TokenKind`] so downstream feature
//! extractors can treat them differently (e.g. the TF-IDF vectorizer keeps
//! words and hashtags but drops URLs).

/// The class of surface form a token was recognized as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An alphabetic word, possibly containing internal apostrophes
    /// (`don't`, `i'm`).
    Word,
    /// A number (`42`, `3.5`).
    Number,
    /// A URL (`https://…`, `www.…`).
    Url,
    /// An @-mention (`@someone`).
    Mention,
    /// A #hashtag (`#anxiety`).
    Hashtag,
    /// An ASCII emoticon (`:)`, `:-(`, `;_;`).
    Emoticon,
    /// Punctuation run (`!!!`, `...`).
    Punct,
}

/// A token: its normalized text plus the [`TokenKind`] it was lexed as.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Normalized token text (lowercased for words/hashtags/mentions).
    pub text: String,
    /// Surface-form class.
    pub kind: TokenKind,
}

impl Token {
    /// Construct a token.
    pub fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Token { text: text.into(), kind }
    }

    /// Whether this token should participate in lexical feature extraction.
    pub fn is_lexical(&self) -> bool {
        matches!(self.kind, TokenKind::Word | TokenKind::Hashtag | TokenKind::Emoticon)
    }
}

const EMOTICONS: &[&str] = &[
    ":)", ":-)", ":(", ":-(", ":'(", ":D", ":-D", ";)", ";-)", ":/", ":-/", ":|", ":p", ":P",
    "<3", "</3", ":o", ":O", ";_;", "T_T", "^_^", "-_-", "xD", "XD", ":c", ":C",
];

fn is_word_char(c: char) -> bool {
    c.is_alphabetic() || c == '\''
}

fn starts_url(s: &str) -> bool {
    s.starts_with("http://") || s.starts_with("https://") || s.starts_with("www.")
}

/// Tokenize `text` into a sequence of [`Token`]s.
///
/// Words, hashtags and mentions are lowercased; URLs are replaced by the
/// sentinel `<url>` so that feature spaces do not explode on unique links.
///
/// ```
/// use mhd_text::tokenize::{tokenize, TokenKind};
/// let toks = tokenize("I can't sleep :( #insomnia https://example.com");
/// assert_eq!(toks[0].text, "i");
/// assert_eq!(toks[1].text, "can't");
/// assert!(toks.iter().any(|t| t.kind == TokenKind::Emoticon));
/// assert!(toks.iter().any(|t| t.text == "#insomnia"));
/// assert!(toks.iter().any(|t| t.text == "<url>"));
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(text.len() / 5 + 4);
    // Work on whitespace-separated chunks first: URLs, mentions, hashtags and
    // emoticons are whole-chunk phenomena.
    for chunk in text.split_whitespace() {
        if starts_url(chunk) {
            tokens.push(Token::new("<url>", TokenKind::Url));
            continue;
        }
        // Exact emoticon chunks, or chunks with trailing punctuation stripped.
        let trimmed = chunk.trim_end_matches(['.', ',']);
        if EMOTICONS.contains(&trimmed) {
            tokens.push(Token::new(trimmed, TokenKind::Emoticon));
            continue;
        }
        if let Some(rest) = chunk.strip_prefix('@') {
            let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                tokens.push(Token::new(format!("@{}", name.to_lowercase()), TokenKind::Mention));
                lex_inline(&chunk[1 + name.len()..], &mut tokens);
                continue;
            }
        }
        if let Some(rest) = chunk.strip_prefix('#') {
            let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty() {
                tokens.push(Token::new(format!("#{}", name.to_lowercase()), TokenKind::Hashtag));
                lex_inline(&chunk[1 + name.len()..], &mut tokens);
                continue;
            }
        }
        lex_inline(chunk, &mut tokens);
    }
    tokens
}

/// Lex a chunk character-by-character into words / numbers / punctuation.
fn lex_inline(chunk: &str, out: &mut Vec<Token>) {
    let chars: Vec<char> = chunk.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if is_word_char(c) {
            let start = i;
            while i < chars.len() && is_word_char(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i]
                .iter()
                .collect::<String>()
                .trim_matches('\'')
                .to_lowercase();
            if !word.is_empty() {
                out.push(Token::new(word, TokenKind::Word));
            }
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == ',') {
                i += 1;
            }
            let num: String = chars[start..i].iter().collect();
            out.push(Token::new(num.trim_end_matches(['.', ',']), TokenKind::Number));
        } else if c.is_ascii_punctuation() {
            let start = i;
            while i < chars.len() && chars[i] == c {
                i += 1;
            }
            let run_len = i - start;
            // Collapse long runs ("!!!!!!" → "!!!") to bound the feature space.
            let reps = run_len.min(3);
            let punct: String = std::iter::repeat_n(c, reps).collect();
            out.push(Token::new(punct, TokenKind::Punct));
        } else {
            i += 1; // Skip anything else (unicode symbols, emoji bytes, …).
        }
    }
}

/// Split text into sentences on `.`, `!`, `?` and newlines, keeping the
/// terminator attached. Abbreviation handling is intentionally simple; the
/// synthetic corpus does not generate abbreviation-final sentences.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'.' || b == b'!' || b == b'?' || b == b'\n' {
            // Consume a run of terminators.
            let mut j = i + 1;
            while j < bytes.len() && matches!(bytes[j], b'.' | b'!' | b'?' | b'\n') {
                j += 1;
            }
            let s = text[start..j].trim();
            if !s.is_empty() {
                out.push(s);
            }
            start = j;
            i = j;
        } else {
            i += 1;
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Convenience: lexical word strings only (words, hashtags, emoticons).
pub fn words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(Token::is_lexical)
        .map(|t| t.text)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_words_lowercased() {
        let t = tokenize("Hello World");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].text, "hello");
        assert_eq!(t[1].text, "world");
        assert!(t.iter().all(|t| t.kind == TokenKind::Word));
    }

    #[test]
    fn contractions_kept_whole() {
        let t = tokenize("I can't won't don't");
        let texts: Vec<_> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["i", "can't", "won't", "don't"]);
    }

    #[test]
    fn urls_become_sentinel() {
        let t = tokenize("see https://reddit.com/r/depression now");
        assert_eq!(t[1].text, "<url>");
        assert_eq!(t[1].kind, TokenKind::Url);
    }

    #[test]
    fn www_urls_recognized() {
        let t = tokenize("www.example.com");
        assert_eq!(t[0].kind, TokenKind::Url);
    }

    #[test]
    fn mentions_and_hashtags() {
        let t = tokenize("@Friend check #MentalHealth");
        assert_eq!(t[0].text, "@friend");
        assert_eq!(t[0].kind, TokenKind::Mention);
        assert_eq!(t[2].text, "#mentalhealth");
        assert_eq!(t[2].kind, TokenKind::Hashtag);
    }

    #[test]
    fn emoticons_detected() {
        let t = tokenize("feeling sad :( today");
        assert!(t.iter().any(|t| t.kind == TokenKind::Emoticon && t.text == ":("));
    }

    #[test]
    fn emoticon_with_trailing_period() {
        let t = tokenize("it hurts :(.");
        assert!(t.iter().any(|t| t.kind == TokenKind::Emoticon));
    }

    #[test]
    fn numbers_lexed() {
        let t = tokenize("slept 3 hours");
        assert_eq!(t[1].text, "3");
        assert_eq!(t[1].kind, TokenKind::Number);
    }

    #[test]
    fn punct_runs_collapsed() {
        let t = tokenize("why!!!!!!");
        let p = t.iter().find(|t| t.kind == TokenKind::Punct).unwrap();
        assert_eq!(p.text, "!!!");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn sentences_split() {
        let s = sentences("I am tired. I cannot sleep! Why?");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], "I am tired.");
        assert_eq!(s[2], "Why?");
    }

    #[test]
    fn sentences_handle_ellipsis_and_tail() {
        let s = sentences("I tried... it failed. and then");
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], "and then");
    }

    #[test]
    fn words_filters_nonlexical() {
        let w = words("check https://x.com @me 42 !!");
        assert_eq!(w, vec!["check"]);
    }

    #[test]
    fn unicode_words_survive() {
        let t = tokenize("café naïve");
        assert_eq!(t[0].text, "café");
        assert_eq!(t[1].text, "naïve");
    }
}
