//! Text normalization helpers.
//!
//! Social-media text carries expressive noise — character elongations
//! ("soooo tired"), inconsistent case, smart quotes — that inflates feature
//! spaces. These functions fold that noise down deterministically.

/// Squash character elongations: any run of the same letter longer than
/// `max_run` is truncated to `max_run` characters.
///
/// ```
/// use mhd_text::normalize::squash_elongation;
/// assert_eq!(squash_elongation("soooo", 2), "soo");
/// assert_eq!(squash_elongation("hello", 2), "hello");
/// ```
pub fn squash_elongation(s: &str, max_run: usize) -> String {
    assert!(max_run >= 1, "max_run must be at least 1");
    let mut out = String::with_capacity(s.len());
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    for c in s.chars() {
        if Some(c) == prev {
            run += 1;
        } else {
            run = 1;
            prev = Some(c);
        }
        if run <= max_run {
            out.push(c);
        }
    }
    out
}

/// Replace typographic quotes/dashes with ASCII equivalents.
pub fn ascii_fold(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '\u{2018}' | '\u{2019}' => '\'',
            '\u{201C}' | '\u{201D}' => '"',
            '\u{2013}' | '\u{2014}' => '-',
            '\u{00A0}' => ' ',
            other => other,
        })
        .collect()
}

/// Full normalization pipeline used before tokenization in the benchmark:
/// ASCII folding, elongation squashing (runs capped at 2), and whitespace
/// collapsing. Case is *not* folded here — the tokenizer lowercases words —
/// so that capitalization statistics remain observable upstream.
pub fn normalize(s: &str) -> String {
    let folded = ascii_fold(s);
    let squashed = squash_elongation(&folded, 2);
    collapse_whitespace(&squashed)
}

/// Collapse runs of whitespace to single spaces and trim the ends.
pub fn collapse_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squash_keeps_short_runs() {
        assert_eq!(squash_elongation("good", 2), "good");
    }

    #[test]
    fn squash_truncates_long_runs() {
        assert_eq!(squash_elongation("whyyyyyy", 2), "whyy");
        assert_eq!(squash_elongation("aaaa", 1), "a");
    }

    #[test]
    fn squash_handles_multibyte() {
        assert_eq!(squash_elongation("nooooö", 2), "nooö");
    }

    #[test]
    #[should_panic(expected = "max_run")]
    fn squash_rejects_zero_run() {
        squash_elongation("x", 0);
    }

    #[test]
    fn ascii_fold_quotes() {
        assert_eq!(ascii_fold("\u{2018}x\u{2019} \u{201C}y\u{201D}"), "'x' \"y\"");
    }

    #[test]
    fn collapse_ws() {
        assert_eq!(collapse_whitespace("  a \t b\n\nc  "), "a b c");
    }

    #[test]
    fn normalize_pipeline() {
        assert_eq!(normalize("I\u{2019}m   soooo  tired"), "I'm soo tired");
    }

    #[test]
    fn normalize_empty() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
    }
}
