//! English stopword list.
//!
//! A compact, sorted list of function words. Note that **pronouns are kept
//! out of the stopword list on purpose**: first-person singular pronoun rate
//! is one of the strongest published markers of depressive language, so the
//! feature extractors must be able to see them. Callers that want classical
//! IR behaviour can union with [`PRONOUNS`].

/// Sorted stopword array (binary-searchable).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "here", "how", "if", "in", "into", "is", "it",
    "its", "itself", "just", "more", "most", "of", "off", "on", "once", "only", "or", "other",
    "our", "ours", "out", "over", "own", "same", "so", "some", "such", "than", "that", "the",
    "their", "theirs", "them", "then", "there", "these", "they", "this", "those", "through", "to",
    "too", "under", "until", "up", "very", "was", "were", "what", "when", "where", "which",
    "while", "who", "whom", "why", "will", "with", "would",
];

/// Personal pronouns, kept separate because they are *features*, not noise,
/// in mental-health text classification.
pub const PRONOUNS: &[&str] = &[
    "he", "her", "hers", "herself", "him", "himself", "his", "i", "me", "mine", "my", "myself",
    "she", "us", "we", "you", "your", "yours", "yourself",
];

/// Is `word` (already lowercased) a stopword? O(log n).
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Is `word` a personal pronoun?
pub fn is_pronoun(word: &str) -> bool {
    PRONOUNS.binary_search(&word).is_ok()
}

/// First-person singular pronouns specifically ("i", "me", "my", "mine",
/// "myself") — the depression-linked subset.
pub fn is_first_person_singular(word: &str) -> bool {
    matches!(word, "i" | "me" | "my" | "mine" | "myself")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwords_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
        let mut p = PRONOUNS.to_vec();
        p.sort_unstable();
        assert_eq!(p, PRONOUNS, "PRONOUNS must stay sorted");
    }

    #[test]
    fn membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("because"));
        assert!(!is_stopword("sleep"));
        assert!(!is_stopword("i"), "pronouns are not stopwords here");
    }

    #[test]
    fn pronouns() {
        assert!(is_pronoun("i"));
        assert!(is_pronoun("myself"));
        assert!(!is_pronoun("the"));
        assert!(is_first_person_singular("me"));
        assert!(!is_first_person_singular("we"));
    }

    #[test]
    fn no_overlap_between_lists() {
        for p in PRONOUNS {
            assert!(!is_stopword(p), "{p} appears in both lists");
        }
    }
}
