//! Word n-gram extraction.

/// Produce word n-grams of order `n` over `tokens`, joined with `_`.
///
/// Returns an empty vector when `tokens.len() < n` or `n == 0`.
///
/// ```
/// use mhd_text::ngram::ngrams;
/// let toks = ["i", "feel", "empty"];
/// assert_eq!(ngrams(&toks, 2), vec!["i_feel", "feel_empty"]);
/// ```
pub fn ngrams<S: AsRef<str>>(tokens: &[S], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(tokens.len() - n + 1);
    for window in tokens.windows(n) {
        let mut gram = String::with_capacity(window.iter().map(|t| t.as_ref().len() + 1).sum());
        for (k, t) in window.iter().enumerate() {
            if k > 0 {
                gram.push('_');
            }
            gram.push_str(t.as_ref());
        }
        out.push(gram);
    }
    out
}

/// All n-grams for orders `1..=max_n`, unigrams first.
pub fn ngrams_up_to<S: AsRef<str>>(tokens: &[S], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        out.extend(ngrams(tokens, n));
    }
    out
}

/// Character n-grams over a single word (used for robustness to typos).
pub fn char_ngrams(word: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = word.chars().collect();
    if n == 0 || chars.len() < n {
        return Vec::new();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigrams() {
        let toks = ["a", "b", "c"];
        assert_eq!(ngrams(&toks, 2), vec!["a_b", "b_c"]);
    }

    #[test]
    fn unigram_identity() {
        let toks = ["x", "y"];
        assert_eq!(ngrams(&toks, 1), vec!["x", "y"]);
    }

    #[test]
    fn degenerate_cases() {
        let toks = ["a"];
        assert!(ngrams(&toks, 2).is_empty());
        assert!(ngrams(&toks, 0).is_empty());
        assert!(ngrams::<&str>(&[], 1).is_empty());
    }

    #[test]
    fn up_to_orders() {
        let toks = ["a", "b"];
        assert_eq!(ngrams_up_to(&toks, 2), vec!["a", "b", "a_b"]);
    }

    #[test]
    fn char_grams() {
        assert_eq!(char_ngrams("sad", 2), vec!["sa", "ad"]);
        assert!(char_ngrams("a", 2).is_empty());
    }
}
