//! Sparse vector and matrix types used by the vectorizers and linear models.
//!
//! A [`SparseVec`] is a sorted list of `(index, value)` pairs. All binary
//! operations exploit the sorted invariant for O(n + m) merges.
//!
//! A [`CsrMatrix`] packs many rows into one compressed-sparse-row buffer:
//! a whole dataset split vectorized as a unit, with precomputed row norms
//! and a rayon-parallel scoring kernel. Row operations reproduce the
//! corresponding [`SparseVec`] operations *bit for bit* (same entry order,
//! same fold order), so the batched fast path gives byte-identical model
//! output to the one-vector-at-a-time path.

use rayon::prelude::*;

/// A sparse `f64` vector with sorted, unique indices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Empty vector.
    pub fn new() -> Self {
        SparseVec { entries: Vec::new() }
    }

    /// Build from possibly-unsorted, possibly-duplicated pairs; duplicates
    /// are summed, zero values dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == i => last.1 += v,
                _ => entries.push((i, v)),
            }
        }
        entries.retain(|&(_, v)| v != 0.0);
        SparseVec { entries }
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Value at `index` (0.0 if absent). O(log n).
    pub fn get(&self, index: u32) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product with another sparse vector. O(n + m).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (0usize, 0usize);
        let mut acc = 0.0;
        while a < self.entries.len() && b < other.entries.len() {
            let (ia, va) = self.entries[a];
            let (ib, vb) = other.entries[b];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Dot product with a dense weight slice. Indices beyond `dense.len()`
    /// are ignored (they contribute zero weight).
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.entries
            .iter()
            .filter(|&&(i, _)| (i as usize) < dense.len())
            .map(|&(i, v)| v * dense[i as usize])
            .sum()
    }

    /// Add `scale * self` into a dense accumulator (for gradient updates).
    pub fn add_into_dense(&self, dense: &mut [f64], scale: f64) {
        for &(i, v) in &self.entries {
            if (i as usize) < dense.len() {
                dense[i as usize] += scale * v;
            }
        }
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// Sum of values.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Normalize to unit L2 norm in place (no-op for zero vectors).
    pub fn l2_normalize(&mut self) {
        let n = self.l2_norm();
        if n > 0.0 {
            for e in &mut self.entries {
                e.1 /= n;
            }
        }
    }

    /// Scale all values in place.
    pub fn scale(&mut self, factor: f64) {
        for e in &mut self.entries {
            e.1 *= factor;
        }
    }

    /// Elementwise sum producing a new vector.
    pub fn add(&self, other: &SparseVec) -> SparseVec {
        let mut entries = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() || b < other.entries.len() {
            match (self.entries.get(a), other.entries.get(b)) {
                (Some(&(ia, va)), Some(&(ib, vb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        entries.push((ia, va));
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        entries.push((ib, vb));
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let v = va + vb;
                        if v != 0.0 {
                            entries.push((ia, v));
                        }
                        a += 1;
                        b += 1;
                    }
                },
                (Some(&(ia, va)), None) => {
                    entries.push((ia, va));
                    a += 1;
                }
                (None, Some(&(ib, vb))) => {
                    entries.push((ib, vb));
                    b += 1;
                }
                // Loop condition guarantees at least one side has entries
                // left; break keeps the arm total without a panic path.
                (None, None) => break,
            }
        }
        SparseVec { entries }
    }

    /// Cosine similarity; 0.0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = self.l2_norm() * other.l2_norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Maximum index present, or `None` when empty.
    pub fn max_index(&self) -> Option<u32> {
        self.entries.last().map(|&(i, _)| i)
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        SparseVec::from_pairs(iter.into_iter().collect())
    }
}

/// A compressed-sparse-row matrix: many [`SparseVec`]s in one contiguous
/// buffer. Row `i` occupies `indices[indptr[i]..indptr[i+1]]` /
/// `values[indptr[i]..indptr[i+1]]`, entries sorted by column index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrMatrix {
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    /// Precomputed L2 norm of each row.
    row_norms: Vec<f64>,
}

impl CsrMatrix {
    /// Pack sparse rows into CSR form. `n_cols` is the feature-space width;
    /// entries at or beyond it are kept (row ops bound-check exactly like
    /// [`SparseVec::dot_dense`] does).
    pub fn from_rows(rows: &[SparseVec], n_cols: usize) -> Self {
        let nnz: usize = rows.iter().map(|r| r.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut row_norms = Vec::with_capacity(rows.len());
        indptr.push(0);
        for row in rows {
            for (i, v) in row.iter() {
                indices.push(i);
                values.push(v);
            }
            indptr.push(indices.len());
            row_norms.push(row.l2_norm());
        }
        CsrMatrix { n_cols, indptr, indices, values, row_norms }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Feature-space width declared at construction.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Approximate resident size in bytes (backing buffers only), used by
    /// cache byte-budget accounting.
    pub fn approx_bytes(&self) -> usize {
        self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<f64>()
            + self.row_norms.capacity() * std::mem::size_of::<f64>()
    }

    /// The `(indices, values)` slices of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Precomputed L2 norm of row `i`.
    pub fn row_norm(&self, i: usize) -> f64 {
        self.row_norms[i]
    }

    /// Row `i` materialized as a [`SparseVec`].
    pub fn row_to_sparse(&self, i: usize) -> SparseVec {
        let (idx, vals) = self.row(i);
        idx.iter().copied().zip(vals.iter().copied()).collect()
    }

    /// Dot product of row `i` with a dense weight slice. Identical entry
    /// order and fold order to [`SparseVec::dot_dense`], so results are
    /// bit-identical.
    pub fn row_dot_dense(&self, i: usize, dense: &[f64]) -> f64 {
        let (idx, vals) = self.row(i);
        idx.iter()
            .zip(vals)
            .filter(|&(&i, _)| (i as usize) < dense.len())
            .map(|(&i, &v)| v * dense[i as usize])
            .sum()
    }

    /// Add `scale * row_i` into a dense accumulator (gradient updates).
    /// Mirrors [`SparseVec::add_into_dense`].
    pub fn row_add_into_dense(&self, i: usize, dense: &mut [f64], scale: f64) {
        let (idx, vals) = self.row(i);
        for (&i, &v) in idx.iter().zip(vals) {
            if (i as usize) < dense.len() {
                dense[i as usize] += scale * v;
            }
        }
    }

    /// Batched linear scoring kernel: for every row, the per-class scores
    /// `row · weights[c] + bias[c]`. Rows are scored in parallel (rayon);
    /// output order matches row order, so the result is byte-identical to
    /// the serial loop.
    pub fn par_linear_scores(&self, weights: &[Vec<f64>], bias: &[f64]) -> Vec<Vec<f64>> {
        let rows: Vec<usize> = (0..self.n_rows()).collect();
        rows.par_iter()
            .map(|&r| {
                weights
                    .iter()
                    .zip(bias)
                    .map(|(w, &b)| self.row_dot_dense(r, w) + b)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let s = v(&[(3, 1.0), (1, 2.0), (3, 4.0), (2, 0.0)]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.get(3), 5.0);
        assert_eq!(s.get(2), 0.0);
    }

    #[test]
    fn dot_product() {
        let a = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = v(&[(2, 4.0), (5, 1.0), (7, 9.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0 * 1.0);
        assert_eq!(a.dot(&SparseVec::new()), 0.0);
    }

    #[test]
    fn dot_dense_respects_bounds() {
        let a = v(&[(0, 1.0), (9, 5.0)]);
        let w = [2.0, 0.0, 0.0];
        assert_eq!(a.dot_dense(&w), 2.0);
    }

    #[test]
    fn add_into_dense_accumulates() {
        let a = v(&[(0, 1.0), (2, 3.0)]);
        let mut w = vec![0.0; 3];
        a.add_into_dense(&mut w, 2.0);
        assert_eq!(w, vec![2.0, 0.0, 6.0]);
    }

    #[test]
    fn norms_and_normalize() {
        let mut a = v(&[(0, 3.0), (1, 4.0)]);
        assert_eq!(a.l2_norm(), 5.0);
        a.l2_normalize();
        assert!((a.l2_norm() - 1.0).abs() < 1e-12);
        let mut z = SparseVec::new();
        z.l2_normalize(); // must not panic
        assert!(z.is_empty());
    }

    #[test]
    fn add_merges_and_cancels() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        let b = v(&[(1, -2.0), (2, 3.0)]);
        let c = a.add(&b);
        assert_eq!(c.get(0), 1.0);
        assert_eq!(c.get(1), 0.0);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn cosine_similarity() {
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 2.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&SparseVec::new()), 0.0);
    }

    #[test]
    fn collect_from_iterator() {
        let s: SparseVec = [(2u32, 1.0), (0u32, 1.0)].into_iter().collect();
        assert_eq!(s.max_index(), Some(2));
    }

    fn csr_fixture() -> (Vec<SparseVec>, CsrMatrix) {
        let rows = vec![
            v(&[(0, 1.0), (2, 2.0), (5, 3.0)]),
            SparseVec::new(),
            v(&[(1, -1.5), (4, 0.5)]),
            v(&[(3, 4.0)]),
        ];
        let m = CsrMatrix::from_rows(&rows, 6);
        (rows, m)
    }

    #[test]
    fn csr_shape_and_roundtrip() {
        let (rows, m) = csr_fixture();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 6);
        assert_eq!(m.nnz(), 6);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&m.row_to_sparse(i), r);
        }
    }

    #[test]
    fn csr_row_norms_precomputed() {
        let (rows, m) = csr_fixture();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row_norm(i), r.l2_norm(), "row {i}");
        }
    }

    #[test]
    fn csr_row_dot_dense_bit_identical_to_sparsevec() {
        let (rows, m) = csr_fixture();
        // Weight slice shorter than the feature space: the bound-check
        // filter must behave exactly like SparseVec::dot_dense.
        for dense in [vec![0.5, -1.0, 2.0, 1.0, 3.0, -2.0], vec![0.5, -1.0, 2.0]] {
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(m.row_dot_dense(i, &dense), r.dot_dense(&dense), "row {i}");
            }
        }
    }

    #[test]
    fn csr_row_add_into_dense_matches_sparsevec() {
        let (rows, m) = csr_fixture();
        for (i, r) in rows.iter().enumerate() {
            let mut a = vec![1.0; 6];
            let mut b = vec![1.0; 6];
            m.row_add_into_dense(i, &mut a, -0.25);
            r.add_into_dense(&mut b, -0.25);
            assert_eq!(a, b, "row {i}");
        }
    }

    #[test]
    fn csr_par_linear_scores_matches_serial() {
        let (rows, m) = csr_fixture();
        let weights = vec![vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], vec![-1.0, 1.0, -1.0, 1.0, -1.0, 1.0]];
        let bias = vec![0.05, -0.05];
        let par = m.par_linear_scores(&weights, &bias);
        for (i, r) in rows.iter().enumerate() {
            let serial: Vec<f64> =
                weights.iter().zip(&bias).map(|(w, &b)| r.dot_dense(w) + b).collect();
            assert_eq!(par[i], serial, "row {i}");
        }
    }

    #[test]
    fn csr_empty_matrix() {
        let m = CsrMatrix::from_rows(&[], 10);
        assert_eq!(m.n_rows(), 0);
        assert!(m.par_linear_scores(&[vec![0.0; 10]], &[0.0]).is_empty());
    }
}
