//! Vocabulary construction: token ↔ id mapping with frequency cutoffs.

use std::collections::HashMap;

/// A fitted vocabulary mapping token strings to dense ids.
///
/// Ids are assigned in descending frequency order (ties broken
/// lexicographically) so that id 0 is always the most frequent token —
/// useful for capability-truncated feature views in the LLM simulator.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Build a vocabulary from an iterator of documents (each a token slice),
    /// keeping tokens that appear at least `min_count` times, capped at
    /// `max_size` tokens (0 = unlimited).
    pub fn fit<'a, I, D>(docs: I, min_count: u64, max_size: usize) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a str>,
    {
        let mut freq: HashMap<String, u64> = HashMap::new();
        for doc in docs {
            for tok in doc {
                *freq.entry(tok.to_string()).or_insert(0) += 1;
            }
        }
        let mut items: Vec<(String, u64)> =
            // mhd-lint: allow(R7) — collected in arbitrary order, then fully sorted below before truncation
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        // Descending count, then lexicographic for determinism.
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if max_size > 0 {
            items.truncate(max_size);
        }
        let mut token_to_id = HashMap::with_capacity(items.len());
        let mut id_to_token = Vec::with_capacity(items.len());
        let mut counts = Vec::with_capacity(items.len());
        for (id, (tok, c)) in items.into_iter().enumerate() {
            token_to_id.insert(tok.clone(), id as u32);
            id_to_token.push(tok);
            counts.push(c);
        }
        Vocabulary { token_to_id, id_to_token, counts }
    }

    /// Id for `token`, if in vocabulary.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Token string for `id`, if valid.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(String::as_str)
    }

    /// Training-corpus frequency of `id`.
    pub fn count(&self, id: u32) -> u64 {
        self.counts.get(id as usize).copied().unwrap_or(0)
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Iterate tokens in id order.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.id_to_token.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<&'static str>> {
        vec![
            vec!["sad", "sad", "tired"],
            vec!["sad", "alone"],
            vec!["tired", "alone", "alone"],
        ]
    }

    #[test]
    fn ids_by_descending_frequency() {
        let v = Vocabulary::fit(docs().iter().map(|d| d.iter().copied()), 1, 0);
        assert_eq!(v.len(), 3);
        // "sad" and "alone" both appear 3 times; tie broken lexicographically.
        assert_eq!(v.token(0), Some("alone"));
        assert_eq!(v.token(1), Some("sad"));
        assert_eq!(v.token(2), Some("tired"));
        assert_eq!(v.count(2), 2);
    }

    #[test]
    fn min_count_filters() {
        let v = Vocabulary::fit(docs().iter().map(|d| d.iter().copied()), 3, 0);
        assert_eq!(v.len(), 2);
        assert!(v.id("tired").is_none());
    }

    #[test]
    fn max_size_truncates() {
        let v = Vocabulary::fit(docs().iter().map(|d| d.iter().copied()), 1, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v.token(0), Some("alone"));
    }

    #[test]
    fn roundtrip() {
        let v = Vocabulary::fit(docs().iter().map(|d| d.iter().copied()), 1, 0);
        for id in 0..v.len() as u32 {
            let tok = v.token(id).unwrap();
            assert_eq!(v.id(tok), Some(id));
        }
        assert!(v.id("unknown").is_none());
        assert!(v.token(99).is_none());
    }

    #[test]
    fn empty_corpus() {
        let v = Vocabulary::fit(Vec::<Vec<&str>>::new(), 1, 0);
        assert!(v.is_empty());
    }
}
