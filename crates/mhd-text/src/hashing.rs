//! Feature-hashing ("hashing trick") vectorizer.
//!
//! Maps arbitrary token streams into a fixed-dimensional sparse space via
//! FNV-1a, with a sign hash to debias collisions. Used by the simulated LLM
//! backbone, where the feature dimensionality doubles as the model-capacity
//! knob.

use crate::ngram::ngrams_up_to;
use crate::sparse::SparseVec;
use crate::tokenize::words;

/// 64-bit FNV-1a hash.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Stateless hashing vectorizer.
#[derive(Debug, Clone)]
pub struct HashingVectorizer {
    /// Output dimensionality.
    pub n_features: u32,
    /// Max n-gram order.
    pub ngram_max: usize,
    /// Use a sign bit from the hash to spread collision bias.
    pub signed: bool,
}

impl HashingVectorizer {
    /// Construct with the given dimensionality (must be > 0).
    pub fn new(n_features: u32, ngram_max: usize) -> Self {
        assert!(n_features > 0, "n_features must be positive");
        HashingVectorizer { n_features, ngram_max: ngram_max.max(1), signed: true }
    }

    /// Vectorize raw text into an L2-normalized sparse vector.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let toks = words(doc);
        self.transform_tokens(&toks)
    }

    /// Vectorize pre-tokenized text.
    pub fn transform_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> SparseVec {
        let grams = ngrams_up_to(tokens, self.ngram_max);
        let mut pairs = Vec::with_capacity(grams.len());
        for g in &grams {
            let h = fnv1a(g.as_bytes());
            let idx = (h % self.n_features as u64) as u32;
            let sign = if self.signed && (h >> 63) == 1 { -1.0 } else { 1.0 };
            pairs.push((idx, sign));
        }
        let mut v = SparseVec::from_pairs(pairs);
        v.l2_normalize();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = HashingVectorizer::new(256, 1);
        assert_eq!(h.transform("i feel sad"), h.transform("i feel sad"));
    }

    #[test]
    fn dimensionality_respected() {
        let h = HashingVectorizer::new(16, 1);
        let v = h.transform("many different words to hash into a small space today again");
        assert!(v.max_index().unwrap() < 16);
    }

    #[test]
    fn different_docs_differ() {
        let h = HashingVectorizer::new(4096, 1);
        assert_ne!(h.transform("hopeless empty"), h.transform("sunny beach"));
    }

    #[test]
    fn unit_norm() {
        let h = HashingVectorizer::new(512, 2);
        let v = h.transform("i cannot sleep at night");
        assert!((v.l2_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_doc_empty_vec() {
        let h = HashingVectorizer::new(512, 1);
        assert!(h.transform("").is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_features_rejected() {
        HashingVectorizer::new(0, 1);
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference: hash of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
