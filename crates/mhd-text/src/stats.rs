//! Surface text statistics.
//!
//! Cheap per-document statistics that the surveyed literature reports as
//! weak-but-real signals: post length, sentence length, pronoun rates,
//! punctuation/caps intensity, and question density.

use crate::stopwords::{is_first_person_singular, is_pronoun};
use crate::tokenize::{sentences, tokenize, TokenKind};

/// Surface statistics for one document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TextStats {
    /// Token count (all kinds).
    pub n_tokens: usize,
    /// Word-kind token count.
    pub n_words: usize,
    /// Sentence count.
    pub n_sentences: usize,
    /// Mean word length in characters.
    pub avg_word_len: f64,
    /// First-person-singular pronoun rate among words.
    pub first_person_rate: f64,
    /// Any-pronoun rate among words.
    pub pronoun_rate: f64,
    /// Exclamation-run rate among tokens.
    pub exclaim_rate: f64,
    /// Question-mark-run rate among tokens.
    pub question_rate: f64,
    /// Fraction of alphabetic characters that are uppercase (raw text).
    pub caps_ratio: f64,
    /// Emoticon token rate.
    pub emoticon_rate: f64,
}

impl TextStats {
    /// Compute statistics for `text`.
    pub fn of(text: &str) -> TextStats {
        let toks = tokenize(text);
        let n_tokens = toks.len();
        let mut n_words = 0usize;
        let mut word_chars = 0usize;
        let mut first_person = 0usize;
        let mut pronouns = 0usize;
        let mut exclaims = 0usize;
        let mut questions = 0usize;
        let mut emoticons = 0usize;
        for t in &toks {
            match t.kind {
                TokenKind::Word => {
                    n_words += 1;
                    word_chars += t.text.chars().count();
                    if is_first_person_singular(&t.text) {
                        first_person += 1;
                    }
                    if is_pronoun(&t.text) {
                        pronouns += 1;
                    }
                }
                TokenKind::Punct => {
                    if t.text.starts_with('!') {
                        exclaims += 1;
                    } else if t.text.starts_with('?') {
                        questions += 1;
                    }
                }
                TokenKind::Emoticon => emoticons += 1,
                _ => {}
            }
        }
        let (mut upper, mut alpha) = (0usize, 0usize);
        for c in text.chars() {
            if c.is_alphabetic() {
                alpha += 1;
                if c.is_uppercase() {
                    upper += 1;
                }
            }
        }
        let rate = |num: usize, den: usize| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        TextStats {
            n_tokens,
            n_words,
            n_sentences: sentences(text).len(),
            avg_word_len: rate(word_chars, n_words),
            first_person_rate: rate(first_person, n_words),
            pronoun_rate: rate(pronouns, n_words),
            exclaim_rate: rate(exclaims, n_tokens),
            question_rate: rate(questions, n_tokens),
            caps_ratio: rate(upper, alpha),
            emoticon_rate: rate(emoticons, n_tokens),
        }
    }

    /// Dense feature vector (fixed order, for model consumption).
    pub fn features(&self) -> [f64; 10] {
        [
            // Log-scaled lengths so magnitudes stay comparable.
            (1.0 + self.n_tokens as f64).ln(),
            (1.0 + self.n_words as f64).ln(),
            (1.0 + self.n_sentences as f64).ln(),
            self.avg_word_len,
            self.first_person_rate,
            self.pronoun_rate,
            self.exclaim_rate,
            self.question_rate,
            self.caps_ratio,
            self.emoticon_rate,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let s = TextStats::of("I hate my life. Why me?");
        assert_eq!(s.n_sentences, 2);
        assert!(s.n_words >= 5);
        assert!(s.first_person_rate > 0.0);
        assert!(s.question_rate > 0.0);
    }

    #[test]
    fn empty_text_all_zero() {
        let s = TextStats::of("");
        assert_eq!(s, TextStats::default());
    }

    #[test]
    fn caps_ratio() {
        let s = TextStats::of("HELP me");
        assert!((s.caps_ratio - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn first_person_vs_pronoun() {
        let s = TextStats::of("you and i");
        assert!(s.pronoun_rate > s.first_person_rate);
    }

    #[test]
    fn features_len_and_finite() {
        let f = TextStats::of("a normal sentence here.").features();
        assert_eq!(f.len(), 10);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn emoticon_rate_positive() {
        let s = TextStats::of("so tired :(");
        assert!(s.emoticon_rate > 0.0);
    }
}
