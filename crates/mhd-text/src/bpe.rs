//! A small byte-pair-encoding (BPE) tokenizer.
//!
//! Used by the LLM simulator for *token accounting* (context-window limits,
//! cost models) exactly the way `tiktoken` is used against real APIs. The
//! trainer follows the classic algorithm: start from characters with an
//! end-of-word marker and iteratively merge the most frequent adjacent pair.

use std::collections::HashMap;

const EOW: &str = "</w>";

/// A trained BPE model: ranked merge rules.
#[derive(Debug, Clone)]
pub struct Bpe {
    /// Merge rules in training order; earlier = higher priority.
    merges: Vec<(String, String)>,
    merge_rank: HashMap<(String, String), usize>,
}

impl Bpe {
    /// Train on a corpus of whitespace-tokenizable text, learning up to
    /// `n_merges` merge rules.
    pub fn train(corpus: &[impl AsRef<str>], n_merges: usize) -> Self {
        // Word frequency table, each word as a symbol sequence.
        let mut word_freq: HashMap<Vec<String>, u64> = HashMap::new();
        for doc in corpus {
            for w in doc.as_ref().split_whitespace() {
                let w = w.to_lowercase();
                let mut symbols: Vec<String> = w.chars().map(|c| c.to_string()).collect();
                if symbols.is_empty() {
                    continue;
                }
                symbols.push(EOW.to_string());
                *word_freq.entry(symbols).or_insert(0) += 1;
            }
        }
        let mut merges = Vec::with_capacity(n_merges);
        for _ in 0..n_merges {
            // Count adjacent pairs.
            let mut pair_counts: HashMap<(String, String), u64> = HashMap::new();
            for (symbols, &freq) in &word_freq {
                for pair in symbols.windows(2) {
                    *pair_counts.entry((pair[0].clone(), pair[1].clone())).or_insert(0) += freq;
                }
            }
            // Most frequent pair; deterministic tie-break on the pair itself.
            let best = pair_counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((a, b), count)) = best else { break };
            if count < 2 {
                break; // No productive merges left.
            }
            // Apply the merge to every word.
            let merged_sym = format!("{a}{b}");
            let mut next: HashMap<Vec<String>, u64> = HashMap::with_capacity(word_freq.len());
            for (symbols, freq) in word_freq {
                let mut out = Vec::with_capacity(symbols.len());
                let mut i = 0;
                while i < symbols.len() {
                    if i + 1 < symbols.len() && symbols[i] == a && symbols[i + 1] == b {
                        out.push(merged_sym.clone());
                        i += 2;
                    } else {
                        out.push(symbols[i].clone());
                        i += 1;
                    }
                }
                *next.entry(out).or_insert(0) += freq;
            }
            word_freq = next;
            merges.push((a, b));
        }
        let merge_rank = merges
            .iter()
            .cloned()
            .enumerate()
            .map(|(r, p)| (p, r))
            .collect();
        Bpe { merges, merge_rank }
    }

    /// Encode one word into BPE symbols.
    pub fn encode_word(&self, word: &str) -> Vec<String> {
        let mut symbols: Vec<String> = word.to_lowercase().chars().map(|c| c.to_string()).collect();
        if symbols.is_empty() {
            return symbols;
        }
        symbols.push(EOW.to_string());
        loop {
            // Find the highest-priority applicable merge.
            let mut best: Option<(usize, usize)> = None; // (rank, position)
            for i in 0..symbols.len().saturating_sub(1) {
                let key = (symbols[i].clone(), symbols[i + 1].clone());
                if let Some(&rank) = self.merge_rank.get(&key) {
                    if best.is_none_or(|(r, _)| rank < r) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let merged = format!("{}{}", symbols[i], symbols[i + 1]);
            symbols.splice(i..i + 2, [merged]);
        }
        symbols
    }

    /// Token count for a full text: sum of per-word symbol counts plus one
    /// token per punctuation run, mirroring how real tokenizers bill text.
    pub fn count_tokens(&self, text: &str) -> usize {
        text.split_whitespace()
            .map(|w| {
                let core: String = w.chars().filter(|c| c.is_alphanumeric() || *c == '\'').collect();
                let punct = w.chars().filter(|c| c.is_ascii_punctuation() && *c != '\'').count();
                let word_tokens = if core.is_empty() { 0 } else { self.encode_word(&core).len() };
                word_tokens + punct.min(2)
            })
            .sum()
    }

    /// Number of learned merges.
    pub fn n_merges(&self) -> usize {
        self.merges.len()
    }
}

/// A fixed cheap token estimator for callers that do not want to train a BPE
/// model: ~1 token per 4 characters, the common rule of thumb used for cost
/// estimation against real APIs.
pub fn estimate_tokens(text: &str) -> usize {
    text.chars().count().div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> Bpe {
        let corpus = vec![
            "the cat sat on the mat",
            "the cat ate the rat",
            "that cat that sat",
            "the the the cat cat",
        ];
        Bpe::train(&corpus, 32)
    }

    #[test]
    fn training_learns_merges() {
        let bpe = trained();
        assert!(bpe.n_merges() > 0);
    }

    #[test]
    fn frequent_words_compress() {
        let bpe = trained();
        // "the" is very frequent → should encode to few symbols.
        let the = bpe.encode_word("the");
        assert!(the.len() <= 2, "'the' encoded as {the:?}");
        // An unseen word stays near character-level.
        let zebra = bpe.encode_word("zyxwv");
        assert!(zebra.len() >= 4, "'zyxwv' encoded as {zebra:?}");
    }

    #[test]
    fn encode_deterministic() {
        let bpe = trained();
        assert_eq!(bpe.encode_word("cat"), bpe.encode_word("cat"));
    }

    #[test]
    fn count_tokens_monotone_in_length() {
        let bpe = trained();
        let short = bpe.count_tokens("the cat");
        let long = bpe.count_tokens("the cat sat on the mat with the rat");
        assert!(long > short);
    }

    #[test]
    fn count_handles_punctuation() {
        let bpe = trained();
        assert!(bpe.count_tokens("cat!!!") > bpe.count_tokens("cat"));
    }

    #[test]
    fn empty_inputs() {
        let bpe = trained();
        assert_eq!(bpe.count_tokens(""), 0);
        assert!(bpe.encode_word("").is_empty());
    }

    #[test]
    fn estimate_rule_of_thumb() {
        assert_eq!(estimate_tokens(""), 0);
        assert_eq!(estimate_tokens("abcd"), 1);
        assert_eq!(estimate_tokens("abcde"), 2);
    }
}
