//! LIWC-style psycholinguistic category lexicons.
//!
//! Decades of work on mental-health language (Pennebaker's LIWC line, the
//! CLPsych shared tasks, the Dreaddit/SDCNL/CSSRS papers) agree on a small
//! set of category signals: negative/positive emotion words, anxiety words,
//! anger, sadness, death/suicide references, sleep/fatigue, cognition
//! ("cognitive distortion" markers), absolutist words, social references,
//! body/health words, and first-person pronoun density.
//!
//! This module ships a purpose-built lexicon for those categories. The same
//! word lists seed both the synthetic corpus *generator* (in `mhd-corpus`)
//! and the lexicon *features* used by baselines — mirroring reality, where
//! the datasets' signal and LIWC's dictionaries were both distilled from the
//! same underlying clinical language. Detection is still non-trivial because
//! the generator mixes categories across classes, adds noise vocabulary, and
//! models comorbidity.

use crate::stem::stem;
use std::collections::HashMap;

/// Psycholinguistic word categories tracked by the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LexiconCategory {
    /// General negative emotion ("awful", "miserable").
    NegativeEmotion,
    /// Positive emotion ("happy", "grateful").
    PositiveEmotion,
    /// Anxiety / fear ("worried", "panic").
    Anxiety,
    /// Anger / irritability ("furious", "hate").
    Anger,
    /// Sadness / depressed mood ("empty", "hopeless").
    Sadness,
    /// Death and suicide references ("die", "suicide", "end it").
    Death,
    /// Sleep and fatigue ("insomnia", "exhausted").
    Sleep,
    /// Cognitive process / rumination markers ("why", "think", "realize").
    Cognition,
    /// Absolutist words ("always", "never", "completely") — a replicated
    /// marker of depression and suicidal ideation (Al-Mosaiwi & Johnstone).
    Absolutist,
    /// Social references ("friend", "family", "alone").
    Social,
    /// Body / somatic complaints ("headache", "pain", "weight").
    Body,
    /// Work / school stressors ("deadline", "exam", "boss").
    Work,
    /// Financial stressors ("rent", "debt", "bills").
    Money,
    /// Trauma / flashback vocabulary ("nightmare", "flashback", "triggered").
    Trauma,
    /// Eating / food / weight preoccupation ("calories", "binge", "purge").
    Eating,
    /// Mania / elevated-energy vocabulary ("racing", "invincible", "spree").
    Mania,
    /// Help-seeking & treatment ("therapist", "meds", "diagnosis").
    Treatment,
    /// First-person singular pronouns (computed, not listed).
    FirstPerson,
}

impl LexiconCategory {
    /// All categories in a stable order.
    pub const ALL: [LexiconCategory; 18] = [
        LexiconCategory::NegativeEmotion,
        LexiconCategory::PositiveEmotion,
        LexiconCategory::Anxiety,
        LexiconCategory::Anger,
        LexiconCategory::Sadness,
        LexiconCategory::Death,
        LexiconCategory::Sleep,
        LexiconCategory::Cognition,
        LexiconCategory::Absolutist,
        LexiconCategory::Social,
        LexiconCategory::Body,
        LexiconCategory::Work,
        LexiconCategory::Money,
        LexiconCategory::Trauma,
        LexiconCategory::Eating,
        LexiconCategory::Mania,
        LexiconCategory::Treatment,
        LexiconCategory::FirstPerson,
    ];

    /// Stable index of the category in [`Self::ALL`].
    pub fn index(self) -> usize {
        // mhd-lint: allow(R6) — ALL enumerates every variant; exhaustiveness is pinned by the lexicon tests
        Self::ALL.iter().position(|&c| c == self).expect("category in ALL")
    }

    /// Short snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LexiconCategory::NegativeEmotion => "neg_emo",
            LexiconCategory::PositiveEmotion => "pos_emo",
            LexiconCategory::Anxiety => "anxiety",
            LexiconCategory::Anger => "anger",
            LexiconCategory::Sadness => "sadness",
            LexiconCategory::Death => "death",
            LexiconCategory::Sleep => "sleep",
            LexiconCategory::Cognition => "cognition",
            LexiconCategory::Absolutist => "absolutist",
            LexiconCategory::Social => "social",
            LexiconCategory::Body => "body",
            LexiconCategory::Work => "work",
            LexiconCategory::Money => "money",
            LexiconCategory::Trauma => "trauma",
            LexiconCategory::Eating => "eating",
            LexiconCategory::Mania => "mania",
            LexiconCategory::Treatment => "treatment",
            LexiconCategory::FirstPerson => "first_person",
        }
    }
}

/// Word lists per category. Kept as plain functions so the corpus generator
/// can sample from the same inventory the features are computed over.
pub fn category_words(cat: LexiconCategory) -> &'static [&'static str] {
    match cat {
        LexiconCategory::NegativeEmotion => &[
            "awful", "terrible", "horrible", "miserable", "worthless", "useless", "pathetic",
            "disgusting", "unbearable", "painful", "hurt", "hurting", "suffering", "broken",
            "ruined", "failure", "failing", "hate", "dread", "ashamed", "guilty", "guilt",
            "regret", "despair", "agony", "torment", "wretched", "bleak", "grim",
        ],
        LexiconCategory::PositiveEmotion => &[
            "happy", "grateful", "thankful", "hopeful", "excited", "proud", "calm", "peaceful",
            "relieved", "joy", "love", "loved", "wonderful", "amazing", "great", "good",
            "better", "improving", "progress", "blessed", "content", "optimistic", "smile",
            "laughed", "fun", "enjoy", "enjoyed",
        ],
        LexiconCategory::Anxiety => &[
            "anxious", "anxiety", "worried", "worry", "worrying", "panic", "panicking",
            "nervous", "scared", "afraid", "fear", "terrified", "dread", "overwhelmed",
            "restless", "uneasy", "tense", "shaking", "trembling", "racing", "spiraling",
            "overthinking", "paranoid", "edge", "jittery", "hyperventilating",
        ],
        LexiconCategory::Anger => &[
            "angry", "furious", "rage", "irritated", "irritable", "annoyed", "frustrated",
            "frustrating", "resent", "resentment", "snapped", "screaming", "yelling",
            "explode", "bitter", "hostile", "pissed", "outraged", "seething",
        ],
        LexiconCategory::Sadness => &[
            "sad", "sadness", "depressed", "depression", "empty", "emptiness", "numb",
            "hopeless", "hopelessness", "lonely", "loneliness", "crying", "cried", "tears",
            "grief", "mourning", "down", "low", "dark", "darkness", "heavy", "drowning",
            "sinking", "void", "meaningless", "pointless", "joyless", "anhedonia",
        ],
        LexiconCategory::Death => &[
            "die", "dying", "death", "dead", "suicide", "suicidal", "kill", "killing",
            "overdose", "pills", "jump", "bridge", "rope", "gun", "cutting", "selfharm",
            "harm", "hurt", "end", "ending", "goodbye", "funeral", "grave", "afterlife",
            "disappear", "vanish", "gone", "burden", "painless",
        ],
        LexiconCategory::Sleep => &[
            "sleep", "sleeping", "slept", "insomnia", "awake", "tired", "exhausted",
            "exhaustion", "fatigue", "fatigued", "drained", "nightmares", "nightmare", "bed",
            "rest", "restless", "nap", "oversleeping", "sleepless", "drowsy", "lethargic",
        ],
        LexiconCategory::Cognition => &[
            "think", "thinking", "thought", "thoughts", "realize", "realized", "understand",
            "know", "knowing", "believe", "remember", "memory", "focus", "concentrate",
            "concentration", "decide", "decision", "confused", "foggy", "blank", "ruminating",
            "obsessing", "replaying", "wondering", "question", "why",
        ],
        LexiconCategory::Absolutist => &[
            "always", "never", "nothing", "everything", "completely", "totally", "entirely",
            "absolutely", "definitely", "constant", "constantly", "forever", "every",
            "nobody", "everyone", "all", "none", "must", "impossible", "whole",
        ],
        LexiconCategory::Social => &[
            "friend", "friends", "family", "mother", "father", "mom", "dad", "sister",
            "brother", "partner", "boyfriend", "girlfriend", "wife", "husband", "alone",
            "isolated", "isolation", "abandoned", "rejected", "ignored", "talk", "talking",
            "relationship", "people", "social", "party", "colleagues", "roommate",
        ],
        LexiconCategory::Body => &[
            "headache", "headaches", "pain", "aching", "stomach", "nausea", "nauseous",
            "dizzy", "chest", "heart", "pounding", "breathing", "breath", "weight", "appetite",
            "eating", "body", "skin", "tension", "muscles", "sick", "ill", "shaky",
        ],
        LexiconCategory::Work => &[
            "work", "job", "boss", "deadline", "deadlines", "shift", "shifts", "overtime",
            "fired", "layoff", "school", "exam", "exams", "finals", "homework", "assignment",
            "grades", "class", "college", "university", "thesis", "interview", "career",
            "workload", "meetings", "project",
        ],
        LexiconCategory::Money => &[
            "money", "rent", "debt", "bills", "broke", "afford", "loan", "loans", "savings",
            "paycheck", "salary", "eviction", "mortgage", "expenses", "financial", "budget",
            "overdrawn", "credit",
        ],
        LexiconCategory::Trauma => &[
            "trauma", "traumatic", "flashback", "flashbacks", "triggered", "triggers",
            "abuse", "abused", "assault", "attacked", "accident", "war", "combat", "veteran",
            "hypervigilant", "startle", "avoidance", "dissociate", "dissociation", "ptsd",
            "reliving", "intrusive",
        ],
        LexiconCategory::Eating => &[
            "calories", "binge", "binged", "purge", "purging", "restrict", "restricting",
            "fasting", "starve", "starving", "fat", "thin", "skinny", "mirror", "scale",
            "diet", "food", "meal", "meals", "hungry", "fullness", "bodyimage",
        ],
        LexiconCategory::Mania => &[
            "racing", "energy", "energetic", "invincible", "unstoppable", "euphoric",
            "spree", "impulsive", "impulse", "reckless", "grandiose", "ideas", "projects",
            "awake", "wired", "talkative", "fast", "elevated", "manic", "episode", "crash",
            "spending", "hypomanic",
        ],
        LexiconCategory::Treatment => &[
            "therapist", "therapy", "counselor", "counseling", "psychiatrist", "meds",
            "medication", "antidepressants", "ssri", "dose", "diagnosis", "diagnosed",
            "hospital", "inpatient", "clinic", "appointment", "hotline", "helpline",
            "recovery", "coping", "mindfulness", "journaling",
        ],
        LexiconCategory::FirstPerson => &["i", "me", "my", "mine", "myself"],
    }
}

/// A fitted lexicon: maps stemmed word forms to categories.
///
/// Build once with [`Lexicon::standard`] and reuse; matching is O(1) per
/// token.
#[derive(Debug, Clone)]
pub struct Lexicon {
    stem_to_cats: HashMap<String, Vec<LexiconCategory>>,
}

impl Lexicon {
    /// The standard benchmark lexicon covering all categories.
    pub fn standard() -> Self {
        let mut stem_to_cats: HashMap<String, Vec<LexiconCategory>> = HashMap::new();
        for &cat in &LexiconCategory::ALL {
            for word in category_words(cat) {
                let key = stem(word);
                let cats = stem_to_cats.entry(key).or_default();
                if !cats.contains(&cat) {
                    cats.push(cat);
                }
            }
        }
        Lexicon { stem_to_cats }
    }

    /// Categories a (lowercased) token belongs to, after stemming.
    pub fn categories(&self, token: &str) -> &[LexiconCategory] {
        self.stem_to_cats
            .get(&stem(token))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Profile a token sequence: per-category counts normalized by length.
    pub fn profile<S: AsRef<str>>(&self, tokens: &[S]) -> LexiconProfile {
        let mut counts = [0u32; LexiconCategory::ALL.len()];
        for tok in tokens {
            for &cat in self.categories(tok.as_ref()) {
                counts[cat.index()] += 1;
            }
        }
        LexiconProfile { counts, total_tokens: tokens.len() as u32 }
    }
}

/// Per-category counts for one document, plus the document length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LexiconProfile {
    counts: [u32; LexiconCategory::ALL.len()],
    total_tokens: u32,
}

impl LexiconProfile {
    /// Raw count for a category.
    pub fn count(&self, cat: LexiconCategory) -> u32 {
        self.counts[cat.index()]
    }

    /// Count normalized by document length (rate per token); 0 for empty docs.
    pub fn rate(&self, cat: LexiconCategory) -> f64 {
        if self.total_tokens == 0 {
            0.0
        } else {
            self.counts[cat.index()] as f64 / self.total_tokens as f64
        }
    }

    /// Document length in tokens.
    pub fn total_tokens(&self) -> u32 {
        self.total_tokens
    }

    /// Dense rate vector in [`LexiconCategory::ALL`] order — the feature
    /// representation used by the rule baseline and the LLM backbone.
    pub fn rates(&self) -> Vec<f64> {
        LexiconCategory::ALL.iter().map(|&c| self.rate(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_lexicon_covers_all_categories() {
        let lex = Lexicon::standard();
        for &cat in &LexiconCategory::ALL {
            let w = category_words(cat)[0];
            assert!(
                lex.categories(w).contains(&cat),
                "first word of {:?} must match its own category",
                cat
            );
        }
    }

    #[test]
    fn stemming_unifies_inflections() {
        let lex = Lexicon::standard();
        assert!(lex.categories("worrying").contains(&LexiconCategory::Anxiety));
        assert!(lex.categories("worried").contains(&LexiconCategory::Anxiety));
        assert!(lex.categories("crying").contains(&LexiconCategory::Sadness));
    }

    #[test]
    fn ambiguous_words_multi_category() {
        let lex = Lexicon::standard();
        // "hurt" is listed under both NegativeEmotion and Death.
        let cats = lex.categories("hurt");
        assert!(cats.contains(&LexiconCategory::NegativeEmotion));
        assert!(cats.contains(&LexiconCategory::Death));
    }

    #[test]
    fn profile_counts_and_rates() {
        let lex = Lexicon::standard();
        let toks = ["i", "feel", "hopeless", "and", "alone"];
        let p = lex.profile(&toks);
        assert_eq!(p.count(LexiconCategory::FirstPerson), 1);
        assert_eq!(p.count(LexiconCategory::Sadness), 1);
        assert_eq!(p.count(LexiconCategory::Social), 1);
        assert!((p.rate(LexiconCategory::Sadness) - 0.2).abs() < 1e-12);
        assert_eq!(p.total_tokens(), 5);
    }

    #[test]
    fn empty_profile() {
        let lex = Lexicon::standard();
        let p = lex.profile::<&str>(&[]);
        assert_eq!(p.rate(LexiconCategory::Sadness), 0.0);
        assert_eq!(p.rates().len(), LexiconCategory::ALL.len());
    }

    #[test]
    fn category_index_roundtrip() {
        for (i, &c) in LexiconCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = LexiconCategory::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LexiconCategory::ALL.len());
    }
}
