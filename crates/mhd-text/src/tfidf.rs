//! TF-IDF vectorization.
//!
//! Fits a vocabulary over tokenized documents and transforms documents into
//! L2-normalized sparse TF-IDF vectors. Uses smoothed IDF
//! (`ln((1+N)/(1+df)) + 1`), sublinear TF (`1 + ln(tf)`), and optional
//! stemming/stopword removal/bigrams — the same knobs scikit-learn exposes,
//! because the surveyed baselines are all described in those terms.

use crate::ngram::ngrams_up_to;
use crate::sparse::{CsrMatrix, SparseVec};
use rayon::prelude::*;
use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::words;
use std::collections::{HashMap, HashSet};

/// Configuration for [`TfidfVectorizer`].
#[derive(Debug, Clone)]
pub struct TfidfConfig {
    /// Minimum document frequency for a term to enter the vocabulary.
    pub min_df: u32,
    /// Maximum vocabulary size (0 = unlimited); most-frequent kept.
    pub max_features: usize,
    /// Maximum n-gram order (1 = unigrams only, 2 = uni+bi-grams).
    pub ngram_max: usize,
    /// Apply the Porter stemmer before counting.
    pub stem: bool,
    /// Drop stopwords before n-gram construction.
    pub remove_stopwords: bool,
    /// Use sublinear term frequency `1 + ln(tf)`.
    pub sublinear_tf: bool,
}

impl Default for TfidfConfig {
    fn default() -> Self {
        TfidfConfig {
            min_df: 2,
            max_features: 50_000,
            ngram_max: 2,
            stem: true,
            remove_stopwords: true,
            sublinear_tf: true,
        }
    }
}

/// A fitted TF-IDF vectorizer.
#[derive(Debug, Clone)]
pub struct TfidfVectorizer {
    config: TfidfConfig,
    term_to_id: HashMap<String, u32>,
    idf: Vec<f64>,
}

impl TfidfVectorizer {
    /// Fit on a corpus of raw documents.
    pub fn fit(docs: &[impl AsRef<str>], config: TfidfConfig) -> Self {
        let n_docs = docs.len() as f64;
        let mut df: HashMap<String, u32> = HashMap::new();
        for doc in docs {
            let terms = Self::terms_for(doc.as_ref(), &config);
            let unique: HashSet<&String> = terms.iter().collect();
            // mhd-lint: allow(R7) — visit order only permutes commutative += into df
            for t in unique {
                *df.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let mut items: Vec<(String, u32)> =
            // mhd-lint: allow(R7) — collected in arbitrary order, then fully sorted below before truncation
            df.into_iter().filter(|&(_, d)| d >= config.min_df).collect();
        // Highest-df first for deterministic truncation; ties lexicographic.
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if config.max_features > 0 {
            items.truncate(config.max_features);
        }
        let mut term_to_id = HashMap::with_capacity(items.len());
        let mut idf = Vec::with_capacity(items.len());
        for (id, (term, d)) in items.into_iter().enumerate() {
            term_to_id.insert(term, id as u32);
            idf.push(((1.0 + n_docs) / (1.0 + d as f64)).ln() + 1.0);
        }
        TfidfVectorizer { config, term_to_id, idf }
    }

    fn terms_for(doc: &str, config: &TfidfConfig) -> Vec<String> {
        let mut toks = words(doc);
        if config.remove_stopwords {
            toks.retain(|t| !is_stopword(t));
        }
        if config.stem {
            for t in &mut toks {
                *t = stem(t);
            }
        }
        ngrams_up_to(&toks, config.ngram_max.max(1))
    }

    /// Approximate resident size in bytes (vocabulary strings plus the IDF
    /// table), used by cache byte-budget accounting. Summation over the
    /// vocabulary map is order-independent, so the result is deterministic.
    pub fn approx_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<String>() + std::mem::size_of::<u32>();
        // mhd-lint: allow(R7) — order-independent sum over all keys
        self.term_to_id.keys().map(|k| per_entry + k.capacity()).sum::<usize>()
            + self.idf.capacity() * std::mem::size_of::<f64>()
    }

    /// Transform one document into an L2-normalized TF-IDF vector.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let terms = Self::terms_for(doc, &self.config);
        let mut counts: HashMap<u32, f64> = HashMap::new();
        for t in &terms {
            if let Some(&id) = self.term_to_id.get(t) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut pairs: Vec<(u32, f64)> = counts
            // mhd-lint: allow(R7) — pairs are sorted by term id below before the sparse vector is built
            .into_iter()
            .map(|(id, tf)| {
                let tf_w = if self.config.sublinear_tf { 1.0 + tf.ln() } else { tf };
                (id, tf_w * self.idf[id as usize])
            })
            .collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut v = SparseVec::from_pairs(pairs);
        v.l2_normalize();
        v
    }

    /// Transform many documents.
    pub fn transform_batch(&self, docs: &[impl AsRef<str>]) -> Vec<SparseVec> {
        docs.iter().map(|d| self.transform(d.as_ref())).collect()
    }

    /// Transform a whole split into one CSR matrix in a single pass.
    /// Documents are tokenized and weighted in parallel; row order matches
    /// input order, and each row equals [`Self::transform`] of that
    /// document exactly.
    pub fn transform_csr(&self, docs: &[impl AsRef<str> + Sync]) -> CsrMatrix {
        let rows: Vec<SparseVec> = docs.par_iter().map(|d| self.transform(d.as_ref())).collect();
        CsrMatrix::from_rows(&rows, self.n_features())
    }

    /// Feature-space dimensionality.
    pub fn n_features(&self) -> usize {
        self.idf.len()
    }

    /// Id of a (post-processing) term, if in vocabulary. Intended for tests.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        self.term_to_id.get(term).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "i feel so hopeless and empty today",
            "i feel hopeless about everything",
            "great day at the beach with friends",
            "wonderful sunny day today",
            "i cannot sleep and feel empty",
        ]
    }

    fn cfg() -> TfidfConfig {
        TfidfConfig { min_df: 1, max_features: 0, ngram_max: 1, stem: false, remove_stopwords: true, sublinear_tf: false }
    }

    #[test]
    fn fit_builds_vocabulary() {
        let v = TfidfVectorizer::fit(&corpus(), cfg());
        assert!(v.n_features() > 5);
        assert!(v.term_id("hopeless").is_some());
        assert!(v.term_id("the").is_none(), "stopwords removed");
    }

    #[test]
    fn transform_is_unit_norm() {
        let v = TfidfVectorizer::fit(&corpus(), cfg());
        let x = v.transform("i feel hopeless");
        assert!((x.l2_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rare_terms_have_higher_idf_weight() {
        let v = TfidfVectorizer::fit(&corpus(), cfg());
        // "beach" appears once, "feel" four times: in a doc containing both,
        // the rare term carries more weight.
        let x = v.transform("feel beach");
        let w_feel = x.get(v.term_id("feel").unwrap());
        let w_beach = x.get(v.term_id("beach").unwrap());
        assert!(w_beach > w_feel, "beach={w_beach} feel={w_feel}");
    }

    #[test]
    fn min_df_prunes() {
        let mut c = cfg();
        c.min_df = 2;
        let v = TfidfVectorizer::fit(&corpus(), c);
        assert!(v.term_id("beach").is_none());
        assert!(v.term_id("hopeless").is_some());
    }

    #[test]
    fn max_features_truncates_by_df() {
        let mut c = cfg();
        c.max_features = 2;
        let v = TfidfVectorizer::fit(&corpus(), c);
        assert_eq!(v.n_features(), 2);
        assert!(v.term_id("feel").is_some(), "most frequent term kept");
    }

    #[test]
    fn bigrams_included_when_configured() {
        let mut c = cfg();
        c.ngram_max = 2;
        let v = TfidfVectorizer::fit(&corpus(), c);
        assert!(v.term_id("feel_hopeless").is_some());
    }

    #[test]
    fn stemming_folds_variants() {
        let docs = vec!["sleeping badly", "sleeps badly", "sleep badly"];
        let mut c = cfg();
        c.stem = true;
        let v = TfidfVectorizer::fit(&docs, c);
        assert!(v.term_id("sleep").is_some());
        assert!(v.term_id("sleeping").is_none());
    }

    #[test]
    fn oov_transform_is_empty() {
        let v = TfidfVectorizer::fit(&corpus(), cfg());
        let x = v.transform("zzz qqq www");
        assert!(x.is_empty());
    }

    #[test]
    fn transform_csr_matches_per_doc_transform() {
        let v = TfidfVectorizer::fit(&corpus(), cfg());
        let docs = corpus();
        let m = v.transform_csr(&docs);
        assert_eq!(m.n_rows(), docs.len());
        assert_eq!(m.n_cols(), v.n_features());
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(m.row_to_sparse(i), v.transform(d), "row {i}");
        }
    }
}
