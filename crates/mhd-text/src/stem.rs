//! A complete Porter stemmer (Porter, 1980).
//!
//! Implements all five steps of the original algorithm over ASCII lowercase
//! words. Non-ASCII or very short inputs are returned unchanged. The stemmer
//! is used by the TF-IDF vectorizer and the lexicon matcher so that surface
//! variants ("sleeping", "sleeps", "slept"*) collapse onto shared stems.
//!
//! *Irregular forms are of course not handled by suffix stripping; the
//! lexicons list them explicitly.

/// Stem a single lowercase word with the Porter algorithm.
///
/// ```
/// use mhd_text::stem::stem;
/// assert_eq!(stem("caresses"), "caress");
/// assert_eq!(stem("ponies"), "poni");
/// assert_eq!(stem("relational"), "relat");
/// assert_eq!(stem("hopelessness"), "hopeless");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5(&mut w);
    // Lossy is a no-op for the ASCII bytes the steps produce, and keeps the
    // tokenizer→stemmer path panic-free even on adversarial input.
    String::from_utf8_lossy(&w).into_owned()
}

fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// The "measure" m of the stem `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — completes one VC.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// cvc pattern at the end, where the final c is not w, x, or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let (a, b, c) = (len - 3, len - 2, len - 1);
    is_consonant(w, a)
        && !is_consonant(w, b)
        && is_consonant(w, c)
        && !matches!(w[c], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends with `suffix` and the preceding stem has measure > `min_m`,
/// replace the suffix with `repl` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &str, repl: &str, min_m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > min_m {
            w.truncate(stem_len);
            w.extend_from_slice(repl.as_bytes());
        }
        true // Suffix matched (even if measure condition failed) — stop trying others.
    } else {
        false
    }
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1); // eed → ee
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

const STEP2_RULES: &[(&str, &str)] = &[
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
];

fn step2(w: &mut Vec<u8>) {
    for (suffix, repl) in STEP2_RULES {
        if replace_if_m(w, suffix, repl, 0) {
            return;
        }
    }
}

const STEP3_RULES: &[(&str, &str)] = &[
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
];

fn step3(w: &mut Vec<u8>) {
    for (suffix, repl) in STEP3_RULES {
        if replace_if_m(w, suffix, repl, 0) {
            return;
        }
    }
}

const STEP4_SUFFIXES: &[&str] = &[
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou", "ism",
    "ate", "iti", "ous", "ive", "ize",
];

fn step4(w: &mut Vec<u8>) {
    // Special case: (s|t)ion.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len >= 1 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in STEP4_SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5(w: &mut Vec<u8>) {
    // Step 5a.
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
    // Step 5b.
    if ends_with(w, "ll") && measure(w, w.len()) > 1 {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        // Reference pairs from Porter's paper and the standard test vocabulary.
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input})");
        }
    }

    #[test]
    fn mental_health_vocabulary() {
        assert_eq!(stem("sleeping"), "sleep");
        assert_eq!(stem("sleeps"), "sleep");
        assert_eq!(stem("crying"), "cry");
        assert_eq!(stem("worthless"), stem("worthless"));
        assert_eq!(stem("anxieties"), stem("anxieti"));
        // Same stem for inflection families that matter downstream.
        assert!(stem("panicking").starts_with("panick"));
        assert_eq!(stem("depressed"), "depress");
        assert_eq!(stem("depression"), "depress");
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
    }

    #[test]
    fn non_ascii_unchanged() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("Sad"), "Sad"); // uppercase → returned as-is
    }

    #[test]
    fn idempotent_on_common_words() {
        for w in ["sleep", "depress", "hope", "tired", "alone"] {
            let once = stem(w);
            let twice = stem(&once);
            assert_eq!(once, twice, "stem not idempotent for {w}");
        }
    }
}
