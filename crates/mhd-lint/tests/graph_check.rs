//! Call-graph rule fixtures: a miniature multi-crate workspace under
//! `tests/fixtures/graph/` exercising R6 (direct, two-hop, and cross-crate
//! panic chains), R7 (an environment read feeding a report sink), and R8
//! (a stale allow is flagged; a live allow is not).
//!
//! The fixture paths deliberately mirror real workspace layout
//! (`crates/<crate>/src/<mod>.rs`) so module-path derivation, `use`
//! resolution, and the lexical scope lists all behave exactly as they do on
//! the real tree.

use mhd_lint::{lint_source, lint_workspace, Finding, LintConfig, RuleId};
use std::path::Path;

/// Load every fixture file as a `(workspace-relative path, source)` pair.
fn fixture_workspace() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph");
    let mut out = Vec::new();
    collect(&root, &root, &mut out);
    out.sort();
    assert_eq!(out.len(), 9, "fixture tree changed shape");
    out
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    for entry in std::fs::read_dir(dir).expect("fixture dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel =
                path.strip_prefix(root).expect("under root").to_string_lossy().replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path).expect("fixture readable")));
        }
    }
}

fn findings() -> Vec<Finding> {
    lint_workspace(&fixture_workspace(), &LintConfig::default())
}

fn pins(fs: &[Finding]) -> Vec<(RuleId, String, usize)> {
    fs.iter().map(|f| (f.rule, f.path.clone(), f.line)).collect()
}

/// The whole fixture set produces exactly these findings — nothing more
/// (the live allow in scale.rs suppresses its panic and survives R8).
#[test]
fn graph_fixture_findings_pinned() {
    assert_eq!(
        pins(&findings()),
        vec![
            (RuleId::R7, "crates/mhd-core/src/cfg.rs".to_string(), 3),
            (RuleId::R8, "crates/mhd-core/src/stale.rs".to_string(), 1),
            (RuleId::R6, "crates/mhd-models/src/wide.rs".to_string(), 15),
            (RuleId::R6, "crates/mhd-obs/src/export.rs".to_string(), 17),
            (RuleId::R6, "crates/mhd-serve/src/pool.rs".to_string(), 4),
            (RuleId::R6, "crates/mhd-serve/src/restart.rs".to_string(), 26),
            (RuleId::R6, "crates/mhd-text/src/scale.rs".to_string(), 8),
        ]
    );
}

/// The self-healing fixture: `ModelZoo::load_resilient` (the restart-path
/// R6 root added with the fault plane) reaches an `unwrap` in the remap
/// helper. No pre-restart root calls the helper — drop `load_resilient`
/// from the root list and the finding disappears — so this pins that the
/// recovery surfaces themselves are inside the panic-freedom contract.
#[test]
fn r6_flags_panic_on_restart_path_only() {
    // restart.rs standalone is outside every lexical scope list: no R2.
    let src = "fn remap_shard(path: &str) -> Vec<u8> {\n    vec![*path.as_bytes().first().unwrap()]\n}\n";
    let lexical = lint_source("crates/mhd-serve/src/restart.rs", src, &LintConfig::default());
    assert!(lexical.iter().all(|f| f.rule != RuleId::R2), "{lexical:?}");

    let fs = findings();
    let f = fs
        .iter()
        .find(|f| f.rule == RuleId::R6 && f.path.ends_with("restart.rs"))
        .expect("restart-path R6 finding");
    assert_eq!(f.line, 26);
    assert!(f.message.contains("load_resilient"), "{}", f.message);
    assert!(f.message.contains("remap_shard"), "{}", f.message);
}

/// A panic directly inside an entry-point fn is a one-hop chain.
#[test]
fn r6_direct_chain() {
    let fs = findings();
    let f = fs
        .iter()
        .find(|f| f.rule == RuleId::R6 && f.path.ends_with("wide.rs"))
        .expect("direct R6 finding");
    assert_eq!(f.line, 15);
    assert!(f.message.contains("forward_batch"), "{}", f.message);
}

/// The acceptance-criterion fixture: a panic two hops away, in another
/// crate, reachable from `predict_proba_batch` — in a file that is in no
/// lexical scope list, so only the call graph can see it.
#[test]
fn r6_flags_cross_crate_panic_reachable_from_predict_proba_batch() {
    // First establish the file really is outside every lexical scope list:
    // the same source linted standalone raises no R2 at all.
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    let lexical = lint_source("crates/mhd-text/src/scale.rs", src, &LintConfig::default());
    assert!(lexical.iter().all(|f| f.rule != RuleId::R2), "{lexical:?}");

    // ...and yet the workspace-level R6 walks the chain
    // predict_proba_batch → normalize → peak and flags the unwrap.
    let fs = findings();
    let f = fs
        .iter()
        .find(|f| f.rule == RuleId::R6 && f.path.ends_with("scale.rs"))
        .expect("cross-crate R6 finding");
    assert_eq!(f.line, 8);
    assert!(f.message.contains("predict_proba_batch"), "{}", f.message);
    assert!(f.message.contains("normalize"), "{}", f.message);
    assert!(f.message.contains("peak"), "{}", f.message);
}

/// An environment read in a helper fn is flagged because a report sink
/// (`mhd_core::report::write_summary`) transitively calls it.
#[test]
fn r7_env_read_feeding_report_sink() {
    let fs = findings();
    let f = fs.iter().find(|f| f.rule == RuleId::R7).expect("R7 finding");
    assert_eq!((f.path.as_str(), f.line), ("crates/mhd-core/src/cfg.rs", 3));
    assert!(f.message.contains("environment read"), "{}", f.message);
    assert!(f.message.contains("write_summary"), "{}", f.message);
}

/// A stale allow (nothing to suppress on its target line) is itself a
/// finding; the live allow in scale.rs is not.
#[test]
fn r8_stale_allow_flagged_live_allow_not() {
    let fs = findings();
    let stale: Vec<&Finding> = fs.iter().filter(|f| f.rule == RuleId::R8).collect();
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert_eq!(stale[0].path, "crates/mhd-core/src/stale.rs");
    assert!(stale[0].message.contains("allow(R1)"), "{}", stale[0].message);
    assert!(!fs.iter().any(|f| f.rule == RuleId::R8 && f.path.ends_with("scale.rs")));
}

/// The suppressed panic in clamp01 does not appear as an R6 finding (the
/// allow works at the workspace level too, not just per-file).
#[test]
fn r6_respects_allow_annotations() {
    let fs = findings();
    assert!(!fs.iter().any(|f| f.rule == RuleId::R6 && f.line == 13), "{fs:?}");
}

/// The serving-path fixture: `shard_loop` (an R6 root by module match on
/// `mhd_serve::service`) reaches an `unwrap` in the shard-pool helper.
/// service.rs itself is in the R2 lexical list and stays clean — the chain
/// is only visible to the call graph.
#[test]
fn r6_flags_panic_reachable_from_serve_shard_loop() {
    // pool.rs standalone is outside every lexical scope list: no R2.
    let src = "pub fn drain_one(batch: &[f64]) -> f64 {\n    *batch.first().unwrap()\n}\n";
    let lexical = lint_source("crates/mhd-serve/src/pool.rs", src, &LintConfig::default());
    assert!(lexical.iter().all(|f| f.rule != RuleId::R2), "{lexical:?}");

    let fs = findings();
    let f = fs
        .iter()
        .find(|f| f.rule == RuleId::R6 && f.path.ends_with("pool.rs"))
        .expect("serve-path R6 finding");
    assert_eq!(f.line, 4);
    assert!(f.message.contains("shard_loop"), "{}", f.message);
    assert!(f.message.contains("drain_one"), "{}", f.message);
}

/// The telemetry fixture: `Exporter::poll` (an R6 root added with the
/// live-telemetry layer) reaches an `unwrap` in a row-encoding helper.
/// export.rs is in no lexical scope list, so the chain is only visible
/// to the call graph — a panic here would kill the background poller
/// thread and silently end the time series.
#[test]
fn r6_flags_panic_reachable_from_exporter_poll() {
    // export.rs standalone is outside every lexical scope list: no R2.
    let src = "fn encode_row(rows: &[u64]) -> String {\n    format!(\"{}\", rows.first().unwrap())\n}\n";
    let lexical = lint_source("crates/mhd-obs/src/export.rs", src, &LintConfig::default());
    assert!(lexical.iter().all(|f| f.rule != RuleId::R2), "{lexical:?}");

    let fs = findings();
    let f = fs
        .iter()
        .find(|f| f.rule == RuleId::R6 && f.path.ends_with("export.rs"))
        .expect("telemetry-path R6 finding");
    assert_eq!(f.line, 17);
    assert!(f.message.contains("poll"), "{}", f.message);
    assert!(f.message.contains("encode_row"), "{}", f.message);
}

/// SARIF output for the fixture set round-trips rule ids and locations.
#[test]
fn sarif_output_contains_graph_rules() {
    let sarif = mhd_lint::render_sarif(&findings());
    assert!(sarif.contains("\"id\":\"R6\""));
    assert!(sarif.contains("\"ruleId\":\"R7\""));
    assert!(sarif.contains("\"ruleId\":\"R8\""));
    assert!(sarif.contains("crates/mhd-text/src/scale.rs"));
    assert!(sarif.contains("\"startLine\":8"));
}
