//! Fixture tests pinning exact rule ids and line numbers for every rule
//! family, the allow-annotation suppression behaviour, and — via
//! [`repo_at_head_is_clean`] — the acceptance criterion that the linter
//! exits 0 on the repository at HEAD.

use mhd_lint::{lint_source, render_json, run_check, LintConfig, RuleId};
use std::path::Path;

/// Lint a fixture under a synthetic non-test path (fixtures live under
/// `tests/fixtures/`, which the real walk excludes and which the test-path
/// heuristic would otherwise exempt).
fn lint_fixture(name: &str) -> Vec<(RuleId, usize)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    lint_source(&format!("src/{name}"), &src, &LintConfig { all_files: true })
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn r1_violations_pinned() {
    assert_eq!(
        lint_fixture("r1_violating.rs"),
        vec![
            (RuleId::R1, 1),  // HashMap import
            (RuleId::R1, 4),  // SystemTime::now
            (RuleId::R1, 8),  // Instant::now
            (RuleId::R1, 12), // thread_rng
            (RuleId::R1, 16), // HashMap in a signature
            (RuleId::R5, 3),  // SystemTime in a return type
            (RuleId::R5, 4),  // SystemTime (the type, independent of ::now)
            (RuleId::R5, 7),  // Instant in a return type
            (RuleId::R5, 8),  // Instant (the type, independent of ::now)
        ]
    );
}

#[test]
fn r1_clean_is_clean() {
    assert_eq!(lint_fixture("r1_clean.rs"), vec![]);
}

#[test]
fn r2_violations_pinned() {
    assert_eq!(
        lint_fixture("r2_violating.rs"),
        vec![
            (RuleId::R2, 2),  // xs[0]
            (RuleId::R2, 6),  // unwrap
            (RuleId::R2, 10), // expect
            (RuleId::R2, 14), // panic!
            (RuleId::R2, 18), // unreachable!
        ]
    );
}

#[test]
fn r2_clean_is_clean() {
    assert_eq!(lint_fixture("r2_clean.rs"), vec![]);
}

/// Kernel-shaped code (Workspace pool + gemm entry): the panics that the
/// batched training layer must never contain.
#[test]
fn r2_kernel_violations_pinned() {
    assert_eq!(
        lint_fixture("r2_kernel_violating.rs"),
        vec![
            (RuleId::R2, 9),  // Workspace::zeros pop().unwrap()
            (RuleId::R2, 16), // bufs[0]
            (RuleId::R2, 22), // panic! on a shape mismatch
            (RuleId::R2, 24), // .expect on first()
            (RuleId::R2, 25), // out[0]
        ]
    );
}

/// The kernel file is R2-scoped by *path*, not just under `all_files`;
/// its crate siblings stay out of scope.
#[test]
fn gemm_kernel_path_is_in_r2_scope() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    // The serving forward path (mlp.rs / encoder.rs) joined the lexical R2
    // scope alongside the kernels, so the fast path agrees with R6.
    for path in ["crates/mhd-nn/src/gemm.rs", "crates/mhd-nn/src/mlp.rs", "crates/mhd-nn/src/encoder.rs"] {
        let hot = lint_source(path, src, &LintConfig::default());
        let pins: Vec<(RuleId, usize)> = hot.into_iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(pins, vec![(RuleId::R2, 2)], "{path}");
    }
    let cold = lint_source("crates/mhd-nn/src/lora.rs", src, &LintConfig::default());
    assert!(cold.iter().all(|f| f.rule != RuleId::R2), "{cold:?}");
}

/// The int8 serving kernels and the checkpoint container joined the R2
/// scope when they landed: a panic during serving or a zoo load is as
/// fatal to a sweep as one inside the training gemm.
#[test]
fn quant_and_checkpoint_paths_are_in_r2_scope() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    for path in ["crates/mhd-nn/src/quant.rs", "crates/mhd-nn/src/checkpoint.rs"] {
        let hot = lint_source(path, src, &LintConfig::default());
        let pins: Vec<(RuleId, usize)> = hot.into_iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(pins, vec![(RuleId::R2, 2)], "{path}");
    }
}

#[test]
fn r3_violations_pinned() {
    assert_eq!(lint_fixture("r3_violating.rs"), vec![(RuleId::R3, 6)]);
}

/// A guard held across `par_chunks_mut` — the fan-out primitive the gemm
/// kernel actually uses — is caught by its dedicated marker.
#[test]
fn r3_kernel_violations_pinned() {
    assert_eq!(lint_fixture("r3_kernel_violating.rs"), vec![(RuleId::R3, 8)]);
}

#[test]
fn r3_clean_is_clean() {
    assert_eq!(lint_fixture("r3_clean.rs"), vec![]);
}

#[test]
fn r4_violations_pinned() {
    assert_eq!(lint_fixture("r4_violating.rs"), vec![(RuleId::R4, 2), (RuleId::R4, 6)]);
}

#[test]
fn r4_clean_is_clean() {
    assert_eq!(lint_fixture("r4_clean.rs"), vec![]);
}

#[test]
fn r5_violations_pinned() {
    assert_eq!(
        lint_fixture("r5_violating.rs"),
        vec![
            (RuleId::R5, 1), // Instant in the use item
            (RuleId::R5, 1), // SystemTime in the same use item
            (RuleId::R5, 4), // Instant as a struct field type
            (RuleId::R5, 7), // SystemTime in a return type
            (RuleId::R5, 8), // SystemTime::UNIX_EPOCH
        ]
    );
}

#[test]
fn r5_clean_is_clean() {
    assert_eq!(lint_fixture("r5_clean.rs"), vec![]);
}

/// mhd-obs is the sanctioned timing facade: exempt from R5 (and the R1
/// clock check). mhd-bench keeps its R1 clock exemption but is still
/// forbidden from naming the clock types directly — it must go through
/// `mhd_obs::time::Stopwatch`.
#[test]
fn clock_types_allowed_only_inside_mhd_obs() {
    let src = "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let obs = lint_source("crates/mhd-obs/src/time.rs", src, &LintConfig::default());
    assert!(obs.is_empty(), "{obs:?}");
    let bench = lint_source("crates/mhd-bench/src/bin/nn_bench.rs", src, &LintConfig::default());
    let pins: Vec<(RuleId, usize)> = bench.into_iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(pins, vec![(RuleId::R5, 1), (RuleId::R5, 2)]);
    let core = lint_source("crates/mhd-core/src/report.rs", src, &LintConfig::default());
    assert!(core.iter().any(|f| f.rule == RuleId::R1), "core keeps the R1 clock check");
    assert!(core.iter().any(|f| f.rule == RuleId::R5), "core also gets R5");
}

#[test]
fn allow_annotations_suppress_all_rule_families() {
    assert_eq!(lint_fixture("allowed.rs"), vec![]);
}

#[test]
fn missing_reason_is_reported_and_does_not_suppress() {
    let findings = lint_fixture("bad_allow.rs");
    assert_eq!(findings, vec![(RuleId::R0, 2), (RuleId::R2, 2)]);
}

#[test]
fn json_output_round_trips_fixture_findings() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r2_violating.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let findings = lint_source("src/r2_violating.rs", &src, &LintConfig { all_files: true });
    let json = render_json(&findings);
    assert!(json.contains("\"rule\":\"R2\""));
    assert!(json.contains("\"file\":\"src/r2_violating.rs\""));
    assert!(json.contains("\"line\":2"));
    assert!(json.ends_with("\"total\":5}"));
}

/// The acceptance criterion: `cargo run -p mhd-lint -- check` exits 0 at
/// HEAD. Running the same check here keeps the guarantee under `cargo test`.
#[test]
fn repo_at_head_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = run_check(&root, &LintConfig::default()).expect("walk ok");
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        mhd_lint::render_text(&findings)
    );
}
