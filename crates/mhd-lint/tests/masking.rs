//! Regression fixtures for the lexer's masking of hashed raw strings and
//! nested block comments, plus the alignment invariants every rule scanner
//! depends on (line numbers in findings are only trustworthy if masking
//! never drifts the text against the original).
//!
//! The `cr#"…"#` cases pin the fix for the raw-C-string gap: the `c` prefix
//! used to defeat raw-string detection, so the plain-string handler closed
//! the literal at the first interior `"` and hashed content leaked into the
//! masked view as code (and real code after it could get swallowed).

use mhd_lint::source::SourceFile;

fn masked(src: &str) -> Vec<String> {
    SourceFile::parse("a.rs", src).lines
}

#[test]
fn hashed_raw_strings_mask_content_and_keep_code() {
    // Embedded "# with fewer hashes than the fence stays inside the literal.
    let m = masked("let a = r##\"text \"# panic!() more\"##; thread_rng();\n");
    assert!(!m[0].contains("panic"), "{:?}", m[0]);
    assert!(m[0].contains("thread_rng"), "{:?}", m[0]);

    // Multi-line hashed raw string: content masked, line structure kept.
    let m = masked("let s = r##\"l1\n\"# l2 unwrap()\n\"##;\nthread_rng();\n");
    assert!(!m[1].contains("unwrap"), "{m:?}");
    assert!(m[3].contains("thread_rng"), "{m:?}");

    // A candidate closing with more hashes than the fence does not close early.
    let m = masked("let s = r###\"x\"## y\"###; thread_rng();\n");
    assert!(m[0].contains("thread_rng"), "{m:?}");
    assert!(!m[0].contains(" y\""), "{m:?}");

    // Raw byte strings take the same path.
    let m = masked("let s = br##\"panic!()\"##; thread_rng();\n");
    assert!(!m[0].contains("panic"), "{m:?}");
    assert!(m[0].contains("thread_rng"), "{m:?}");
}

#[test]
fn raw_c_strings_are_masked() {
    // The regression: an interior `"` inside cr#"…"# used to terminate the
    // literal early, exposing `panic!()` as code and masking the real
    // `thread_rng()` call that follows the literal.
    let m = masked("let s = cr#\"has \" quote panic!()\"#; thread_rng();\n");
    assert!(!m[0].contains("panic"), "{:?}", m[0]);
    assert!(m[0].contains("thread_rng"), "{:?}", m[0]);

    // Unhashed raw C string: no escape processing, closes at the first `"`.
    let m = masked("let s = cr\"a\\\"; unwrap();\n");
    assert!(m[0].contains("unwrap"), "{:?}", m[0]);

    // Plain C string.
    let m = masked("let s = c\"panic!()\"; thread_rng();\n");
    assert!(!m[0].contains("panic"), "{:?}", m[0]);
    assert!(m[0].contains("thread_rng"), "{:?}", m[0]);

    // An identifier ending in `c`/`r` followed by a literal is not a prefix.
    let m = masked("let cr = 1; vec![cr];\n");
    assert!(m[0].contains("vec![cr]"), "{:?}", m[0]);
    let sf = SourceFile::parse("a.rs", "let s = cr#\"x\"#;\n");
    assert_eq!(sf.strings.len(), 1);
    assert_eq!(sf.strings[0].content, "x");
}

#[test]
fn nested_block_comments_mask_to_the_matching_close() {
    // Single-line nesting: the first `*/` closes only the inner comment.
    let m = masked("/* outer /* inner unwrap() */ still panic!() */ thread_rng();\n");
    assert!(!m[0].contains("unwrap"), "{:?}", m[0]);
    assert!(!m[0].contains("panic"), "{:?}", m[0]);
    assert!(m[0].contains("thread_rng"), "{:?}", m[0]);

    // Nesting across lines, with code resuming mid-line after the close.
    let m = masked("/* a\n/* b unwrap() */\nc panic!() */ thread_rng();\nInstant::now();\n");
    assert!(!m[1].contains("unwrap"), "{m:?}");
    assert!(!m[2].contains("panic"), "{m:?}");
    assert!(m[2].contains("thread_rng"), "{m:?}");
    assert!(m[3].contains("Instant"), "{m:?}");

    // Immediately-adjacent delimiters.
    let m = masked("/*/* unwrap() */*/ thread_rng();\n");
    assert!(!m[0].contains("unwrap"), "{:?}", m[0]);
    assert!(m[0].contains("thread_rng"), "{:?}", m[0]);

    // Star-heavy content around an inner comment.
    let m = masked("/** doc /* inner */ tail **/ thread_rng();\n");
    assert!(m[0].contains("thread_rng"), "{:?}", m[0]);
}

/// Masking must never change the text length or move a newline: every rule
/// anchors findings by (line, content) of the masked view.
#[test]
fn masking_preserves_length_and_newlines() {
    let cases = [
        "let a = r##\"x \"# y\"##; f();\n",
        "let a = r###\"x\"## y\"###;\n",
        "let a = cr#\"x \" y\"#; f();\n",
        "let a = c\"x\"; f();\n",
        "/* a /* b */ c */ d();\n",
        "/*/* x */*/ y();\n",
        "let s = r#\"multi\nline \"# mid\nend\"#; g();\n",
        "let c = '\\u{1f600}'; let d = '\\'';\n",
        "\"abc\\\ndef\" code();\n",
        "let r#type = r#\"v\"#;\n",
        "/** doc /* i */ t **/ h();\n",
        "r\"#\" r#\"\"# r##\"\"\"## b\"x\" br#\"y\"# cr#\"z\"#\n",
    ];
    for src in cases {
        let sf = SourceFile::parse("a.rs", src);
        let m: String = sf.lines.join("\n");
        assert_eq!(m.chars().count(), src.chars().count(), "length drift for {src:?}\nmasked: {m:?}");
        let nl = |s: &str| -> Vec<usize> {
            s.chars().enumerate().filter(|(_, c)| *c == '\n').map(|(i, _)| i).collect()
        };
        assert_eq!(nl(&m), nl(src), "newline drift for {src:?}\nmasked: {m:?}");
    }
}

/// The same invariant over every real workspace file: masking the entire
/// repo must be length- and newline-stable.
#[test]
fn workspace_masking_is_alignment_stable() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = mhd_lint::walk::collect_rs_files(&root).expect("walk");
    assert!(!files.is_empty());
    for f in files {
        let src = std::fs::read_to_string(&f).expect("readable");
        let sf = SourceFile::parse(&f.to_string_lossy(), &src);
        let m: String = sf.lines.join("\n");
        assert_eq!(
            m.chars().count(),
            src.chars().count(),
            "mask length drift in {}",
            f.display()
        );
    }
}
