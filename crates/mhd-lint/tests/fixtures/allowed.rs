// mhd-lint: allow(R5) — fixture demonstrates the clock-type containment allow
pub fn when() -> std::time::SystemTime {
    // mhd-lint: allow(R1, R5) — fixture demonstrates the standalone annotation form
    std::time::SystemTime::now()
}

pub fn parse(x: Option<u32>) -> u32 {
    x.unwrap() // mhd-lint: allow(R2) — fixture demonstrates the trailing annotation form
}

pub fn cell(x: f64) -> String {
    format!("{x:.3}") // mhd-lint: allow(R4) — the helper crate is not available in this fixture
}

use std::sync::{Mutex, PoisonError};

pub fn fan_out(m: &Mutex<Vec<u64>>, xs: &[u64]) -> u64 {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    let base = guard.iter().sum::<u64>();
    // mhd-lint: allow(R3) — fixture: the guard is read-only and released right after the fan-out
    let extra: u64 = xs.par_iter().map(|&x| x + base).sum();
    extra
}
