use mhd_eval::table::{fmt3, fmt_pct};

pub fn cell(x: f64) -> String {
    fmt3(x)
}

pub fn pct(x: f64) -> String {
    fmt_pct(x)
}
