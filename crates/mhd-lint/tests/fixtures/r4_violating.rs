pub fn cell(x: f64) -> String {
    format!("{x:.3}")
}

pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
