use std::collections::BTreeMap;

pub fn emit(rows: &BTreeMap<String, f64>) -> Vec<String> {
    rows.keys().cloned().collect()
}
