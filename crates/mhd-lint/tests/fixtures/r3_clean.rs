use std::sync::{Mutex, PoisonError};

pub fn fan_out(m: &Mutex<Vec<u64>>, xs: &[u64]) -> u64 {
    let base = {
        let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
        guard.iter().sum::<u64>()
    };
    let extra: u64 = xs.par_iter().map(|&x| x + base).sum();
    extra
}
