pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn parse(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
