use mhd_obs::time::Stopwatch;

pub fn measure<F: FnOnce()>(f: F) -> u64 {
    let t = Stopwatch::start();
    f();
    t.elapsed_ns()
}
