//! Fixture: two-hop cross-crate panic chain, plus a live (non-stale) allow.
pub fn normalize(xs: &[f64]) -> Vec<f64> {
    let m = peak(xs);
    xs.iter().map(|x| clamp01(x / m)).collect()
}

fn peak(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn clamp01(x: f64) -> f64 {
    // mhd-lint: allow(R6) — fixture: documented panicking helper with a pinned contract
    if !(0.0..=1.0).contains(&x) { panic!("clamp01 out of range") } else { x }
}
