//! Fixture: a telemetry exporter whose window close reaches an `unwrap`
//! in a row-encoding helper. `Exporter::poll` is an R6 root (it runs on
//! the background poller thread, where a panic silently kills the time
//! series); export.rs is in no lexical scope list, so only the call
//! graph can see the chain.
pub struct Exporter {
    rows: Vec<u64>,
}

impl Exporter {
    pub fn poll(&mut self) -> String {
        encode_row(&self.rows)
    }
}

fn encode_row(rows: &[u64]) -> String {
    format!("{}", rows.first().unwrap())
}
