//! Fixture: serving-surface entry points in a file outside every lexical scope list.
use mhd_text::scale::normalize;

pub struct Wide {
    dim: usize,
}

impl Wide {
    pub fn predict_proba_batch(&self, xs: &[f64]) -> Vec<f64> {
        normalize(xs)
    }

    pub fn forward_batch(&self, xs: &[f64]) -> Vec<f64> {
        if xs.len() % self.dim != 0 {
            panic!("ragged batch");
        }
        xs.to_vec()
    }
}
