//! Fixture: environment read outside the sink module but inside its call tree.
pub fn budget() -> usize {
    std::env::var("MHD_FIXTURE_BUDGET").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}
