// mhd-lint: allow(R1) — fixture: the clock read this excused is long gone
pub fn quiet() -> u32 {
    7
}
