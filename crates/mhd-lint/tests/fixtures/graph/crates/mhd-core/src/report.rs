//! Fixture: report sink whose call tree reads the environment.
use crate::cfg::budget;

pub fn write_summary() -> usize {
    budget()
}
