//! Fixture: shard-pool helper outside every lexical scope list. The
//! `unwrap` here is reachable from the `shard_loop` R6 root in service.rs.
pub fn drain_one(batch: &[f64]) -> f64 {
    *batch.first().unwrap()
}
