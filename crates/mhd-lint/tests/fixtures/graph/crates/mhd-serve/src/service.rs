//! Fixture: online-serving entry points (`Service::submit`, `shard_loop`).
//! This file IS in the R2 lexical scope list, so it must stay panic-free
//! itself; the panic it can reach lives one hop away in `pool.rs`, which is
//! in no lexical list — only the call graph can see the chain.
use crate::pool::drain_one;

pub struct Service {
    cap: usize,
}

impl Service {
    pub fn submit(&self, depth: usize) -> Result<(), usize> {
        if depth >= self.cap {
            return Err(self.cap);
        }
        Ok(())
    }
}

pub fn shard_loop(batches: &[Vec<f64>]) -> Vec<f64> {
    batches.iter().map(|b| drain_one(b)).collect()
}
