//! Fixture: the shard restart path. `ModelZoo::load_resilient` is an R6
//! root — the self-healing reload a supervised shard runs after a panic —
//! and the panic it can reach lives in the remap helper below, in a file
//! that is in no lexical scope list. No pre-restart root calls the helper,
//! so only the restart-path entry point makes the chain visible.

pub struct ModelZoo {
    bytes: Vec<u8>,
}

impl ModelZoo {
    pub fn load_resilient(path: &str, attempts: u32) -> ModelZoo {
        let mut last = Vec::new();
        for _ in 0..attempts {
            last = remap_shard(path);
        }
        ModelZoo { bytes: last }
    }

    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

fn remap_shard(path: &str) -> Vec<u8> {
    let header = path.as_bytes().first().unwrap();
    vec![*header]
}
