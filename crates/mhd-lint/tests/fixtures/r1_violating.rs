use std::collections::HashMap;

pub fn when() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn bench() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn noise() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn emit(rows: &HashMap<String, f64>) -> Vec<String> {
    rows.keys().cloned().collect()
}
