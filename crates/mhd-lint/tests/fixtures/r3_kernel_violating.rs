//! A lock guard held live across the kernel's `par_chunks_mut` fan-out:
//! the classic way to deadlock a reduction. Must fire R3.
use std::sync::Mutex;

pub fn reduce_grads(grads: &Mutex<Vec<f32>>, parts: &[f32], n: usize) {
    let sink = grads.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = vec![0.0f32; parts.len()];
    out.par_chunks_mut(n).enumerate().for_each(|(ci, chunk)| {
        for (o, &v) in chunk.iter_mut().zip(&parts[ci * n..]) {
            *o += v;
        }
    });
    drop(sink);
}
