use std::time::{Instant, SystemTime};

pub struct Timer {
    start: Instant,
}

pub fn epoch() -> SystemTime {
    SystemTime::UNIX_EPOCH
}
