pub fn first(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn parse(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn must(x: Result<u32, String>) -> u32 {
    x.expect("must hold")
}

pub fn explode() {
    panic!("boom");
}

pub fn off_the_map() {
    unreachable!();
}
