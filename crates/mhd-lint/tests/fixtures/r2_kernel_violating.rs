//! A gemm-style kernel with hot-path panics: each must fire R2 now that
//! the kernel layer is in the R2 path scope.
pub struct Workspace {
    bufs: Vec<Vec<f32>>,
}

impl Workspace {
    pub fn zeros(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.bufs.pop().unwrap();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    pub fn first_width(&self) -> usize {
        self.bufs[0].len()
    }
}

pub fn gemm_tn(a: &[f32], rows: usize, m: usize, out: &mut [f32]) {
    if rows * m > a.len() {
        panic!("a too short for rows x m");
    }
    let head = a.first().expect("non-empty input");
    out[0] = *head;
}
