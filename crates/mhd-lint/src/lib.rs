#![forbid(unsafe_code)]
//! # mhd-lint — project-specific static analysis for the mhd workspace
//!
//! PR 1 made the experiment engine concurrent (rayon sweeps, a process-wide
//! feature cache, a shared LLM client behind locks). The benchmark's headline
//! guarantee — **tables byte-identical at any `--jobs` count** — now rests on
//! invariants that nothing in `rustc` or clippy machine-checks. This crate
//! checks them. It parses every workspace `.rs` file with a small
//! self-contained lexer (no external dependencies, consistent with the
//! vendored-shim approach) and enforces five rule families:
//!
//! - **R1 — determinism**: no `SystemTime::now` / `Instant::now` outside the
//!   `mhd-bench` timing code, no `thread_rng`/`from_entropy`, and no
//!   `HashMap`/`HashSet` in the report/table-emission modules (use `BTreeMap`
//!   or sort explicitly before emitting rows).
//! - **R2 — panic-freedom**: no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` / indexing-by-integer-literal
//!   in non-test code on the evaluation hot path (`mhd-core::pipeline`,
//!   `mhd-core::experiments*`, `mhd-llm::client`, `mhd-text::sparse`). Steer
//!   to `PipelineError` / `LlmError` or lock-poison recovery instead.
//! - **R3 — lock discipline**: a `lock()` / `read()` / `write()` guard must
//!   not be live in the same scope as a `par_iter` / `spawn` / `install`
//!   call — holding a lock across a fan-out serializes the pool at best and
//!   deadlocks it at worst.
//! - **R4 — float-format hygiene**: report/CSV code must route float cells
//!   through the shared [`mhd_eval::table`] helpers (`fmt0`…`fmt4`,
//!   `fmt_pct`, `fmt_range1`) instead of inline `{:.N}` format strings, so
//!   tables stay byte-stable when a precision decision changes.
//! - **R5 — clock-type containment**: the `std::time` clock types
//!   (`Instant`, `SystemTime`) may appear only inside `crates/mhd-obs`, the
//!   sanctioned timing facade. Everything else — including `mhd-bench`,
//!   which R1 exempts from the `::now()` check — measures time through
//!   `mhd_obs::time::Stopwatch` / `StatTimer`, so wall-clock stays confined
//!   to the observability side channel.
//!
//! Deliberate exceptions are annotated in the source as
//!
//! ```text
//! // mhd-lint: allow(R2) — reason the exception is sound
//! ```
//!
//! either trailing the offending line or on the line directly above it. The
//! reason is mandatory; an annotation without one is itself reported (rule
//! id `R0`).
//!
//! Run as `cargo run -p mhd-lint -- check` (human text) or
//! `cargo run -p mhd-lint -- check --format json` (CI). Exit status is 0
//! when clean, 1 when findings exist, 2 on usage errors.
//!
//! Scope notes: `vendor/` (API-compatible offline shims of external crates),
//! `target/`, and `tests/fixtures/` directories are excluded from the walk;
//! test code (`#[cfg(test)]` modules, `#[test]` functions, files under
//! `tests/` or `benches/`) is exempt from every rule.

pub mod rules;
pub mod source;
pub mod walk;

use std::path::Path;

/// Identifier of a lint rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Meta rule: malformed `mhd-lint: allow(...)` annotation.
    R0,
    /// Determinism: wall-clock, ambient RNG, unordered map iteration.
    R1,
    /// Panic-freedom on the evaluation hot path.
    R2,
    /// Lock discipline around parallel regions.
    R3,
    /// Float-format hygiene in report code.
    R4,
    /// Clock-type containment: `std::time` types only inside mhd-obs.
    R5,
}

impl RuleId {
    /// All enforceable rule families (excludes the meta rule R0).
    pub const ALL: [RuleId; 5] = [RuleId::R1, RuleId::R2, RuleId::R3, RuleId::R4, RuleId::R5];

    /// Canonical rule id string.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::R0 => "R0",
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
        }
    }

    /// Parse a rule id (case-insensitive).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R0" => Some(RuleId::R0),
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            _ => None,
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family that fired.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// Linter configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Apply every rule to every file regardless of the built-in path
    /// scoping (used by the fixture tests).
    pub all_files: bool,
}

/// Lint one file's source text. `path` should be workspace-relative with
/// forward slashes; it drives the per-rule scoping.
pub fn lint_source(path: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let sf = source::SourceFile::parse(path, src);
    rules::lint_file(&sf, cfg)
}

/// Walk the workspace rooted at `root` and lint every in-scope `.rs` file.
/// Findings are sorted by `(path, line, rule)`.
pub fn run_check(root: &Path, cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    let files = walk::collect_rs_files(root)?;
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        findings.extend(lint_source(&rel, &src, cfg));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    Ok(findings)
}

/// Render findings as human-readable text (one block per finding).
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{} [{}] {}\n    fix: {}\n", f.path, f.line, f.rule, f.message, f.hint));
    }
    out.push_str(&format!(
        "mhd-lint: {} finding(s)\n",
        findings.len()
    ));
    out
}

/// Render findings as machine-readable JSON for CI.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
            f.rule,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.hint),
        ));
    }
    out.push_str(&format!("],\"total\":{}}}", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_id_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
            assert_eq!(RuleId::parse(&r.as_str().to_lowercase()), Some(r));
        }
        assert_eq!(RuleId::parse("R9"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_shape() {
        let f = Finding {
            rule: RuleId::R2,
            path: "x.rs".into(),
            line: 3,
            message: "m".into(),
            hint: "h".into(),
        };
        let j = render_json(&[f]);
        assert!(j.contains("\"rule\":\"R2\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.ends_with("\"total\":1}"));
        assert_eq!(render_json(&[]), "{\"findings\":[],\"total\":0}");
    }
}
