#![forbid(unsafe_code)]
//! # mhd-lint — project-specific static analysis for the mhd workspace
//!
//! PR 1 made the experiment engine concurrent (rayon sweeps, a process-wide
//! feature cache, a shared LLM client behind locks). The benchmark's headline
//! guarantee — **tables byte-identical at any `--jobs` count** — now rests on
//! invariants that nothing in `rustc` or clippy machine-checks. This crate
//! checks them. It parses every workspace `.rs` file with a small
//! self-contained lexer (no external dependencies, consistent with the
//! vendored-shim approach) and enforces five rule families:
//!
//! - **R1 — determinism**: no `SystemTime::now` / `Instant::now` outside the
//!   `mhd-bench` timing code, no `thread_rng`/`from_entropy`, and no
//!   `HashMap`/`HashSet` in the report/table-emission modules (use `BTreeMap`
//!   or sort explicitly before emitting rows).
//! - **R2 — panic-freedom**: no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` / indexing-by-integer-literal
//!   in non-test code on the evaluation hot path (`mhd-core::pipeline`,
//!   `mhd-core::experiments*`, `mhd-llm::client`, `mhd-text::sparse`). Steer
//!   to `PipelineError` / `LlmError` or lock-poison recovery instead.
//! - **R3 — lock discipline**: a `lock()` / `read()` / `write()` guard must
//!   not be live in the same scope as a `par_iter` / `spawn` / `install`
//!   call — holding a lock across a fan-out serializes the pool at best and
//!   deadlocks it at worst.
//! - **R4 — float-format hygiene**: report/CSV code must route float cells
//!   through the shared [`mhd_eval::table`] helpers (`fmt0`…`fmt4`,
//!   `fmt_pct`, `fmt_range1`) instead of inline `{:.N}` format strings, so
//!   tables stay byte-stable when a precision decision changes.
//! - **R5 — clock-type containment**: the `std::time` clock types
//!   (`Instant`, `SystemTime`) may appear only inside `crates/mhd-obs`, the
//!   sanctioned timing facade. Everything else — including `mhd-bench`,
//!   which R1 exempts from the `::now()` check — measures time through
//!   `mhd_obs::time::Stopwatch` / `StatTimer`, so wall-clock stays confined
//!   to the observability side channel.
//!
//! Deliberate exceptions are annotated in the source as
//!
//! ```text
//! // mhd-lint: allow(R2) — reason the exception is sound
//! ```
//!
//! either trailing the offending line or on the line directly above it. The
//! reason is mandatory; an annotation without one is itself reported (rule
//! id `R0`).
//!
//! Run as `cargo run -p mhd-lint -- check` (human text) or
//! `cargo run -p mhd-lint -- check --format json` (CI). Exit status is 0
//! when clean, 1 when findings exist, 2 on usage errors.
//!
//! Scope notes: `vendor/` (API-compatible offline shims of external crates),
//! `target/`, and `tests/fixtures/` directories are excluded from the walk;
//! test code (`#[cfg(test)]` modules, `#[test]` functions, files under
//! `tests/` or `benches/`) is exempt from every rule.

pub mod graph;
pub mod parse;
pub mod rules;
pub mod source;
pub mod taint;
pub mod walk;

use std::path::Path;

/// Identifier of a lint rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Meta rule: malformed `mhd-lint: allow(...)` annotation.
    R0,
    /// Determinism: wall-clock, ambient RNG, unordered map iteration.
    R1,
    /// Panic-freedom on the evaluation hot path.
    R2,
    /// Lock discipline around parallel regions.
    R3,
    /// Float-format hygiene in report code.
    R4,
    /// Clock-type containment: `std::time` types only inside mhd-obs.
    R5,
    /// Transitive panic-reachability from declared entry points.
    R6,
    /// Determinism taint: nondeterministic sources feeding report sinks.
    R7,
    /// Suppression audit: `allow(...)` annotations that mask nothing.
    R8,
}

impl RuleId {
    /// All enforceable rule families (excludes the meta rule R0).
    pub const ALL: [RuleId; 8] = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R5,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
    ];

    /// Canonical rule id string.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::R0 => "R0",
            RuleId::R1 => "R1",
            RuleId::R2 => "R2",
            RuleId::R3 => "R3",
            RuleId::R4 => "R4",
            RuleId::R5 => "R5",
            RuleId::R6 => "R6",
            RuleId::R7 => "R7",
            RuleId::R8 => "R8",
        }
    }

    /// Parse a rule id (case-insensitive).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R0" => Some(RuleId::R0),
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            "R8" => Some(RuleId::R8),
            _ => None,
        }
    }

    /// One-line rule summary (SARIF rule metadata, `--explain` header).
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::R0 => "malformed mhd-lint allow annotation",
            RuleId::R1 => "determinism: no wall-clock, ambient RNG, or unordered map iteration in scoped code",
            RuleId::R2 => "panic-freedom on the evaluation hot path (lexical fast path)",
            RuleId::R3 => "lock discipline: no lock guard live across a parallel fan-out",
            RuleId::R4 => "float-format hygiene: report floats go through mhd_eval::table helpers",
            RuleId::R5 => "clock-type containment: std::time types only inside mhd-obs",
            RuleId::R6 => "transitive panic-reachability from serving/repro entry points",
            RuleId::R7 => "determinism taint: nondeterministic sources must not feed report sinks",
            RuleId::R8 => "suppression audit: every allow(...) must mask a live finding",
        }
    }

    /// Multi-paragraph explanation for `mhd-lint explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::R6 => {
                "R6 — transitive panic-reachability\n\n\
                 mhd-lint parses every workspace file into a symbol table (fns, impls,\n\
                 use imports, call expressions), assembles a cross-crate call graph, and\n\
                 walks it from the declared entry points: the repro binary's main,\n\
                 full_report / Artifact::generate, every predict_proba_batch and\n\
                 forward_batch impl, and Checkpoint::load. Any `.unwrap()`, `.expect(…)`,\n\
                 `panic!`, `unreachable!`, `todo!`, or `unimplemented!` reachable from\n\
                 one of them is a finding, reported with the full call chain.\n\n\
                 Unlike the lexical R2 (which stays as a fast path over a fixed file\n\
                 list), R6 scales by reachability: a new module wired into the serving\n\
                 path is covered the moment an edge reaches it — no list to maintain.\n\
                 Dispatch is resolved by method name across all impls (CHA), so the\n\
                 rule over-approximates; suppress a vetted site with\n\
                 `// mhd-lint: allow(R6) — reason` (R8 audits that the reason stays live)."
            }
            RuleId::R7 => {
                "R7 — determinism taint\n\n\
                 The benchmark's headline guarantee is byte-identical tables across\n\
                 runs and --jobs counts. R7 protects it structurally: nondeterministic\n\
                 sources — wall-clock reads, thread_rng/from_entropy, std::env reads,\n\
                 iteration over HashMap/HashSet — must not be transitively executed by\n\
                 a report sink (any fn in mhd_eval::table or mhd_core::report). Findings\n\
                 anchor at the source atom and carry the sink→source call chain.\n\n\
                 mhd-obs is exempt as the sanctioned timing facade, and mhd-bench clock\n\
                 reads are exempt (measuring time is its job). Value flows that bypass\n\
                 the sink's call tree (computing a timestamp and passing it in as data)\n\
                 are beyond the call-graph abstraction — see DESIGN.md §11.\n\
                 Suppress a vetted site with `// mhd-lint: allow(R7) — reason`."
            }
            RuleId::R8 => {
                "R8 — suppression audit\n\n\
                 Every `// mhd-lint: allow(<rules>) — reason` annotation must still mask\n\
                 at least one live finding: the linter re-runs all rules WITHOUT\n\
                 suppressions and checks that the annotated line raises one of the\n\
                 listed rules. An annotation that masks nothing is itself a finding —\n\
                 suppressions cannot rot after a refactor silently removes the code\n\
                 they excused. Fix by deleting the stale annotation (or narrowing its\n\
                 rule list). Annotations listing R8 itself are exempt from the audit\n\
                 (escape hatch for intentionally-kept tombstones)."
            }
            _ => self.summary(),
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule family that fired.
    pub rule: RuleId,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// Linter configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Apply every rule to every file regardless of the built-in path
    /// scoping (used by the fixture tests).
    pub all_files: bool,
}

/// Lint one file's source text with the lexical rules only (R0–R5). `path`
/// should be workspace-relative with forward slashes; it drives the per-rule
/// scoping. The graph rules (R6–R8) need the whole workspace — use
/// [`lint_workspace`].
pub fn lint_source(path: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let sf = source::SourceFile::parse(path, src);
    let raw = rules::lint_file(&sf, cfg);
    raw.into_iter().filter(|f| !sf.is_allowed(f.rule, f.line)).collect()
}

/// Lint a whole workspace given as `(path, source)` pairs: the lexical rules
/// per file, then the call-graph rules — R6 panic-reachability, R7
/// determinism taint — and finally the R8 suppression audit against the raw
/// (pre-suppression) findings. Findings are sorted by `(path, line, rule)`.
pub fn lint_workspace(inputs: &[(String, String)], cfg: &LintConfig) -> Vec<Finding> {
    let sources: Vec<source::SourceFile> =
        inputs.iter().map(|(p, s)| source::SourceFile::parse(p, s)).collect();
    let models: Vec<parse::FileModel> = sources.iter().map(parse::FileModel::build).collect();

    // Raw findings: every rule, suppressions NOT applied (R8 needs these).
    let mut raw: Vec<Finding> = Vec::new();
    for sf in &sources {
        raw.extend(rules::lint_file(sf, cfg));
    }
    let g = graph::CallGraph::build(&models);
    raw.extend(graph::check_r6(&g));
    raw.extend(taint::check_r7(&g));

    // Apply suppressions, then audit them.
    let by_path: std::collections::HashMap<&str, &source::SourceFile> =
        sources.iter().map(|sf| (sf.path.as_str(), sf)).collect();
    let mut findings: Vec<Finding> = raw
        .iter()
        .filter(|f| !by_path.get(f.path.as_str()).is_some_and(|sf| sf.is_allowed(f.rule, f.line)))
        .cloned()
        .collect();
    findings.extend(audit_suppressions(&sources, &raw));
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    findings
}

/// R8: every well-formed allow annotation must mask at least one raw finding
/// of a rule it lists on its target line. Annotations listing R8 itself are
/// exempt (the escape hatch, and it keeps the audit from recursing on its
/// own output).
fn audit_suppressions(sources: &[source::SourceFile], raw: &[Finding]) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in sources {
        for ann in &sf.annotations {
            if ann.rules.contains(&RuleId::R8) {
                continue;
            }
            let live = ann.rules.iter().any(|r| {
                raw.iter().any(|f| f.rule == *r && f.path == sf.path && f.line == ann.target)
            });
            if !live {
                let listed: Vec<&str> = ann.rules.iter().map(|r| r.as_str()).collect();
                out.push(Finding {
                    rule: RuleId::R8,
                    path: sf.path.clone(),
                    line: ann.line,
                    message: format!(
                        "stale suppression: allow({}) masks no live finding on line {}",
                        listed.join(", "),
                        ann.target,
                    ),
                    hint: "delete the annotation (the code it excused is gone) or narrow its rule list".to_string(),
                });
            }
        }
    }
    out
}

/// Walk the workspace rooted at `root` and lint every in-scope `.rs` file
/// with all rule families. Findings are sorted by `(path, line, rule)`.
pub fn run_check(root: &Path, cfg: &LintConfig) -> Result<Vec<Finding>, String> {
    Ok(lint_workspace(&read_workspace(root)?, cfg))
}

/// Render the workspace call graph rooted at `root` as Graphviz dot
/// (`mhd-lint check --graph dot`). Entry points are boxes, panic-holding
/// fns red, R7 sinks blue; test fns are omitted.
pub fn render_dot(root: &Path) -> Result<String, String> {
    let sources: Vec<source::SourceFile> = read_workspace(root)?
        .iter()
        .map(|(p, s)| source::SourceFile::parse(p, s))
        .collect();
    let models: Vec<parse::FileModel> = sources.iter().map(parse::FileModel::build).collect();
    Ok(graph::CallGraph::build(&models).to_dot())
}

/// Read every in-scope `.rs` file under `root` as `(relative path, source)`.
pub fn read_workspace(root: &Path) -> Result<Vec<(String, String)>, String> {
    let files = walk::collect_rs_files(root)?;
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        out.push((rel, src));
    }
    Ok(out)
}

/// Render findings as human-readable text (one block per finding).
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{} [{}] {}\n    fix: {}\n", f.path, f.line, f.rule, f.message, f.hint));
    }
    out.push_str(&format!(
        "mhd-lint: {} finding(s)\n",
        findings.len()
    ));
    out
}

/// Render findings as machine-readable JSON for CI.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
            f.rule,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.hint),
        ));
    }
    out.push_str(&format!("],\"total\":{}}}", findings.len()));
    out
}

/// Render findings as SARIF 2.1.0 (one run, one result per finding) for CI
/// code-scanning upload.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"mhd-lint\",\"rules\":[",
    );
    let mut rules: Vec<RuleId> = vec![RuleId::R0];
    rules.extend(RuleId::ALL);
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            r,
            json_escape(r.summary()),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            f.rule,
            json_escape(&format!("{} (fix: {})", f.message, f.hint)),
            json_escape(&f.path),
            f.line,
        ));
    }
    out.push_str("]}]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_id_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
            assert_eq!(RuleId::parse(&r.as_str().to_lowercase()), Some(r));
        }
        assert_eq!(RuleId::parse("R9"), None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_shape() {
        let f = Finding {
            rule: RuleId::R2,
            path: "x.rs".into(),
            line: 3,
            message: "m".into(),
            hint: "h".into(),
        };
        let j = render_json(&[f]);
        assert!(j.contains("\"rule\":\"R2\""));
        assert!(j.contains("\"line\":3"));
        assert!(j.ends_with("\"total\":1}"));
        assert_eq!(render_json(&[]), "{\"findings\":[],\"total\":0}");
    }
}
