//! Source model: a small self-contained Rust lexer and line classifier.
//!
//! The lexer produces a **masked** view of the file — comments and
//! string/char literal *contents* replaced by spaces, with the line structure
//! preserved — so the rule scanners can match code tokens without tripping
//! over prose. String literal contents are kept separately (R4 inspects
//! format strings), as are comments (allow annotations live there).

use crate::RuleId;

/// A string literal's content, anchored to the line it starts on.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Literal content (escapes kept verbatim).
    pub content: String,
}

/// One well-formed `mhd-lint: allow(...)` annotation, for the R8 audit.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based line the comment lives on.
    pub line: usize,
    /// 1-based line the suppression applies to.
    pub target: usize,
    /// Rules the annotation suppresses.
    pub rules: Vec<RuleId>,
}

/// A parsed source file ready for rule scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Masked code, split into lines (same line numbering as the original).
    pub lines: Vec<String>,
    /// String literals (content + start line).
    pub strings: Vec<StrLit>,
    test_lines: Vec<bool>,
    allows: Vec<Vec<RuleId>>,
    /// Well-formed allow annotations, in file order (audited by R8).
    pub annotations: Vec<Annotation>,
    /// Malformed allow annotations: `(line, problem)`.
    pub bad_annotations: Vec<(usize, String)>,
}

impl SourceFile {
    /// Lex and classify `src`.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let lines: Vec<String> = lexed.masked.split('\n').map(str::to_string).collect();
        let n = lines.len();
        let whole_file_test = is_test_path(path);
        let test_lines = compute_test_lines(&lexed.masked, whole_file_test, n);
        let mut allows = vec![Vec::new(); n + 1];
        let mut annotations = Vec::new();
        let mut bad_annotations = Vec::new();
        for (line, text) in &lexed.comments {
            match parse_allow(text) {
                None => {}
                Some(Err(problem)) => bad_annotations.push((*line, problem)),
                Some(Ok(rules)) => {
                    let target = annotation_target(&lines, *line);
                    if target <= n {
                        allows[target].extend(rules.iter().copied());
                    }
                    annotations.push(Annotation { line: *line, target, rules });
                }
            }
        }
        SourceFile {
            path: path.to_string(),
            lines,
            strings: lexed.strings,
            test_lines,
            allows,
            annotations,
            bad_annotations,
        }
    }

    /// Is `line` (1-based) inside test code?
    pub fn is_test(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Is `rule` allow-annotated on `line`?
    pub fn is_allowed(&self, rule: RuleId, line: usize) -> bool {
        self.allows.get(line).is_some_and(|rs| rs.contains(&rule))
    }
}

/// Whole files under `tests/` or `benches/` directories are test code.
fn is_test_path(path: &str) -> bool {
    let p = format!("/{}", path.replace('\\', "/"));
    p.contains("/tests/") || p.contains("/benches/")
}

struct Lexed {
    masked: String,
    comments: Vec<(usize, String)>,
    strings: Vec<StrLit>,
}

/// Mask comments and literal contents, preserving newlines and code tokens.
fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut strings: Vec<StrLit> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let mut text = String::new();
            while i < b.len() && b[i] != '\n' {
                text.push(b[i]);
                out.push(' ');
                i += 1;
            }
            comments.push((line, text));
            continue;
        }
        // Block comment (nesting per the Rust grammar).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            out.push(' ');
            out.push(' ');
            i += 2;
            let mut text = String::new();
            let start_line = line;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    text.push(b[i]);
                    i += 1;
                }
            }
            comments.push((start_line, text));
            continue;
        }
        // Raw strings with any prefix from the b/c family: r"..", r#".."#,
        // br#".."#, cr#".."# (raw C strings, whose `c` prefix would otherwise
        // defeat raw detection and let hashed content leak into the masked
        // view as code).
        if (c == 'r' || ((c == 'b' || c == 'c') && b.get(i + 1) == Some(&'r')))
            && !(i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_'))
        {
            let mut j = i + if c == 'r' { 1 } else { 2 };
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                for &ch in &b[i..=j] {
                    out.push(ch);
                }
                let start_line = line;
                let mut content = String::new();
                let mut k = j + 1;
                while k < b.len() {
                    if b[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && b.get(k + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            out.push('"');
                            out.extend(std::iter::repeat_n('#', hashes));
                            k += 1 + hashes;
                            break;
                        }
                    }
                    if b[k] == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    content.push(b[k]);
                    k += 1;
                }
                strings.push(StrLit { line: start_line, content });
                i = k;
                continue;
            }
            // Not a raw string ("r" as identifier start): fall through.
        }
        // Plain strings, with optional b/c prefix (byte and C strings).
        if c == '"'
            || ((c == 'b' || c == 'c')
                && b.get(i + 1) == Some(&'"')
                && !(i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')))
        {
            if c != '"' {
                out.push(c);
                i += 1;
            }
            out.push('"');
            i += 1;
            let start_line = line;
            let mut content = String::new();
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    content.push(b[i]);
                    content.push(b[i + 1]);
                    out.push(' ');
                    if b[i + 1] == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                content.push(b[i]);
                i += 1;
            }
            strings.push(StrLit { line: start_line, content });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                // Escaped char literal, e.g. '\n', '\'', '\u{1f600}'.
                out.push('\'');
                out.push(' ');
                out.push(' ');
                i += 3;
                while i < b.len() && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
                if i < b.len() {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') && b.get(i + 1).is_some_and(|&x| x != '\'') {
                // Plain char literal 'x'.
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime: keep the quote, scan on.
            out.push('\'');
            i += 1;
            continue;
        }
        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }
    Lexed { masked: out.into_iter().collect(), comments, strings }
}

/// Mark every line that belongs to `#[cfg(test)]` / `#[test]` items.
fn compute_test_lines(masked: &str, whole_file_test: bool, n_lines: usize) -> Vec<bool> {
    let mut flags = vec![whole_file_test; n_lines + 1];
    if whole_file_test {
        return flags;
    }
    let b: Vec<char> = masked.chars().collect();
    let mut line = 1usize;
    let mut depth = 0i64;
    let mut armed = false;
    let mut armed_line = 0usize;
    let mut region_close: Option<i64> = None;
    let mut region_start_line = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            '\n' => {
                line += 1;
                i += 1;
            }
            '#' if b.get(i + 1) == Some(&'[') => {
                // Scan the attribute to its matching bracket.
                let mut j = i + 2;
                let mut bd = 1usize;
                let mut attr = String::new();
                while j < b.len() && bd > 0 {
                    match b[j] {
                        '[' => bd += 1,
                        ']' => bd -= 1,
                        '\n' => line += 1,
                        _ => {}
                    }
                    if bd > 0 {
                        attr.push(b[j]);
                    }
                    j += 1;
                }
                let a = attr.trim();
                if a == "test" || a.contains("cfg(test)") || a.contains("cfg(any(test") || a.contains("cfg(all(test") {
                    armed = true;
                    armed_line = line;
                }
                i = j;
            }
            '{' => {
                if armed && region_close.is_none() {
                    region_close = Some(depth);
                    region_start_line = armed_line;
                    armed = false;
                }
                depth += 1;
                i += 1;
            }
            '}' => {
                depth -= 1;
                if region_close == Some(depth) {
                    for flag in flags.iter_mut().take(line.min(n_lines) + 1).skip(region_start_line) {
                        *flag = true;
                    }
                    region_close = None;
                }
                i += 1;
            }
            ';' => {
                // `#[cfg(test)] use …;` — the item ended without a body.
                if region_close.is_none() {
                    armed = false;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    if region_close.is_some() {
        for flag in flags.iter_mut().take(n_lines + 1).skip(region_start_line) {
            *flag = true;
        }
    }
    flags
}

/// Parse one comment for an allow annotation.
///
/// Returns `None` when the comment is not an annotation, `Some(Err(..))`
/// when it is malformed, and `Some(Ok(rules))` when valid.
fn parse_allow(comment: &str) -> Option<Result<Vec<RuleId>, String>> {
    // Annotations are plain `//` comments. Doc comments (`///`, `//!`) are
    // prose and may legitimately *describe* the annotation syntax.
    let trimmed = comment.trim_start();
    if trimmed.starts_with("///") || trimmed.starts_with("//!") {
        return None;
    }
    let idx = comment.find("mhd-lint:")?;
    let rest = comment[idx + "mhd-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err("expected `allow(<rule>, …)` after `mhd-lint:`".to_string()));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed `allow(` annotation".to_string()));
    };
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        match RuleId::parse(part) {
            Some(r) => rules.push(r),
            None => return Some(Err(format!("unknown rule id `{}` in allow annotation", part.trim()))),
        }
    }
    if rules.is_empty() {
        return Some(Err("allow annotation lists no rules".to_string()));
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' '])
        .trim();
    if reason.is_empty() {
        return Some(Err("allow annotation needs a reason: `// mhd-lint: allow(R2) — why`".to_string()));
    }
    Some(Ok(rules))
}

/// The line an annotation applies to: its own line when it trails code,
/// otherwise the next line carrying code.
fn annotation_target(lines: &[String], comment_line: usize) -> usize {
    let own = lines.get(comment_line - 1).map(|l| !l.trim().is_empty()).unwrap_or(false);
    if own {
        return comment_line;
    }
    let mut l = comment_line + 1;
    while l <= lines.len() {
        if !lines[l - 1].trim().is_empty() {
            return l;
        }
        l += 1;
    }
    comment_line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"unwrap() inside\"; // thread_rng here\nlet y = 1;\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(!sf.lines[0].contains("unwrap"));
        assert!(!sf.lines[0].contains("thread_rng"));
        assert!(sf.lines[0].contains("let x ="));
        assert_eq!(sf.strings.len(), 1);
        assert_eq!(sf.strings[0].content, "unwrap() inside");
        assert_eq!(sf.strings[0].line, 1);
    }

    #[test]
    fn masks_raw_and_char_literals() {
        let src = "let s = r#\"panic!(\"x\")\"#;\nlet c = '\\n';\nlet l: &'static str = \"ok\";\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(!sf.lines[0].contains("panic"));
        assert!(sf.lines[2].contains("'static"));
        assert_eq!(sf.strings[0].content, "panic!(\"x\")");
    }

    #[test]
    fn block_comments_preserve_lines() {
        let src = "a\n/* unwrap()\n unwrap() */\nb\n";
        let sf = SourceFile::parse("a.rs", src);
        assert_eq!(sf.lines.len(), 5); // 4 lines + trailing empty
        assert_eq!(sf.lines[3].trim(), "b");
        assert!(!sf.lines[1].contains("unwrap"));
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\npub fn c() {}\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(!sf.is_test(1));
        assert!(sf.is_test(2));
        assert!(sf.is_test(3));
        assert!(sf.is_test(4));
        assert!(sf.is_test(5));
        assert!(!sf.is_test(6));
    }

    #[test]
    fn test_fn_region_detected() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    body();\n}\nfn z() {}\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(!sf.is_test(1));
        assert!(sf.is_test(4));
        assert!(!sf.is_test(6));
    }

    #[test]
    fn tests_dir_is_whole_file_test() {
        let sf = SourceFile::parse("tests/end_to_end.rs", "fn x() {}\n");
        assert!(sf.is_test(1));
        let sf = SourceFile::parse("crates/mhd-bench/benches/micro.rs", "fn x() {}\n");
        assert!(sf.is_test(1));
    }

    #[test]
    fn allow_trailing_and_preceding() {
        let src = "bad(); // mhd-lint: allow(R2) — trailing reason\n// mhd-lint: allow(R1, R3) — preceding reason\nnext();\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(sf.is_allowed(RuleId::R2, 1));
        assert!(!sf.is_allowed(RuleId::R1, 1));
        assert!(sf.is_allowed(RuleId::R1, 3));
        assert!(sf.is_allowed(RuleId::R3, 3));
        assert!(sf.bad_annotations.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "bad(); // mhd-lint: allow(R2)\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(!sf.is_allowed(RuleId::R2, 1));
        assert_eq!(sf.bad_annotations.len(), 1);
        assert_eq!(sf.bad_annotations[0].0, 1);
    }

    #[test]
    fn allow_unknown_rule_is_malformed() {
        let src = "// mhd-lint: allow(R9) — nope\nx();\n";
        let sf = SourceFile::parse("a.rs", src);
        assert_eq!(sf.bad_annotations.len(), 1);
    }

    #[test]
    fn plain_dash_reason_accepted() {
        let src = "bad(); // mhd-lint: allow(r2) - lowercase id, ascii dash\n";
        let sf = SourceFile::parse("a.rs", src);
        assert!(sf.is_allowed(RuleId::R2, 1));
    }
}
