#![forbid(unsafe_code)]
//! `mhd-lint` CLI — see the library docs for the rule set.
//!
//! ```text
//! cargo run -p mhd-lint -- check [--root <dir>] [--format text|json]
//! ```
//!
//! Exit status: 0 clean, 1 findings reported, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use mhd_lint::{render_json, render_text, run_check, LintConfig};

const USAGE: &str = "usage: mhd-lint check [--root <dir>] [--format text|json]";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mhd-lint: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("missing command".to_string()),
    }
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires `text` or `json`".to_string()),
            },
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Default to the workspace root the binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    if !root.is_dir() {
        return Err(format!("root `{}` is not a directory", root.display()));
    }
    let findings = run_check(&root, &LintConfig::default())?;
    match format {
        Format::Text => print!("{}", render_text(&findings)),
        Format::Json => println!("{}", render_json(&findings)),
    }
    Ok(if findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}
