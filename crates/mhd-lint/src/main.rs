#![forbid(unsafe_code)]
//! `mhd-lint` CLI — see the library docs for the rule set.
//!
//! ```text
//! cargo run -p mhd-lint -- check [--root <dir>] [--format text|json|sarif]
//! cargo run -p mhd-lint -- check [--root <dir>] --graph dot
//! cargo run -p mhd-lint -- explain <RULE>
//! ```
//!
//! Exit status: 0 clean, 1 findings reported, 2 usage/IO error.
//! `--graph dot` dumps the resolved call graph instead of linting and
//! always exits 0 on success (CI uses it as a parser smoke test).

use std::path::PathBuf;
use std::process::ExitCode;

use mhd_lint::{render_dot, render_json, render_sarif, render_text, run_check, LintConfig, RuleId};

const USAGE: &str = "usage: mhd-lint check [--root <dir>] [--format text|json|sarif] [--graph dot]\n       mhd-lint explain <RULE>";

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mhd-lint: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("explain") => {
            let id = it.next().ok_or("explain requires a rule id (R0..R8)")?;
            let rule = RuleId::parse(id).ok_or_else(|| format!("unknown rule `{id}`"))?;
            if it.next().is_some() {
                return Err("explain takes exactly one rule id".to_string());
            }
            println!("{} — {}\n\n{}", rule.as_str(), rule.summary(), rule.explain());
            return Ok(ExitCode::SUCCESS);
        }
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("missing command".to_string()),
    }
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut graph = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires `text`, `json`, or `sarif`".to_string()),
            },
            "--graph" => match it.next().map(String::as_str) {
                Some("dot") => graph = true,
                Some(other) => return Err(format!("unknown graph format `{other}`")),
                None => return Err("--graph requires `dot`".to_string()),
            },
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Default to the workspace root the binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    if !root.is_dir() {
        return Err(format!("root `{}` is not a directory", root.display()));
    }
    if graph {
        print!("{}", render_dot(&root)?);
        return Ok(ExitCode::SUCCESS);
    }
    let findings = run_check(&root, &LintConfig::default())?;
    match format {
        Format::Text => print!("{}", render_text(&findings)),
        Format::Json => println!("{}", render_json(&findings)),
        Format::Sarif => println!("{}", render_sarif(&findings)),
    }
    Ok(if findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}
