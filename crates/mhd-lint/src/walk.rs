//! Deterministic workspace walk: collect every in-scope `.rs` file.

use std::path::{Path, PathBuf};

/// Directory names never descended into. `vendor/` holds API-compatible
/// offline shims of external crates (not project code), `fixtures/` holds
/// deliberately-violating lint test inputs.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", ".claude"];

/// Recursively collect `.rs` files under `root`, sorted by path so findings
/// come out in a stable order on every run.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    descend(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn descend(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            descend(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_own_sources_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_rs_files(&root).expect("walk");
        let rels: Vec<String> = files
            .iter()
            .map(|f| f.strip_prefix(&root).unwrap().to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(rels.iter().any(|r| r == "crates/mhd-lint/src/walk.rs"), "{rels:?}");
        assert!(rels.iter().all(|r| !r.starts_with("vendor/")));
        assert!(rels.iter().all(|r| !r.contains("/fixtures/")));
        assert!(rels.iter().all(|r| !r.contains("/target/")));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk output must be sorted");
    }
}
