//! A lightweight Rust-subset parser over the masked source view.
//!
//! [`FileModel::build`] extracts, per file, the symbol table the graph rules
//! (R6–R8) consume: `fn` definitions with their module path and impl owner,
//! `use` imports, call expressions, and the "atoms" the repo's invariants
//! care about (panic sites, clock reads, ambient RNG, environment reads,
//! unordered-container iteration).
//!
//! This is deliberately *not* a full Rust parser. It runs on the lexer's
//! masked lines (comments and literal contents blanked), tracks brace scopes
//! for `mod` / `impl` / `trait` / `fn`, and recognizes calls by the
//! `ident(`, `.ident(` and `path::ident(` shapes. Known limits — documented
//! in DESIGN.md §11 and accepted for a linter that over-approximates:
//! closures attribute their calls to the enclosing `fn`; trait-object and
//! generic dispatch resolve by method *name* across every impl (a
//! class-hierarchy-style over-approximation); turbofish call sites
//! (`f::<T>()`) and macro-generated code are not seen.

use crate::source::SourceFile;

/// One token of masked source: an identifier/number word or one punct char.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier, keyword, or numeric literal, with its 1-based line.
    Word(String, usize),
    /// Single punctuation character, with its 1-based line.
    P(char, usize),
}

/// Atom families the graph rules track inside function bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    /// `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!` — aborts the process on the serving path.
    Panic,
    /// `Instant::now` / `SystemTime::now` — wall-clock read.
    Clock,
    /// `thread_rng` / `from_entropy` — OS-entropy RNG.
    Rng,
    /// `std::env::var` and friends — ambient process environment.
    Env,
    /// Iteration over a `HashMap`/`HashSet` binding — unspecified order.
    UnorderedIter,
}

/// One atom occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Atom {
    pub kind: AtomKind,
    /// 1-based source line.
    pub line: usize,
    /// The surface syntax that fired, e.g. `.unwrap()` or `thread_rng`.
    pub what: String,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Bare `f(…)`.
    Free,
    /// `recv.f(…)` where `recv` is not literally `self`.
    Method,
    /// `self.f(…)`.
    SelfMethod,
    /// `path::f(…)` — the path is kept in [`Call::qualifier`].
    Qualified,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Final path segment (the function or method name).
    pub name: String,
    /// `::`-joined path before the name for [`CallKind::Qualified`].
    pub qualifier: Option<String>,
    pub kind: CallKind,
    pub line: usize,
}

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Impl/trait type the fn is defined on, if any.
    pub owner: Option<String>,
    /// Module path of the surrounding scope, e.g. `mhd_core::pipeline`.
    pub module: String,
    pub start_line: usize,
    pub end_line: usize,
    /// True when the fn lives in test code (cfg(test) / #[test] / tests dir).
    pub is_test: bool,
    pub calls: Vec<Call>,
    pub atoms: Vec<Atom>,
}

impl FnDef {
    /// Fully-qualified display name, e.g. `mhd_nn::checkpoint::Checkpoint::load`.
    pub fn qname(&self) -> String {
        match &self.owner {
            Some(t) => format!("{}::{}::{}", self.module, t, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// One `use` binding: local `name` refers to full `path`.
#[derive(Debug, Clone)]
pub struct UseBinding {
    pub name: String,
    pub path: String,
}

/// The per-file symbol table.
#[derive(Debug)]
pub struct FileModel {
    pub path: String,
    /// Crate the file belongs to (`mhd_core`, `mhd` for the root package).
    pub crate_name: String,
    /// Module path of the file itself.
    pub module: String,
    pub uses: Vec<UseBinding>,
    pub fns: Vec<FnDef>,
}

/// Derive `(crate_name, module_path)` from a workspace-relative file path.
fn module_of(path: &str) -> (String, String) {
    let p = path.trim_start_matches("./");
    let (krate, rest) = if let Some(r) = p.strip_prefix("crates/") {
        match r.split_once('/') {
            Some((c, tail)) => (c.replace('-', "_"), tail),
            None => (r.replace('-', "_"), ""),
        }
    } else if p.starts_with("src/") || p.starts_with("tests/") || p.starts_with("examples/") {
        ("mhd".to_string(), p)
    } else {
        ("".to_string(), p)
    };
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let mut parts: Vec<String> = vec![krate.clone()];
    for seg in rest.split('/') {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if seg.is_empty() || seg == "lib" || seg == "main" || seg == "mod" {
            continue;
        }
        parts.push(seg.replace('-', "_"));
    }
    (krate, parts.join("::"))
}

fn tokenize(lines: &[String]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let ch: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < ch.len() {
            let c = ch[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < ch.len() && (ch[i].is_alphanumeric() || ch[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Word(ch[start..i].iter().collect(), lineno));
            } else {
                out.push(Tok::P(c, lineno));
                i += 1;
            }
        }
    }
    out
}

/// Words that look like calls (`kw(` …) but are control flow or types.
fn is_call_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "while" | "for" | "match" | "return" | "let" | "loop" | "move" | "in" | "as"
            | "ref" | "mut" | "else" | "break" | "continue" | "where" | "pub" | "use" | "mod"
            | "impl" | "trait" | "struct" | "enum" | "type" | "const" | "static" | "dyn" | "fn"
            | "crate" | "super" | "self" | "Self" | "unsafe" | "extern" | "async" | "await"
    )
}

const ITER_METHODS: [&str; 9] = [
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain", "par_iter",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// What a pending `{` will open.
#[derive(Debug, Clone)]
enum Pend {
    Mod(String),
    Impl(String),
    Trait(String),
    Fn { name: String, line: usize },
}

#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(String),
    Trait(String),
    Fn { fn_idx: usize },
    Block,
}

impl FileModel {
    /// Build the symbol table for one parsed file.
    pub fn build(sf: &SourceFile) -> FileModel {
        let (crate_name, module) = module_of(&sf.path);
        let toks = tokenize(&sf.lines);
        let unordered = unordered_bindings(&toks);
        let mut model = FileModel {
            path: sf.path.clone(),
            crate_name: crate_name.clone(),
            module: module.clone(),
            uses: Vec::new(),
            fns: Vec::new(),
        };
        let mut scopes: Vec<Scope> = Vec::new();
        let mut pend: Option<Pend> = None;
        let mut i = 0usize;
        while i < toks.len() {
            match &toks[i] {
                Tok::P('{', _) => {
                    let scope = match pend.take() {
                        Some(Pend::Mod(n)) => Scope::Mod(n),
                        Some(Pend::Impl(t)) => Scope::Impl(t),
                        Some(Pend::Trait(t)) => Scope::Trait(t),
                        Some(Pend::Fn { name, line }) => {
                            let owner = scopes.iter().rev().find_map(|s| match s {
                                Scope::Impl(t) | Scope::Trait(t) => Some(t.clone()),
                                _ => None,
                            });
                            let module = current_module(&module, &scopes);
                            model.fns.push(FnDef {
                                name,
                                owner,
                                module,
                                start_line: line,
                                end_line: line,
                                is_test: sf.is_test(line),
                                calls: Vec::new(),
                                atoms: Vec::new(),
                            });
                            Scope::Fn { fn_idx: model.fns.len() - 1 }
                        }
                        None => Scope::Block,
                    };
                    scopes.push(scope);
                    i += 1;
                }
                Tok::P('}', l) => {
                    if let Some(Scope::Fn { fn_idx }) = scopes.pop() {
                        model.fns[fn_idx].end_line = *l;
                    }
                    i += 1;
                }
                Tok::P(';', _) => {
                    // `fn decl(…);` in traits, `mod name;`, `use …;` ends.
                    pend = None;
                    i += 1;
                }
                Tok::Word(w, line) => {
                    let in_signature = matches!(pend, Some(Pend::Fn { .. }));
                    match w.as_str() {
                        "mod" if !in_signature => {
                            if let Some(Tok::Word(n, _)) = toks.get(i + 1) {
                                pend = Some(Pend::Mod(n.clone()));
                                i += 2;
                            } else {
                                i += 1;
                            }
                        }
                        "impl" if !in_signature && pend.is_none() => {
                            let (ty, next) = parse_impl_header(&toks, i + 1);
                            pend = Some(Pend::Impl(ty));
                            i = next;
                        }
                        "trait" if !in_signature && pend.is_none() => {
                            if let Some(Tok::Word(n, _)) = toks.get(i + 1) {
                                pend = Some(Pend::Trait(n.clone()));
                                i += 2;
                            } else {
                                i += 1;
                            }
                        }
                        "fn" if !in_signature => {
                            if let Some(Tok::Word(n, _)) = toks.get(i + 1) {
                                pend = Some(Pend::Fn { name: n.clone(), line: *line });
                                i += 2;
                            } else {
                                i += 1;
                            }
                        }
                        "use" if pend.is_none() => {
                            i = parse_use(&toks, i + 1, &crate_name, &module, &mut model.uses);
                        }
                        "for" => {
                            // `for pat in <unordered> {` — unordered iteration.
                            if let Some(fn_idx) = current_fn(&scopes) {
                                if let Some((name, l)) = for_loop_over(&toks, i, &unordered) {
                                    model.fns[fn_idx].atoms.push(Atom {
                                        kind: AtomKind::UnorderedIter,
                                        line: l,
                                        what: format!("for … in {name}"),
                                    });
                                }
                            }
                            i += 1;
                        }
                        _ => {
                            if let Some(fn_idx) = current_fn(&scopes) {
                                scan_call_site(&toks, i, &mut model.fns[fn_idx], &unordered);
                            }
                            i += 1;
                        }
                    }
                }
                _ => i += 1,
            }
        }
        model
    }
}

/// Innermost enclosing fn scope, if any.
fn current_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s {
        Scope::Fn { fn_idx } => Some(*fn_idx),
        _ => None,
    })
}

/// File module plus any inline `mod` scopes currently open.
fn current_module(file_module: &str, scopes: &[Scope]) -> String {
    let mut m = file_module.to_string();
    for s in scopes {
        if let Scope::Mod(n) = s {
            m.push_str("::");
            m.push_str(n);
        }
    }
    m
}

/// Parse an `impl` header starting after the `impl` keyword. Returns the
/// implemented type's base name and the index of the body `{` (or the token
/// to resume at).
fn parse_impl_header(toks: &[Tok], mut i: usize) -> (String, usize) {
    // Skip the generic parameter list directly after `impl`.
    if let Some(Tok::P('<', _)) = toks.get(i) {
        let mut depth = 0i64;
        while i < toks.len() {
            match toks[i] {
                Tok::P('<', _) => depth += 1,
                Tok::P('>', _) => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut first: Vec<String> = Vec::new();
    let mut second: Vec<String> = Vec::new();
    let mut after_for = false;
    let mut angle = 0i64;
    while i < toks.len() {
        match &toks[i] {
            Tok::P('{', _) | Tok::P(';', _) => break,
            Tok::P('<', _) => angle += 1,
            Tok::P('>', _) => angle -= 1,
            Tok::Word(w, _) if angle == 0 => match w.as_str() {
                "for" => after_for = true,
                "where" => break,
                "mut" | "dyn" | "const" => {}
                seg => {
                    if after_for {
                        second.push(seg.to_string());
                    } else {
                        first.push(seg.to_string());
                    }
                }
            },
            _ => {}
        }
        i += 1;
    }
    // Resume at the `{` / `;` / `where` so header tokens are not re-scanned.
    let path = if after_for { &second } else { &first };
    let ty = path.last().cloned().unwrap_or_default();
    (ty, i)
}

/// Parse a `use` item starting after the `use` keyword; extends `out` with
/// `name → full path` bindings and returns the index after the closing `;`.
fn parse_use(toks: &[Tok], mut i: usize, crate_name: &str, module: &str, out: &mut Vec<UseBinding>) -> usize {
    // `pub use` arrives here with i at `use`+1 already; a leading `pub` was a
    // separate Word token consumed by the main loop's default arm.
    fn tree(
        toks: &[Tok],
        mut i: usize,
        prefix: &mut Vec<String>,
        crate_name: &str,
        module: &str,
        out: &mut Vec<UseBinding>,
    ) -> usize {
        let depth_at_entry = prefix.len();
        loop {
            match toks.get(i) {
                Some(Tok::Word(w, _)) if w == "as" => {
                    // alias: `path as name`
                    if let Some(Tok::Word(alias, _)) = toks.get(i + 1) {
                        emit(prefix, Some(alias.clone()), crate_name, module, out);
                        prefix.truncate(depth_at_entry.saturating_sub(0));
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Some(Tok::Word(w, _)) => {
                    prefix.push(w.clone());
                    i += 1;
                }
                Some(Tok::P(':', _)) => i += 1,
                Some(Tok::P('*', _)) => {
                    // glob: record the module itself under a `*` marker.
                    emit_glob(prefix, crate_name, module, out);
                    i += 1;
                }
                Some(Tok::P('{', _)) => {
                    i += 1;
                    loop {
                        let before = prefix.len();
                        i = tree(toks, i, prefix, crate_name, module, out);
                        prefix.truncate(before);
                        match toks.get(i) {
                            Some(Tok::P(',', _)) => i += 1,
                            Some(Tok::P('}', _)) => {
                                i += 1;
                                break;
                            }
                            _ => break,
                        }
                    }
                    return i;
                }
                Some(Tok::P(',', _)) | Some(Tok::P('}', _)) => {
                    if prefix.len() > depth_at_entry {
                        emit(prefix, None, crate_name, module, out);
                    }
                    return i;
                }
                Some(Tok::P(';', _)) | None => {
                    if prefix.len() > depth_at_entry {
                        emit(prefix, None, crate_name, module, out);
                    }
                    return i;
                }
                _ => i += 1,
            }
        }
    }

    fn resolve_prefix(segs: &[String], crate_name: &str, module: &str) -> Vec<String> {
        let mut segs = segs.to_vec();
        match segs.first().map(String::as_str) {
            Some("crate") => segs[0] = crate_name.to_string(),
            Some("self") => {
                segs.remove(0);
                let mut m: Vec<String> = module.split("::").map(str::to_string).collect();
                m.extend(segs);
                segs = m;
            }
            Some("super") => {
                segs.remove(0);
                let mut m: Vec<String> = module.split("::").map(str::to_string).collect();
                m.pop();
                m.extend(segs);
                segs = m;
            }
            _ => {}
        }
        segs
    }

    fn emit(prefix: &[String], alias: Option<String>, crate_name: &str, module: &str, out: &mut Vec<UseBinding>) {
        let segs = resolve_prefix(prefix, crate_name, module);
        if let Some(last) = segs.last() {
            out.push(UseBinding {
                name: alias.unwrap_or_else(|| last.clone()),
                path: segs.join("::"),
            });
        }
    }

    fn emit_glob(prefix: &[String], crate_name: &str, module: &str, out: &mut Vec<UseBinding>) {
        let segs = resolve_prefix(prefix, crate_name, module);
        out.push(UseBinding { name: "*".to_string(), path: segs.join("::") });
    }

    let mut prefix = Vec::new();
    i = tree(toks, i, &mut prefix, crate_name, module, out);
    // Skip to just past the terminating `;`.
    while let Some(t) = toks.get(i) {
        i += 1;
        if matches!(t, Tok::P(';', _)) {
            break;
        }
    }
    i
}

/// Names bound to `HashMap`/`HashSet` in this file (let bindings, struct
/// fields, fn params) — coarse, file-wide, for the UnorderedIter atom.
fn unordered_bindings(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    // Walk once, remembering the most recent `ident :` and `let [mut] ident`.
    let mut last_colon_ident: Option<String> = None;
    let mut last_let_ident: Option<String> = None;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            Tok::Word(w, _) if w == "let" => {
                let mut j = i + 1;
                if let Some(Tok::Word(m, _)) = toks.get(j) {
                    if m == "mut" {
                        j += 1;
                    }
                }
                if let Some(Tok::Word(n, _)) = toks.get(j) {
                    last_let_ident = Some(n.clone());
                }
            }
            Tok::Word(w, _) if w == "HashMap" || w == "HashSet" => {
                if let Some(n) = last_colon_ident.take() {
                    names.push(n);
                }
                if let Some(n) = last_let_ident.take() {
                    names.push(n);
                }
            }
            Tok::Word(w, _) => {
                if let (Some(Tok::P(':', _)), false) = (toks.get(i + 1), is_call_keyword(w)) {
                    last_colon_ident = Some(w.clone());
                }
            }
            Tok::P(';', _) | Tok::P('{', _) | Tok::P('}', _) => {
                last_colon_ident = None;
                last_let_ident = None;
            }
            _ => {}
        }
        i += 1;
    }
    names.sort();
    names.dedup();
    names
}

/// Smart-pointer/guard adapters that a receiver chain may pass through
/// without changing which binding is being iterated.
const GUARD_ADAPTERS: [&str; 8] =
    ["unwrap", "expect", "lock", "read", "write", "borrow", "borrow_mut", "as_ref"];

/// Base identifier of the receiver of the method call whose name token is at
/// `i` (so `toks[i-1]` is the `.`). Walks left through field accesses and
/// guard-adapter calls: `self.cache.keys()` → `cache`,
/// `map.lock().unwrap().iter()` → `map`. Returns `None` when the receiver is
/// an arbitrary expression (e.g. `builtin_models().into_iter()`).
fn receiver_ident(toks: &[Tok], i: usize) -> Option<String> {
    let mut p = i.checked_sub(2)?;
    loop {
        match &toks[p] {
            Tok::Word(w, _) => return Some(w.clone()),
            Tok::P(')', _) => {
                // Skip the balanced argument list, then require a
                // guard-adapter call name followed by another `.` link.
                let mut depth = 0i64;
                loop {
                    match &toks[p] {
                        Tok::P(')', _) => depth += 1,
                        Tok::P('(', _) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    p = p.checked_sub(1)?;
                }
                p = p.checked_sub(1)?;
                let Tok::Word(call, _) = &toks[p] else { return None };
                if !GUARD_ADAPTERS.contains(&call.as_str()) {
                    return None;
                }
                p = p.checked_sub(1)?;
                if !matches!(toks[p], Tok::P('.', _)) {
                    return None;
                }
                p = p.checked_sub(1)?;
            }
            _ => return None,
        }
    }
}

/// Detect `for pat in [&[mut]] <unordered-ident> {` starting at the `for`.
fn for_loop_over(toks: &[Tok], i: usize, unordered: &[String]) -> Option<(String, usize)> {
    // Find the `in` keyword within a short window (patterns are small).
    let mut j = i + 1;
    let mut steps = 0;
    while j < toks.len() && steps < 24 {
        if let Tok::Word(w, _) = &toks[j] {
            if w == "in" {
                let mut k = j + 1;
                while let Some(Tok::P(c, _)) = toks.get(k) {
                    if *c == '&' {
                        k += 1;
                    } else {
                        break;
                    }
                }
                if let Some(Tok::Word(m, _)) = toks.get(k) {
                    if m == "mut" {
                        k += 1;
                    }
                }
                if let (Some(Tok::Word(n, l)), Some(Tok::P('{', _))) = (toks.get(k), toks.get(k + 1)) {
                    if unordered.iter().any(|u| u == n) {
                        return Some((n.clone(), *l));
                    }
                }
                return None;
            }
        }
        j += 1;
        steps += 1;
    }
    None
}

/// Examine the word at `i` for call-expression and atom shapes, recording
/// into `fnd`.
fn scan_call_site(toks: &[Tok], i: usize, fnd: &mut FnDef, unordered: &[String]) {
    let Tok::Word(name, line) = &toks[i] else { return };
    let line = *line;

    // Macro atoms: `panic!(…)` etc.
    if let Some(Tok::P('!', _)) = toks.get(i + 1) {
        if PANIC_MACROS.contains(&name.as_str()) {
            fnd.atoms.push(Atom { kind: AtomKind::Panic, line, what: format!("{name}!") });
        }
        return;
    }

    // Everything below requires a call shape `name(`.
    if !matches!(toks.get(i + 1), Some(Tok::P('(', _))) {
        return;
    }
    if is_call_keyword(name) || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return;
    }

    // Classify by what precedes the name.
    let prev = i.checked_sub(1).map(|p| &toks[p]);
    let prev2 = i.checked_sub(2).map(|p| &toks[p]);
    let (kind, qualifier) = match (prev2, prev) {
        (_, Some(Tok::P('.', _))) => {
            let is_self = matches!(
                (i.checked_sub(2).map(|p| &toks[p]), i.checked_sub(3).map(|p| &toks[p])),
                (Some(Tok::Word(s, _)), not_field) if s == "self"
                    && !matches!(not_field, Some(Tok::P('.', _)))
            );
            (if is_self { CallKind::SelfMethod } else { CallKind::Method }, None)
        }
        (Some(Tok::P(':', _)), Some(Tok::P(':', _))) => {
            let mut segs: Vec<String> = Vec::new();
            let mut p = i;
            // Walk back over `seg::seg::` pairs.
            while p >= 3
                && matches!(toks.get(p - 1), Some(Tok::P(':', _)))
                && matches!(toks.get(p - 2), Some(Tok::P(':', _)))
            {
                if let Some(Tok::Word(s, _)) = toks.get(p - 3) {
                    segs.push(s.clone());
                    p -= 3;
                } else {
                    break;
                }
            }
            segs.reverse();
            if segs.is_empty() {
                (CallKind::Free, None)
            } else {
                (CallKind::Qualified, Some(segs.join("::")))
            }
        }
        _ => (CallKind::Free, None),
    };

    // Atoms derived from the call shape.
    match (kind, name.as_str()) {
        (CallKind::Method | CallKind::SelfMethod, "unwrap" | "expect") => {
            fnd.atoms.push(Atom { kind: AtomKind::Panic, line, what: format!(".{name}()") });
        }
        (CallKind::Qualified, "now") => {
            let q = qualifier.as_deref().unwrap_or("");
            if q.ends_with("Instant") || q.ends_with("SystemTime") {
                fnd.atoms.push(Atom { kind: AtomKind::Clock, line, what: format!("{q}::now") });
            }
        }
        (_, "thread_rng" | "from_entropy") => {
            fnd.atoms.push(Atom { kind: AtomKind::Rng, line, what: name.clone() });
        }
        (CallKind::Qualified, "var" | "var_os" | "vars" | "args" | "args_os" | "temp_dir") => {
            let q = qualifier.as_deref().unwrap_or("");
            if q == "env" || q.ends_with("::env") {
                fnd.atoms.push(Atom { kind: AtomKind::Env, line, what: format!("{q}::{name}") });
            }
        }
        (CallKind::Method | CallKind::SelfMethod, m) if ITER_METHODS.contains(&m) => {
            // Unordered iteration when the receiver resolves to a known
            // HashMap/HashSet binding (covers `x.iter()`, `self.x.iter()`,
            // and guard chains like `x.lock().unwrap().iter()`).
            if let Some(recv) = receiver_ident(toks, i) {
                if unordered.iter().any(|u| u == &recv) {
                    fnd.atoms.push(Atom {
                        kind: AtomKind::UnorderedIter,
                        line,
                        what: format!("{recv}.{m}()"),
                    });
                }
            }
        }
        _ => {}
    }

    fnd.calls.push(Call { name: name.clone(), qualifier, kind, line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(path: &str, src: &str) -> FileModel {
        FileModel::build(&SourceFile::parse(path, src))
    }

    #[test]
    fn module_paths_derived_from_file_paths() {
        assert_eq!(module_of("crates/mhd-core/src/pipeline.rs"), ("mhd_core".into(), "mhd_core::pipeline".into()));
        assert_eq!(module_of("crates/mhd-nn/src/lib.rs"), ("mhd_nn".into(), "mhd_nn".into()));
        assert_eq!(
            module_of("crates/mhd-bench/src/bin/repro.rs"),
            ("mhd_bench".into(), "mhd_bench::bin::repro".into())
        );
        assert_eq!(module_of("src/lib.rs"), ("mhd".into(), "mhd".into()));
        assert_eq!(module_of("examples/quickstart.rs"), ("mhd".into(), "mhd::examples::quickstart".into()));
    }

    #[test]
    fn fns_with_owners_and_modules() {
        let src = "pub struct T;\nimpl T {\n    pub fn m(&self) {}\n}\npub fn free() {}\nmod inner {\n    pub fn nested() {}\n}\n";
        let m = model("crates/mhd-core/src/x.rs", src);
        let names: Vec<(String, Option<String>, String)> =
            m.fns.iter().map(|f| (f.name.clone(), f.owner.clone(), f.module.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("m".into(), Some("T".into()), "mhd_core::x".into()),
                ("free".into(), None, "mhd_core::x".into()),
                ("nested".into(), None, "mhd_core::x::inner".into()),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_owner() {
        let src = "impl<T: Clone> Detector for Engine<T> {\n    fn detect(&self) { self.helper() }\n}\n";
        let m = model("crates/mhd-core/src/y.rs", src);
        assert_eq!(m.fns[0].owner.as_deref(), Some("Engine"));
        assert_eq!(m.fns[0].calls.len(), 1);
        assert_eq!(m.fns[0].calls[0].kind, CallKind::SelfMethod);
    }

    #[test]
    fn impl_trait_in_return_type_does_not_confuse() {
        let src = "pub fn mk() -> impl Iterator<Item = u32> {\n    helper()\n}\n";
        let m = model("crates/mhd-core/src/z.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "mk");
        assert!(m.fns[0].calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn call_kinds_classified() {
        let src = "fn f() {\n    free();\n    obj.method();\n    self.own();\n    a::b::qual();\n    Type::assoc();\n}\n";
        let m = model("crates/mhd-core/src/c.rs", src);
        let calls = &m.fns[0].calls;
        let get = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(get("free").kind, CallKind::Free);
        assert_eq!(get("method").kind, CallKind::Method);
        assert_eq!(get("own").kind, CallKind::SelfMethod);
        assert_eq!(get("qual").kind, CallKind::Qualified);
        assert_eq!(get("qual").qualifier.as_deref(), Some("a::b"));
        assert_eq!(get("assoc").qualifier.as_deref(), Some("Type"));
    }

    #[test]
    fn atoms_detected() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n    let t = std::time::Instant::now();\n    let r = thread_rng();\n    let v = std::env::var(\"K\");\n}\n";
        let m = model("crates/mhd-core/src/a.rs", src);
        let kinds: Vec<AtomKind> = m.fns[0].atoms.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AtomKind::Panic, AtomKind::Panic, AtomKind::Panic, AtomKind::Clock, AtomKind::Rng, AtomKind::Env]
        );
        assert_eq!(m.fns[0].atoms[0].line, 2);
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_atom() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n    let v = o.unwrap_or_default();\n    let w = o.unwrap_or(3);\n}\n";
        let m = model("crates/mhd-core/src/b.rs", src);
        assert!(m.fns[0].atoms.is_empty(), "{:?}", m.fns[0].atoms);
    }

    #[test]
    fn unordered_iteration_detected() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut counts: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &counts {\n        let _ = (k, v);\n    }\n    let mut items: Vec<_> = counts.iter().collect();\n    items.sort();\n}\nstruct S { cache: HashMap<u32, u32> }\nimpl S {\n    fn g(&self) {\n        for k in self.cache.keys() {\n            let _ = k;\n        }\n    }\n}\n";
        let m = model("crates/mhd-core/src/u.rs", src);
        let f = &m.fns[0];
        let iters: Vec<&Atom> = f.atoms.iter().filter(|a| a.kind == AtomKind::UnorderedIter).collect();
        assert_eq!(iters.len(), 2, "{:?}", f.atoms);
        let g = &m.fns[1];
        assert!(
            g.atoms.iter().any(|a| a.kind == AtomKind::UnorderedIter),
            "field iteration: {:?}",
            g.atoms
        );
    }

    #[test]
    fn vec_iteration_is_ordered() {
        let src = "fn f(v: Vec<u32>) {\n    for x in &v {\n        let _ = x;\n    }\n    let s: u32 = v.iter().sum();\n}\n";
        let m = model("crates/mhd-core/src/v.rs", src);
        assert!(m.fns[0].atoms.is_empty(), "{:?}", m.fns[0].atoms);
    }

    #[test]
    fn receiver_chain_resolution() {
        // Guard chains keep the base binding; call-expression receivers and
        // ordered bindings on the same line do not fire.
        let src = "use std::collections::{HashMap, HashSet};\nstruct S { map: HashMap<u32, u32> }\nimpl S {\n    fn g(&self) {\n        for k in self.map.lock().unwrap().keys() { let _ = k; }\n        let unique: HashSet<u32> = terms.iter().collect();\n        let models = builtin_models().into_iter().count();\n        let _ = (unique, models);\n    }\n}\n";
        let m = model("crates/mhd-core/src/rc.rs", src);
        let iters: Vec<&Atom> =
            m.fns[0].atoms.iter().filter(|a| a.kind == AtomKind::UnorderedIter).collect();
        assert_eq!(iters.len(), 1, "{:?}", m.fns[0].atoms);
        assert_eq!(iters[0].what, "map.keys()");
    }

    #[test]
    fn use_bindings_parsed() {
        let src = "use mhd_nn::checkpoint::Checkpoint;\nuse mhd_models::{TextClassifier, logreg::LogisticRegression as LogReg};\nuse crate::features::FeatureCache;\nuse mhd_eval::table;\n";
        let m = model("crates/mhd-core/src/w.rs", src);
        let find = |n: &str| m.uses.iter().find(|u| u.name == n).map(|u| u.path.clone());
        assert_eq!(find("Checkpoint").as_deref(), Some("mhd_nn::checkpoint::Checkpoint"));
        assert_eq!(find("TextClassifier").as_deref(), Some("mhd_models::TextClassifier"));
        assert_eq!(find("LogReg").as_deref(), Some("mhd_models::logreg::LogisticRegression"));
        assert_eq!(find("FeatureCache").as_deref(), Some("mhd_core::features::FeatureCache"));
        assert_eq!(find("table").as_deref(), Some("mhd_eval::table"));
    }

    #[test]
    fn test_code_flagged() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let m = model("crates/mhd-core/src/t.rs", src);
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
    }

    #[test]
    fn closure_calls_attributed_to_enclosing_fn() {
        let src = "fn f(v: Vec<u32>) {\n    let out: Vec<u32> = v.iter().map(|x| helper(*x)).collect();\n    let _ = out;\n}\n";
        let m = model("crates/mhd-core/src/cl.rs", src);
        assert!(m.fns[0].calls.iter().any(|c| c.name == "helper"));
    }
}
