//! R7 determinism taint: nondeterministic sources must not feed the
//! report/table sinks through any call path.
//!
//! The call-graph approximation of "flows into": a source atom (clock read,
//! ambient RNG, environment read, unordered-container iteration) is a
//! finding when the fn holding it is **transitively called by a sink fn** —
//! i.e. some report or table function's output can depend on the
//! nondeterministic value. Value flows that pass *around* the sink (caller
//! reads a clock, then passes the value into a sink as data) are below this
//! abstraction; DESIGN.md §11 records the limit.
//!
//! Sanctioned exemptions, mirroring the lexical R1/R5 scoping:
//! - `mhd_obs` is the timing/observability facade — nothing inside it is a
//!   source (its whole point is to confine wall-clock reads);
//! - `mhd_bench` clock reads are not sources (benchmarks measure time; the
//!   measurement itself is the payload, not an invariant violation).

use crate::graph::CallGraph;
use crate::parse::AtomKind;
use crate::{Finding, RuleId};

/// Modules whose fns are R7 sinks: the shared table formatters and the
/// report writers that emit the byte-deterministic artifact.
pub const R7_SINK_MODULES: &[&str] = &["mhd_eval::table", "mhd_core::report"];

/// Is `module` inside a sink module (the module itself or a child)?
pub fn is_sink_module(module: &str) -> bool {
    R7_SINK_MODULES
        .iter()
        .any(|s| module == *s || module.starts_with(&format!("{s}::")))
}

/// Human name for a source atom family, used in finding messages.
fn kind_name(kind: AtomKind) -> &'static str {
    match kind {
        AtomKind::Clock => "wall-clock read",
        AtomKind::Rng => "ambient RNG",
        AtomKind::Env => "environment read",
        AtomKind::UnorderedIter => "unordered iteration",
        AtomKind::Panic => "panic",
    }
}

/// Is this atom exempt from being an R7 source in `crate_name`?
fn source_exempt(crate_name: &str, kind: AtomKind) -> bool {
    match crate_name {
        "mhd_obs" => true,
        "mhd_bench" => kind == AtomKind::Clock,
        _ => false,
    }
}

/// R7: no nondeterministic source atom may be transitively executed by a
/// report/table sink fn. Findings anchor at the atom and carry the chain
/// from the sink.
pub fn check_r7(g: &CallGraph) -> Vec<Finding> {
    let sinks: Vec<usize> = (0..g.node_count())
        .filter(|&n| !g.fn_of(n).is_test && is_sink_module(&g.fn_of(n).module))
        .collect();
    if sinks.is_empty() {
        return Vec::new();
    }
    let (visited, parent) = g.reach(&sinks);
    let mut out = Vec::new();
    for (n, &seen) in visited.iter().enumerate() {
        if !seen || g.fn_of(n).is_test {
            continue;
        }
        let chain = g.chain(&parent, n);
        let krate = g.fn_of(n).module.split("::").next().unwrap_or("").to_string();
        for atom in &g.fn_of(n).atoms {
            if atom.kind == AtomKind::Panic {
                continue;
            }
            if source_exempt(&krate, atom.kind) {
                continue;
            }
            out.push(Finding {
                rule: RuleId::R7,
                path: g.path_of(n).to_string(),
                line: atom.line,
                message: format!(
                    "{} `{}` in `{}` feeds report sink `{}`: {}",
                    kind_name(atom.kind),
                    atom.what,
                    g.qname(n),
                    chain[0],
                    chain.join(" → "),
                ),
                hint: "sort/order the data before it reaches the report path (BTreeMap, explicit sort), hoist the nondeterminism out of the sink's call tree, or annotate: // mhd-lint: allow(R7) — reason".to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::source::SourceFile;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files.iter().map(|(p, s)| FileModel::build(&SourceFile::parse(p, s))).collect()
    }

    #[test]
    fn sink_module_matching() {
        assert!(is_sink_module("mhd_eval::table"));
        assert!(is_sink_module("mhd_core::report"));
        assert!(is_sink_module("mhd_eval::table::inner"));
        assert!(!is_sink_module("mhd_eval::tables"));
        assert!(!is_sink_module("mhd_core::pipeline"));
    }

    #[test]
    fn r7_flags_source_executed_by_sink() {
        let ms = models(&[
            (
                "crates/mhd-eval/src/table.rs",
                "use mhd_text::vocab::order;\npub fn render() { order(); }\n",
            ),
            (
                "crates/mhd-text/src/vocab.rs",
                "use std::collections::HashMap;\npub fn order() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for k in m.keys() { let _ = k; }\n}\n",
            ),
        ]);
        let g = CallGraph::build(&ms);
        let f = check_r7(&g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::R7);
        assert_eq!(f[0].path, "crates/mhd-text/src/vocab.rs");
        assert!(f[0].message.contains("unordered iteration"), "{}", f[0].message);
        assert!(f[0].message.contains("mhd_eval::table::render"), "{}", f[0].message);
    }

    #[test]
    fn r7_ignores_sources_outside_sink_call_tree() {
        let ms = models(&[
            ("crates/mhd-eval/src/table.rs", "pub fn render() {}\n"),
            (
                "crates/mhd-llm/src/sampler.rs",
                "pub fn sample() { let r = thread_rng(); let _ = r; }\n",
            ),
        ]);
        let g = CallGraph::build(&ms);
        assert!(check_r7(&g).is_empty());
    }

    #[test]
    fn r7_exempts_obs_and_bench_clocks() {
        let ms = models(&[
            (
                "crates/mhd-core/src/report.rs",
                "use mhd_obs::time::stamp;\nuse mhd_bench::lap;\npub fn write_report() { stamp(); lap(); }\n",
            ),
            (
                "crates/mhd-obs/src/time.rs",
                "pub fn stamp() { let t = std::time::SystemTime::now(); let _ = t; }\n",
            ),
            (
                "crates/mhd-bench/src/lib.rs",
                "pub fn lap() { let t = std::time::Instant::now(); let _ = t; }\n",
            ),
        ]);
        let g = CallGraph::build(&ms);
        assert!(check_r7(&g).is_empty(), "{:?}", check_r7(&g));
    }

    #[test]
    fn r7_env_read_in_sink_tree_is_flagged() {
        let ms = models(&[(
            "crates/mhd-core/src/report.rs",
            "pub fn write_report() { cfg(); }\nfn cfg() { let v = std::env::var(\"X\"); let _ = v; }\n",
        )]);
        let g = CallGraph::build(&ms);
        let f = check_r7(&g);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("environment read"), "{}", f[0].message);
    }
}
