//! The lexical rule scanners (R1–R5) plus the meta rule for malformed
//! annotations. The graph rules live in `graph.rs` (R6), `taint.rs` (R7),
//! and the suppression audit (R8) in `lib.rs`.
//!
//! All scanners run on the masked source view (comments and literal contents
//! blanked), so a pattern inside a doc comment or a string never fires. Test
//! code is exempt from every rule. Each rule carries a built-in path scope
//! mirroring the invariant it protects; `LintConfig::all_files` overrides the
//! scoping for fixture tests.

use crate::source::SourceFile;
use crate::{Finding, LintConfig, RuleId};

/// Files whose functions feed report/table emission. HashMap/HashSet
/// iteration order would leak into row order here (R1), and inline float
/// formats would make table bytes depend on scattered precision choices (R4).
const REPORT_PATH_FILES: [&str; 4] = [
    "crates/mhd-core/src/experiments.rs",
    "crates/mhd-core/src/experiments_ext.rs",
    "crates/mhd-core/src/report.rs",
    "crates/mhd-core/src/user_level.rs",
];

/// The evaluation hot path: a panic in any of these kills a whole sweep.
/// `gemm.rs` is the batched training kernel layer — every fine-tune and
/// encoder step runs through it, so it gets the same guarantee.
/// `quant.rs` and `checkpoint.rs` are the int8 serving kernels and the
/// model-zoo container: serving and zoo loads must degrade to errors,
/// never aborts. `mhd-serve`'s `service.rs`/`zoo.rs` are the online
/// request loop and shared zoo — a panic there takes down a long-running
/// service, so admission failures must surface as typed rejections.
/// `mhd-fault` is the chaos plane itself — fault *decisions* and the
/// retry loop must never panic (an aborting injector would be
/// indistinguishable from the faults it models), and `resilience.rs`
/// is the recovery layer those faults exercise; its one deliberate
/// `panic!` (the injected crash model) carries an explicit allow.
const R2_FILES: [&str; 19] = [
    "crates/mhd-core/src/pipeline.rs",
    "crates/mhd-core/src/experiments.rs",
    "crates/mhd-core/src/experiments_ext.rs",
    "crates/mhd-llm/src/client.rs",
    "crates/mhd-text/src/sparse.rs",
    "crates/mhd-nn/src/gemm.rs",
    "crates/mhd-nn/src/quant.rs",
    "crates/mhd-nn/src/checkpoint.rs",
    "crates/mhd-nn/src/mlp.rs",
    "crates/mhd-nn/src/encoder.rs",
    "crates/mhd-serve/src/service.rs",
    "crates/mhd-serve/src/zoo.rs",
    "crates/mhd-serve/src/resilience.rs",
    "crates/mhd-fault/src/plan.rs",
    "crates/mhd-fault/src/retry.rs",
    "crates/mhd-fault/src/lib.rs",
    "crates/mhd-obs/src/bucket.rs",
    "crates/mhd-obs/src/telemetry.rs",
    "crates/mhd-obs/src/journal.rs",
];

/// Where the shared float-format helpers live (exempt from R4 by definition).
const FMT_HELPER_FILE: &str = "crates/mhd-eval/src/table.rs";

fn is_report_path(path: &str) -> bool {
    REPORT_PATH_FILES.iter().any(|f| path.ends_with(f)) || path.contains("crates/mhd-eval/src/")
}

fn in_r1_clock_scope(path: &str) -> bool {
    // mhd-bench and mhd-obs are the places allowed to read the wall clock:
    // timing output goes to stderr / the trace manifest, never into a table.
    !path.contains("crates/mhd-bench/") && !path.contains("crates/mhd-obs/")
}

fn in_r5_scope(path: &str) -> bool {
    // mhd-obs wraps std::time behind Stopwatch/StatTimer; it is the only
    // crate allowed to name the clock types. Note the scope is wider than
    // R1's: mhd-bench may read the clock but must do so through mhd-obs.
    !path.contains("crates/mhd-obs/")
}

fn in_r2_scope(path: &str) -> bool {
    R2_FILES.iter().any(|f| path.ends_with(f))
}

fn in_r4_scope(path: &str) -> bool {
    is_report_path(path) && !path.ends_with(FMT_HELPER_FILE)
}

/// Run every rule over one parsed file.
pub fn lint_file(sf: &SourceFile, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    meta_rule(sf, &mut out);
    r1_determinism(sf, cfg, &mut out);
    r2_panic_freedom(sf, cfg, &mut out);
    r3_lock_discipline(sf, cfg, &mut out);
    r4_float_format(sf, cfg, &mut out);
    r5_clock_containment(sf, cfg, &mut out);
    out
}

/// Record a raw finding. Suppressions are applied by the caller
/// ([`crate::lint_source`] / [`crate::lint_workspace`]) so that the R8 audit
/// can see the pre-suppression picture.
fn push(sf: &SourceFile, out: &mut Vec<Finding>, rule: RuleId, line: usize, message: String, hint: &str) {
    out.push(Finding { rule, path: sf.path.clone(), line, message, hint: hint.to_string() });
}

/// R0 — malformed `mhd-lint: allow(...)` annotations.
fn meta_rule(sf: &SourceFile, out: &mut Vec<Finding>) {
    for (line, problem) in &sf.bad_annotations {
        out.push(Finding {
            rule: RuleId::R0,
            path: sf.path.clone(),
            line: *line,
            message: format!("malformed allow annotation: {problem}"),
            hint: "write `// mhd-lint: allow(<rule>) — <reason>`; the reason is mandatory".to_string(),
        });
    }
}

/// R1 — determinism: wall clock, ambient RNG, unordered map iteration.
fn r1_determinism(sf: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let clock_scope = cfg.all_files || in_r1_clock_scope(&sf.path);
    let hash_scope = cfg.all_files || is_report_path(&sf.path);
    if !clock_scope && !hash_scope {
        return;
    }
    for (idx, line) in sf.lines.iter().enumerate() {
        let lineno = idx + 1;
        if sf.is_test(lineno) {
            continue;
        }
        if clock_scope {
            for pat in ["SystemTime::now", "Instant::now"] {
                if find_token(line, pat) {
                    push(sf, out, RuleId::R1, lineno,
                        format!("`{pat}` in result-path code: wall-clock reads make runs non-reproducible"),
                        "derive timing-free logic from config/seeds; only mhd-bench timing code may read the clock");
                }
            }
            for pat in ["thread_rng", "from_entropy"] {
                if find_token(line, pat) {
                    push(sf, out, RuleId::R1, lineno,
                        format!("`{pat}` draws OS entropy: output would differ run to run"),
                        "seed an explicit StdRng (e.g. SeedableRng::seed_from_u64) from the experiment config");
                }
            }
        }
        if hash_scope {
            for pat in ["HashMap", "HashSet"] {
                if find_token(line, pat) {
                    push(sf, out, RuleId::R1, lineno,
                        format!("`{pat}` in report-path code: iteration order is unspecified and would leak into emitted rows"),
                        "use BTreeMap/BTreeSet, or collect and sort explicitly before emitting");
                }
            }
        }
    }
}

/// R2 — panic-freedom on the evaluation hot path.
fn r2_panic_freedom(sf: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !(cfg.all_files || in_r2_scope(&sf.path)) {
        return;
    }
    const HINT: &str = "return PipelineError/LlmError (or recover, e.g. PoisonError::into_inner) instead of panicking";
    for (idx, line) in sf.lines.iter().enumerate() {
        let lineno = idx + 1;
        if sf.is_test(lineno) {
            continue;
        }
        if line.contains(".unwrap()") {
            push(sf, out, RuleId::R2, lineno,
                "`.unwrap()` in hot-path code: a stray None/Err kills the whole sweep".to_string(), HINT);
        }
        if line.contains(".expect(") {
            push(sf, out, RuleId::R2, lineno,
                "`.expect(…)` in hot-path code: a stray None/Err kills the whole sweep".to_string(), HINT);
        }
        for pat in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if find_token(line, pat) {
                push(sf, out, RuleId::R2, lineno,
                    format!("`{pat}` in hot-path code"), HINT);
            }
        }
        if has_literal_index(line) {
            push(sf, out, RuleId::R2, lineno,
                "indexing by integer literal in hot-path code: panics on short input".to_string(),
                "use .get(i) / .first() and handle the None arm");
        }
    }
}

/// Calls that fan work out onto other threads. `par_chunks_mut` needs its
/// own entry: the token-boundary check stops `par_chunks` from matching it.
const PARALLEL_MARKERS: [&str; 8] = [
    "par_iter",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_sort_unstable",
    "spawn",
    "install",
];

/// R3 — no lock guard may stay live across a parallel region.
fn r3_lock_discipline(sf: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let _ = cfg; // R3 applies workspace-wide.
    let mut depth = 0i64;
    // Live guards: (binding line, scope depth at the binding).
    let mut guards: Vec<(usize, i64)> = Vec::new();
    for (idx, line) in sf.lines.iter().enumerate() {
        let lineno = idx + 1;
        let test = sf.is_test(lineno);
        if !test {
            if line.contains("let ")
                && (line.contains(".lock()") || line.contains(".read()") || line.contains(".write()"))
            {
                guards.push((lineno, depth));
            }
            if let Some(&(guard_line, _)) = guards.first() {
                if PARALLEL_MARKERS.iter().any(|m| find_call(line, m)) {
                    push(sf, out, RuleId::R3, lineno,
                        format!("parallel call while the lock guard bound on line {guard_line} is still live"),
                        "drop the guard before fanning out: bind it in a nested block, or clone the needed data out");
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|&(_, d)| d <= depth);
                }
                _ => {}
            }
        }
    }
}

/// R4 — float formatting in report code must use the shared helpers.
fn r4_float_format(sf: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !(cfg.all_files || in_r4_scope(&sf.path)) {
        return;
    }
    for lit in &sf.strings {
        if sf.is_test(lit.line) {
            continue;
        }
        if has_precision_format(&lit.content) {
            push(sf, out, RuleId::R4, lit.line,
                "inline `{:.N}` float format in report code: table bytes depend on a scattered precision choice".to_string(),
                "route the cell through mhd_eval::table helpers (fmt0…fmt4, fmt_pct, fmt_range1)");
        }
    }
}

/// R5 — `std::time` clock types may be named only inside `mhd-obs`.
fn r5_clock_containment(sf: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !(cfg.all_files || in_r5_scope(&sf.path)) {
        return;
    }
    for (idx, line) in sf.lines.iter().enumerate() {
        let lineno = idx + 1;
        if sf.is_test(lineno) {
            continue;
        }
        for pat in ["Instant", "SystemTime"] {
            if find_token(line, pat) {
                push(sf, out, RuleId::R5, lineno,
                    format!("`{pat}` named outside mhd-obs: clock types belong to the timing facade"),
                    "measure through mhd_obs::time::Stopwatch (or StatTimer/span) so wall-clock stays in the observability side channel");
            }
        }
    }
}

/// Does `line` contain `pat` with a non-identifier char on each side?
fn find_token(line: &str, pat: &str) -> bool {
    let ch: Vec<char> = line.chars().collect();
    let pc: Vec<char> = pat.chars().collect();
    if pc.is_empty() || ch.len() < pc.len() {
        return false;
    }
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    for start in 0..=(ch.len() - pc.len()) {
        if ch[start..start + pc.len()] != pc[..] {
            continue;
        }
        let before_ok = start == 0 || !ident(ch[start - 1]);
        let after = ch.get(start + pc.len());
        let after_ok = after.is_none_or(|&c| !ident(c));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Does `line` contain a call `pat(` with a non-identifier char before it?
fn find_call(line: &str, pat: &str) -> bool {
    let mut with_paren = String::from(pat);
    with_paren.push('(');
    find_token(line, &with_paren) || find_token(line, pat) && line.contains(&with_paren)
}

/// Detect `expr[<integer literal>]` indexing.
fn has_literal_index(line: &str) -> bool {
    let ch: Vec<char> = line.chars().collect();
    for k in 0..ch.len() {
        if ch[k] != '[' {
            continue;
        }
        // The char before the bracket must end an indexable expression.
        let mut p = k;
        let mut prev = None;
        while p > 0 {
            p -= 1;
            if !ch[p].is_whitespace() {
                prev = Some(ch[p]);
                break;
            }
        }
        let indexable = matches!(prev, Some(c) if c.is_alphanumeric() || c == '_' || c == ')' || c == ']');
        if !indexable {
            continue;
        }
        let mut j = k + 1;
        let mut content = String::new();
        while j < ch.len() && ch[j] != ']' {
            content.push(ch[j]);
            j += 1;
        }
        if j < ch.len() && !content.is_empty() && content.chars().all(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    false
}

/// Does a format string contain a `{…:.N}`-style precision spec?
fn has_precision_format(s: &str) -> bool {
    let ch: Vec<char> = s.chars().collect();
    let mut in_spec = false;
    for k in 0..ch.len() {
        match ch[k] {
            '{' => in_spec = true,
            '}' => in_spec = false,
            ':' if in_spec
                && ch.get(k + 1) == Some(&'.')
                && ch.get(k + 2).is_some_and(|c| c.is_ascii_digit() || *c == '*') =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_all(src: &str) -> Vec<Finding> {
        crate::lint_source("fixture.rs", src, &LintConfig { all_files: true })
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("let r = thread_rng();", "thread_rng"));
        assert!(!find_token("let r = my_thread_rng();", "thread_rng"));
        assert!(!find_token("thread_rngs()", "thread_rng"));
        assert!(find_token("std::time::Instant::now()", "Instant::now"));
        assert!(!find_token("MyInstant::now()", "Instant::now"));
    }

    #[test]
    fn literal_index_detection() {
        assert!(has_literal_index("let x = row[3];"));
        assert!(has_literal_index("let x = t.rows()[0];"));
        assert!(!has_literal_index("let x = row[i];"));
        assert!(!has_literal_index("let x = row[1..];"));
        assert!(!has_literal_index("let a = [0, 1];"));
        assert!(!has_literal_index("let a = vec![0.0; 3];"));
        assert!(!has_literal_index("#[cfg(feature = \"x\")]"));
    }

    #[test]
    fn precision_format_detection() {
        assert!(has_precision_format("{:.3}"));
        assert!(has_precision_format("value {x:.1}%"));
        assert!(!has_precision_format("{x}"));
        assert!(!has_precision_format("{:>3}"));
        assert!(!has_precision_format("no braces :.3 here"));
    }

    #[test]
    fn parallel_call_detection() {
        assert!(find_call("rows.par_iter().map(f)", "par_iter"));
        assert!(find_call("out.par_chunks_mut(n).enumerate()", "par_chunks_mut"));
        assert!(!find_call("out.par_chunks_mut(n).enumerate()", "par_chunks"));
        assert!(find_call("thread::spawn(move || {})", "spawn"));
        assert!(find_call("scope.spawn(|| {})", "spawn"));
        assert!(!find_call("respawn(x)", "spawn"));
        assert!(find_call("pool.install(|| f())", "install"));
    }

    #[test]
    fn r2_fires_and_test_code_exempt() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        let f = lint_all(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::R2);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn r3_guard_across_parallel() {
        let src = "fn f() {\n    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n    xs.par_iter().for_each(run);\n}\n";
        let f = lint_all(src);
        let r3: Vec<_> = f.iter().filter(|f| f.rule == RuleId::R3).collect();
        assert_eq!(r3.len(), 1);
        assert_eq!(r3[0].line, 3);
        assert!(r3[0].message.contains("line 2"));
    }

    #[test]
    fn r3_scoped_guard_is_clean() {
        let src = "fn f() {\n    let v = {\n        let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n        g.len()\n    };\n    xs.par_iter().for_each(run);\n}\n";
        let f = lint_all(src);
        assert!(f.iter().all(|f| f.rule != RuleId::R3), "{f:?}");
    }

    #[test]
    fn allow_suppresses() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // mhd-lint: allow(R2) — input statically non-empty\n}\n";
        let f = lint_all(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r5_scopes_by_path() {
        let src = "pub struct T {\n    start: std::time::Instant,\n}\n";
        let obs = crate::lint_source("crates/mhd-obs/src/time.rs", src, &LintConfig::default());
        assert!(obs.is_empty(), "{obs:?}");
        let bench = crate::lint_source("crates/mhd-bench/src/bin/x.rs", src, &LintConfig::default());
        let pins: Vec<_> = bench.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(pins, vec![(RuleId::R5, 2)]);
    }

    #[test]
    fn string_and_comment_content_never_fires() {
        let src = "// calls .unwrap() and panic! in prose\npub fn f() -> &'static str {\n    \"SystemTime::now() .unwrap() panic! HashMap\"\n}\n";
        let f = lint_all(src);
        assert!(f.is_empty(), "{f:?}");
    }
}
