//! Cross-crate call graph over the per-file symbol tables, plus the R6
//! transitive panic-reachability analysis and the `--graph dot` dump.
//!
//! Call resolution is name-based and deliberately over-approximate (sound
//! for a reachability lint, at the cost of some spurious edges):
//!
//! - `self.m(…)` resolves to `m` on the enclosing impl type first, falling
//!   back to every impl defining `m`;
//! - `recv.m(…)` resolves to **every** impl/trait fn named `m` — the
//!   class-hierarchy-analysis treatment of dynamic and generic dispatch;
//! - `Type::f(…)` resolves by the type's base name, after expanding the
//!   leading path segment through the file's `use` bindings;
//! - `module::f(…)` resolves to free fns whose module path ends with the
//!   (expanded) qualifier;
//! - bare `f(…)` tries the caller's module, then `use` bindings, then glob
//!   imports, then any free fn of the same crate.
//!
//! Calls into `vendor/` shims and `std` stay unresolved (those trees are not
//! walked), and non-test callers never grow edges into test-only fns.

use crate::parse::{AtomKind, CallKind, FileModel, FnDef};
use crate::{Finding, RuleId};
use std::collections::{HashMap, VecDeque};

/// R6 entry points: `(fn name, required impl owner, required module)`.
/// `None` matches anything. These are the repo's serving and repro surfaces;
/// everything transitively callable from them must be panic-free.
pub const R6_ENTRY_POINTS: &[(&str, Option<&str>, Option<&str>)] = &[
    ("main", None, Some("mhd_bench::bin::repro")),
    ("full_report", None, None),
    ("generate", Some("Artifact"), None),
    ("predict_proba_batch", None, None),
    ("forward_batch", None, None),
    ("load", Some("Checkpoint"), None),
    ("map", Some("Checkpoint"), None),
    ("submit", Some("Service"), None),
    ("shard_loop", None, Some("mhd_serve::service")),
    ("load", Some("ModelZoo"), None),
    // Self-healing surfaces: the retry wrapper, the resilient zoo
    // reload used by the shard restart path, the LLM retry loop, and
    // the degraded-mode fallback route. A panic anywhere under these
    // defeats the recovery they implement.
    ("retry_transient", None, None),
    ("load_resilient", Some("ModelZoo"), None),
    ("complete_with_retry", Some("LlmClient"), None),
    ("predict_batch", Some("FallbackModel"), None),
    // Live-telemetry surfaces: the exporter's window close (runs on the
    // background poller thread, where a panic would silently kill the
    // time series) and the journal append (called from panic-recovery
    // paths themselves, so it must never add a second panic).
    ("poll", Some("Exporter"), None),
    ("finish", Some("Exporter"), None),
    ("journal_record", None, None),
];

/// A node in the call graph: index into [`CallGraph`]'s flattened fn list.
pub type NodeId = usize;

/// Workspace call graph. Nodes are `fn` definitions in walk order; edges are
/// resolved call sites annotated with the call's source line.
pub struct CallGraph<'a> {
    pub models: &'a [FileModel],
    nodes: Vec<(usize, usize)>,
    /// Adjacency: `edges[caller] = sorted (callee, call line)`.
    edges: Vec<Vec<(NodeId, usize)>>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph and resolve every call site.
    pub fn build(models: &'a [FileModel]) -> CallGraph<'a> {
        let mut nodes = Vec::new();
        for (mi, m) in models.iter().enumerate() {
            for fi in 0..m.fns.len() {
                nodes.push((mi, fi));
            }
        }
        let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        for (n, &(mi, fi)) in nodes.iter().enumerate() {
            by_name.entry(models[mi].fns[fi].name.as_str()).or_default().push(n);
        }
        let mut g = CallGraph { models, nodes, edges: Vec::new() };
        let mut edges = vec![Vec::new(); g.nodes.len()];
        for (caller, out) in edges.iter_mut().enumerate() {
            let (mi, fi) = g.nodes[caller];
            let model = &models[mi];
            let f = &model.fns[fi];
            for call in &f.calls {
                for callee in g.resolve(call, f, model, &by_name) {
                    // Live code never dispatches into cfg(test) items.
                    if !f.is_test && g.fn_of(callee).is_test {
                        continue;
                    }
                    out.push((callee, call.line));
                }
            }
            out.sort_unstable();
            out.dedup_by_key(|e| e.0);
        }
        g.edges = edges;
        g
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn fn_of(&self, n: NodeId) -> &FnDef {
        let (mi, fi) = self.nodes[n];
        &self.models[mi].fns[fi]
    }

    pub fn path_of(&self, n: NodeId) -> &str {
        &self.models[self.nodes[n].0].path
    }

    pub fn callees(&self, n: NodeId) -> &[(NodeId, usize)] {
        &self.edges[n]
    }

    /// Resolve one call site to candidate callee nodes.
    fn resolve(
        &self,
        call: &crate::parse::Call,
        caller: &FnDef,
        model: &FileModel,
        by_name: &HashMap<&str, Vec<NodeId>>,
    ) -> Vec<NodeId> {
        let same_name: &[NodeId] =
            by_name.get(call.name.as_str()).map(Vec::as_slice).unwrap_or(&[]);
        if same_name.is_empty() {
            return Vec::new();
        }
        match call.kind {
            CallKind::SelfMethod => {
                if let Some(owner) = &caller.owner {
                    let own: Vec<NodeId> = same_name
                        .iter()
                        .copied()
                        .filter(|&n| self.fn_of(n).owner.as_deref() == Some(owner.as_str()))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
                // Trait-provided method or blanket impl: fall back to CHA.
                same_name.iter().copied().filter(|&n| self.fn_of(n).owner.is_some()).collect()
            }
            CallKind::Method => {
                same_name.iter().copied().filter(|&n| self.fn_of(n).owner.is_some()).collect()
            }
            CallKind::Qualified => {
                let segs = self.expand_qualifier(call.qualifier.as_deref().unwrap_or(""), model);
                let Some(last) = segs.last() else { return Vec::new() };
                if last.chars().next().is_some_and(|c| c.is_uppercase()) {
                    // `Type::assoc(…)` — match by impl owner base name.
                    same_name
                        .iter()
                        .copied()
                        .filter(|&n| self.fn_of(n).owner.as_deref() == Some(last.as_str()))
                        .collect()
                } else {
                    // `module::f(…)` — free fns whose module ends with the path.
                    same_name
                        .iter()
                        .copied()
                        .filter(|&n| {
                            let f = self.fn_of(n);
                            f.owner.is_none() && module_suffix_matches(&f.module, &segs)
                        })
                        .collect()
                }
            }
            CallKind::Free => {
                // 1. Same module.
                let local: Vec<NodeId> = same_name
                    .iter()
                    .copied()
                    .filter(|&n| {
                        let f = self.fn_of(n);
                        f.owner.is_none() && f.module == caller.module
                    })
                    .collect();
                if !local.is_empty() {
                    return local;
                }
                // 2. Explicit `use path::f;`.
                for u in &model.uses {
                    if u.name == call.name {
                        let segs: Vec<String> = u.path.split("::").map(str::to_string).collect();
                        let module_segs = &segs[..segs.len().saturating_sub(1)];
                        let hits: Vec<NodeId> = same_name
                            .iter()
                            .copied()
                            .filter(|&n| {
                                let f = self.fn_of(n);
                                f.owner.is_none() && module_suffix_matches(&f.module, module_segs)
                            })
                            .collect();
                        if !hits.is_empty() {
                            return hits;
                        }
                    }
                }
                // 3. Glob imports.
                let mut globbed = Vec::new();
                for u in model.uses.iter().filter(|u| u.name == "*") {
                    let segs: Vec<String> = u.path.split("::").map(str::to_string).collect();
                    globbed.extend(same_name.iter().copied().filter(|&n| {
                        let f = self.fn_of(n);
                        f.owner.is_none() && module_suffix_matches(&f.module, &segs)
                    }));
                }
                if !globbed.is_empty() {
                    return globbed;
                }
                // 4. Any free fn of the same crate (re-exports, preludes).
                same_name
                    .iter()
                    .copied()
                    .filter(|&n| {
                        let (mi, _) = self.nodes[n];
                        let f = self.fn_of(n);
                        f.owner.is_none() && self.models[mi].crate_name == model.crate_name
                    })
                    .collect()
            }
        }
    }

    /// Expand a call qualifier's leading segment through `crate`/`self`/
    /// `super` and the file's `use` bindings.
    fn expand_qualifier(&self, qual: &str, model: &FileModel) -> Vec<String> {
        let mut segs: Vec<String> =
            qual.split("::").map(str::to_string).filter(|s| !s.is_empty()).collect();
        match segs.first().map(String::as_str) {
            Some("crate") => {
                segs[0] = model.crate_name.clone();
            }
            Some("self") => {
                segs.remove(0);
                let mut m: Vec<String> = model.module.split("::").map(str::to_string).collect();
                m.extend(segs);
                segs = m;
            }
            Some("super") => {
                segs.remove(0);
                let mut m: Vec<String> = model.module.split("::").map(str::to_string).collect();
                m.pop();
                m.extend(segs);
                segs = m;
            }
            Some(first) => {
                if let Some(u) = model.uses.iter().find(|u| u.name == first) {
                    let mut m: Vec<String> = u.path.split("::").map(str::to_string).collect();
                    m.extend(segs.into_iter().skip(1));
                    segs = m;
                }
            }
            None => {}
        }
        segs
    }

    /// Fully-qualified display name of a node.
    pub fn qname(&self, n: NodeId) -> String {
        self.fn_of(n).qname()
    }

    /// Nodes matching the R6 entry-point declarations (non-test only).
    pub fn entries(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for n in 0..self.nodes.len() {
            let f = self.fn_of(n);
            if f.is_test {
                continue;
            }
            let hit = R6_ENTRY_POINTS.iter().any(|(name, owner, module)| {
                f.name == *name
                    && owner.is_none_or(|o| f.owner.as_deref() == Some(o))
                    && module.is_none_or(|m| f.module == m)
            });
            if hit {
                out.push(n);
            }
        }
        out
    }

    /// Multi-source BFS. Returns `(visited, parent)` where `parent[n]` is the
    /// predecessor on a shortest chain from some start (starts have `None`).
    pub fn reach(&self, starts: &[NodeId]) -> (Vec<bool>, Vec<Option<NodeId>>) {
        let mut visited = vec![false; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut q = VecDeque::new();
        let mut starts = starts.to_vec();
        starts.sort_unstable();
        for &s in &starts {
            if !visited[s] {
                visited[s] = true;
                q.push_back(s);
            }
        }
        while let Some(n) = q.pop_front() {
            for &(c, _) in &self.edges[n] {
                if !visited[c] {
                    visited[c] = true;
                    parent[c] = Some(n);
                    q.push_back(c);
                }
            }
        }
        (visited, parent)
    }

    /// Reconstruct the start→node chain of qualified names from BFS parents.
    pub fn chain(&self, parent: &[Option<NodeId>], mut n: NodeId) -> Vec<String> {
        let mut out = vec![self.qname(n)];
        while let Some(p) = parent[n] {
            out.push(self.qname(p));
            n = p;
        }
        out.reverse();
        out
    }

    /// Graphviz dump of the non-test portion of the graph. Entry points are
    /// boxes, fns holding panic atoms are red, report/table sinks are blue.
    pub fn to_dot(&self) -> String {
        let entries = self.entries();
        let mut out =
            String::from("digraph mhd_calls {\n    rankdir=LR;\n    node [fontsize=10];\n");
        for n in 0..self.nodes.len() {
            let f = self.fn_of(n);
            if f.is_test {
                continue;
            }
            let mut attrs = vec![format!("label=\"{}\"", self.qname(n))];
            if entries.contains(&n) {
                attrs.push("shape=box".to_string());
                attrs.push("penwidth=2".to_string());
            }
            if f.atoms.iter().any(|a| a.kind == AtomKind::Panic) {
                attrs.push("color=red".to_string());
            } else if crate::taint::is_sink_module(&f.module) {
                attrs.push("color=blue".to_string());
            }
            out.push_str(&format!("    n{} [{}];\n", n, attrs.join(", ")));
        }
        for n in 0..self.nodes.len() {
            if self.fn_of(n).is_test {
                continue;
            }
            for &(c, _) in &self.edges[n] {
                out.push_str(&format!("    n{n} -> n{c};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Does `module` (a `::`-joined path) end with the `segs` sequence?
fn module_suffix_matches(module: &str, segs: &[String]) -> bool {
    if segs.is_empty() {
        return false;
    }
    let m: Vec<&str> = module.split("::").collect();
    if segs.len() > m.len() {
        return false;
    }
    m[m.len() - segs.len()..].iter().zip(segs).all(|(a, b)| *a == b)
}

/// R6: no panic atom may be transitively reachable from a declared entry
/// point. Findings anchor at the atom and carry the full call chain.
pub fn check_r6(g: &CallGraph) -> Vec<Finding> {
    let entries = g.entries();
    if entries.is_empty() {
        return Vec::new();
    }
    let (visited, parent) = g.reach(&entries);
    let mut out = Vec::new();
    for (n, &seen) in visited.iter().enumerate() {
        if !seen || g.fn_of(n).is_test {
            continue;
        }
        let chain = g.chain(&parent, n);
        for atom in &g.fn_of(n).atoms {
            if atom.kind != AtomKind::Panic {
                continue;
            }
            out.push(Finding {
                rule: RuleId::R6,
                path: g.path_of(n).to_string(),
                line: atom.line,
                message: format!(
                    "`{}` in `{}` is reachable from entry point `{}`: {}",
                    atom.what,
                    g.qname(n),
                    chain[0],
                    chain.join(" → "),
                ),
                hint: "make this path infallible (return Result / handle the None case) or annotate: // mhd-lint: allow(R6) — reason".to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::source::SourceFile;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files.iter().map(|(p, s)| FileModel::build(&SourceFile::parse(p, s))).collect()
    }

    #[test]
    fn direct_edge_resolved() {
        let ms = models(&[(
            "crates/mhd-x/src/a.rs",
            "pub fn caller() { callee(); }\npub fn callee() {}\n",
        )]);
        let g = CallGraph::build(&ms);
        assert_eq!(g.callees(0), &[(1, 1)]);
    }

    #[test]
    fn cross_crate_qualified_edge() {
        let ms = models(&[
            ("crates/mhd-a/src/lib.rs", "use mhd_b::util::helper;\npub fn go() { helper(); }\n"),
            ("crates/mhd-b/src/util.rs", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&ms);
        assert_eq!(g.callees(0).len(), 1);
        assert_eq!(g.qname(g.callees(0)[0].0), "mhd_b::util::helper");
    }

    #[test]
    fn type_qualified_and_self_method_edges() {
        let ms = models(&[(
            "crates/mhd-a/src/m.rs",
            "pub struct T;\nimpl T {\n    pub fn load() -> T { T::validate(); T }\n    fn validate() {}\n    pub fn run(&self) { self.step(); }\n    fn step(&self) {}\n}\n",
        )]);
        let g = CallGraph::build(&ms);
        let load = 0;
        let run = 2;
        assert_eq!(g.qname(g.callees(load)[0].0), "mhd_a::m::T::validate");
        assert_eq!(g.qname(g.callees(run)[0].0), "mhd_a::m::T::step");
    }

    #[test]
    fn method_call_is_cha_over_all_impls() {
        let ms = models(&[
            ("crates/mhd-a/src/one.rs", "pub struct A;\nimpl A { pub fn score(&self) {} }\n"),
            ("crates/mhd-b/src/two.rs", "pub struct B;\nimpl B { pub fn score(&self) {} }\n"),
            ("crates/mhd-c/src/go.rs", "pub fn go(x: &dyn Scorer) { x.score(); }\n"),
        ]);
        let g = CallGraph::build(&ms);
        let go = 2;
        assert_eq!(g.callees(go).len(), 2);
    }

    #[test]
    fn non_test_callers_do_not_reach_test_fns() {
        let ms = models(&[(
            "crates/mhd-a/src/x.rs",
            "pub fn live() { helper(); }\n#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n",
        )]);
        let g = CallGraph::build(&ms);
        assert!(g.callees(0).is_empty());
    }

    #[test]
    fn r6_flags_two_hop_chain_and_reports_it() {
        let ms = models(&[(
            "crates/mhd-x/src/serve.rs",
            "pub struct M;\nimpl M {\n    pub fn predict_proba_batch(&self) { self.mid(); }\n    fn mid(&self) { deep(); }\n}\nfn deep() { let x: Option<u8> = None; x.unwrap(); }\n",
        )]);
        let g = CallGraph::build(&ms);
        let f = check_r6(&g);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::R6);
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("predict_proba_batch"), "{}", f[0].message);
        assert!(f[0].message.contains("mid"), "{}", f[0].message);
        assert!(f[0].message.contains("deep"), "{}", f[0].message);
    }

    #[test]
    fn r6_ignores_unreachable_panics() {
        let ms = models(&[(
            "crates/mhd-x/src/serve.rs",
            "pub fn predict_proba_batch() {}\npub fn orphan() { panic!(\"never reached\"); }\n",
        )]);
        let g = CallGraph::build(&ms);
        assert!(check_r6(&g).is_empty());
    }

    #[test]
    fn dot_dump_has_nodes_and_edges() {
        let ms = models(&[(
            "crates/mhd-x/src/a.rs",
            "pub fn predict_proba_batch() { helper(); }\nfn helper() { panic!(\"x\"); }\n",
        )]);
        let g = CallGraph::build(&ms);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=box"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.contains("n0 -> n1"), "{dot}");
    }
}
