#![forbid(unsafe_code)]
//! # mhd-models — baseline text classifiers
//!
//! Every non-LLM method the surveyed benchmarks compare against:
//!
//! - [`trivial`] — majority-class and uniform-random floors
//! - [`lexicon_rule`] — the LIWC-style rule baseline (no training labels
//!   needed beyond class priors)
//! - [`naive_bayes`] — multinomial Naive Bayes over stemmed unigrams
//! - [`logreg`] — multinomial logistic regression over TF-IDF
//! - [`svm`] — one-vs-rest linear SVM trained with Pegasos
//! - [`encoder_clf`] — "bert-mini": an attention-pooled neural encoder
//!   trained from scratch (the BERT-class discriminative baseline)
//!
//! All models implement [`TextClassifier`], the single seam the experiment
//! runner consumes.

pub mod encoder_clf;
pub mod lexicon_rule;
pub mod logreg;
pub mod naive_bayes;
pub mod svm;
pub mod trivial;

pub use encoder_clf::{EncoderClassifier, EncoderClfConfig};
pub use lexicon_rule::LexiconRule;
pub use logreg::LogisticRegression;
pub use naive_bayes::NaiveBayes;
pub use svm::LinearSvm;
pub use trivial::{Majority, UniformRandom};
// Inference precision switch, re-exported so downstream crates don't need a
// direct mhd-nn dependency just to select int8 serving.
pub use mhd_nn::quant::Precision;

/// A trainable text classifier. `fit` must be called before prediction.
pub trait TextClassifier {
    /// Short method name used in result tables.
    fn name(&self) -> &'static str;

    /// Fit on parallel slices of texts and gold label indices.
    /// `n_classes` fixes the output dimensionality (labels may not cover
    /// every class in small training sets).
    fn fit(&mut self, texts: &[&str], labels: &[usize], n_classes: usize);

    /// Class-probability estimates for one text. Length = `n_classes`.
    fn predict_proba(&self, text: &str) -> Vec<f64>;

    /// Class-probability estimates for a whole batch, one row per text.
    /// Must produce exactly what mapping [`Self::predict_proba`] over the
    /// slice would — implementations may only batch or parallelize the
    /// computation, not change it. The default does just that mapping;
    /// vectorized models override with a batched sparse fast path.
    fn predict_proba_batch(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        texts.iter().map(|t| self.predict_proba(t)).collect()
    }

    /// Most probable class.
    fn predict(&self, text: &str) -> usize {
        argmax(&self.predict_proba(text))
    }

    /// Most probable class per text, via [`Self::predict_proba_batch`].
    fn predict_batch(&self, texts: &[&str]) -> Vec<usize> {
        self.predict_proba_batch(texts).iter().map(|p| argmax(p)).collect()
    }
}

/// Index of the maximum value (first wins ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixture: a small two-class corpus with clear lexical signal.

    /// (texts, labels): label 1 = distressed, 0 = neutral.
    pub fn toy_corpus() -> (Vec<&'static str>, Vec<usize>) {
        let texts = vec![
            "i feel hopeless and empty, crying every night",
            "everything is pointless, i am worthless and alone",
            "so sad and numb, i cannot sleep anymore",
            "the darkness never lifts, i feel hopeless again",
            "crying all day, everything feels meaningless and dark",
            "i am exhausted and hopeless, nothing matters now",
            "had a wonderful day at the park with friends",
            "the new recipe turned out great, feeling happy",
            "excited about the weekend trip, life is good",
            "watched a fun movie and laughed a lot tonight",
            "grateful for my family, what a lovely dinner",
            "great game last night, we celebrated with pizza",
        ];
        let labels = vec![1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0];
        (texts, labels)
    }

    /// Accuracy of a fitted classifier on the toy corpus itself.
    pub fn train_accuracy<C: super::TextClassifier>(clf: &mut C) -> f64 {
        let (texts, labels) = toy_corpus();
        clf.fit(&texts, &labels, 2);
        let correct =
            texts.iter().zip(&labels).filter(|(t, &y)| clf.predict(t) == y).count();
        correct as f64 / texts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0);
    }
}
