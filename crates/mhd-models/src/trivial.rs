//! Trivial floors: majority class and uniform random.

use crate::TextClassifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Always predicts the training-majority class (with prior probabilities).
#[derive(Debug, Clone, Default)]
pub struct Majority {
    priors: Vec<f64>,
}

impl Majority {
    /// New, unfitted.
    pub fn new() -> Self {
        Majority::default()
    }
}

impl TextClassifier for Majority {
    fn name(&self) -> &'static str {
        "majority"
    }

    fn fit(&mut self, _texts: &[&str], labels: &[usize], n_classes: usize) {
        let mut counts = vec![0usize; n_classes];
        for &l in labels {
            counts[l] += 1;
        }
        let total = labels.len().max(1) as f64;
        self.priors = counts.iter().map(|&c| c as f64 / total).collect();
    }

    fn predict_proba(&self, _text: &str) -> Vec<f64> {
        assert!(!self.priors.is_empty(), "Majority::fit not called");
        self.priors.clone()
    }
}

/// Uniform-random predictions (seeded; deterministic sequence). The RNG sits
/// behind a `Mutex` so the classifier is `Sync` like every other method —
/// but note the drawn sequence then depends on call order, so callers that
/// need reproducibility must invoke it from one thread (the pipeline does).
#[derive(Debug)]
pub struct UniformRandom {
    n_classes: usize,
    rng: Mutex<StdRng>,
}

impl UniformRandom {
    /// New with a seed.
    pub fn new(seed: u64) -> Self {
        UniformRandom { n_classes: 0, rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }
}

impl TextClassifier for UniformRandom {
    fn name(&self) -> &'static str {
        "random"
    }

    fn fit(&mut self, _texts: &[&str], _labels: &[usize], n_classes: usize) {
        self.n_classes = n_classes;
    }

    fn predict_proba(&self, _text: &str) -> Vec<f64> {
        assert!(self.n_classes > 0, "UniformRandom::fit not called");
        // A peaked-at-random-class distribution so `predict` is random.
        let winner = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gen_range(0..self.n_classes);
        let mut p = vec![0.5 / self.n_classes as f64; self.n_classes];
        p[winner] += 0.5;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_predicts_mode() {
        let mut m = Majority::new();
        m.fit(&["a", "b", "c"], &[1, 1, 0], 2);
        assert_eq!(m.predict("anything"), 1);
        let p = m.predict_proba("x");
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn majority_requires_fit() {
        Majority::new().predict("x");
    }

    #[test]
    fn random_covers_classes() {
        let mut r = UniformRandom::new(1);
        r.fit(&[], &[], 3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[r.predict("x")] = true;
        }
        assert!(seen.iter().all(|&s| s), "all classes should appear");
    }

    #[test]
    fn random_proba_sums_to_one() {
        let mut r = UniformRandom::new(2);
        r.fit(&[], &[], 4);
        let p = r.predict_proba("x");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
