//! Multinomial logistic regression over TF-IDF features.
//!
//! Trained by mini-batch SGD with momentum on the softmax cross-entropy,
//! with L2 regularization — the standard strong classical baseline of the
//! surveyed papers ("LogReg + TF-IDF").

use crate::TextClassifier;
use mhd_text::sparse::{CsrMatrix, SparseVec};
use mhd_text::tfidf::{TfidfConfig, TfidfVectorizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed (shuffling).
    pub seed: u64,
    /// TF-IDF options.
    pub tfidf: TfidfConfig,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            lr: 0.5,
            l2: 1e-5,
            epochs: 20,
            batch_size: 32,
            seed: 11,
            tfidf: TfidfConfig::default(),
        }
    }
}

/// The classifier. Weights are dense per class over the TF-IDF space.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LogRegConfig,
    vectorizer: Option<Arc<TfidfVectorizer>>,
    weights: Vec<Vec<f64>>, // [class][feature]
    bias: Vec<f64>,
}

impl LogisticRegression {
    /// New with default hyperparameters.
    pub fn new() -> Self {
        Self::with_config(LogRegConfig::default())
    }

    /// New with explicit hyperparameters.
    pub fn with_config(config: LogRegConfig) -> Self {
        LogisticRegression { config, vectorizer: None, weights: Vec::new(), bias: Vec::new() }
    }

    fn scores(&self, x: &SparseVec) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(w, &b)| x.dot_dense(w) + b)
            .collect()
    }

    fn scores_row(&self, xs: &CsrMatrix, i: usize) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(w, &b)| xs.row_dot_dense(i, w) + b)
            .collect()
    }

    /// Fit from an already-fitted vectorizer and pre-transformed training
    /// matrix (the feature-cache path). Training is identical to
    /// [`TextClassifier::fit`], which delegates here after vectorizing.
    pub fn fit_vectorized(
        &mut self,
        vectorizer: Arc<TfidfVectorizer>,
        xs: &CsrMatrix,
        labels: &[usize],
        n_classes: usize,
    ) {
        assert_eq!(xs.n_rows(), labels.len());
        let n_features = vectorizer.n_features();
        self.weights = vec![vec![0.0; n_features]; n_classes];
        self.bias = vec![0.0; n_classes];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..xs.n_rows()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                // Accumulate gradient over the batch.
                let scale = self.config.lr / chunk.len() as f64;
                for &i in chunk {
                    let p = softmax(&self.scores_row(xs, i));
                    for (c, &pc) in p.iter().enumerate() {
                        let err = pc - if labels[i] == c { 1.0 } else { 0.0 };
                        if err != 0.0 {
                            xs.row_add_into_dense(i, &mut self.weights[c], -scale * err);
                            self.bias[c] -= scale * err;
                        }
                    }
                }
                // L2 shrinkage once per batch.
                if self.config.l2 > 0.0 {
                    let decay = 1.0 - self.config.lr * self.config.l2;
                    for w in &mut self.weights {
                        for v in w.iter_mut() {
                            *v *= decay;
                        }
                    }
                }
            }
        }
        self.vectorizer = Some(vectorizer);
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

fn softmax(xs: &[f64]) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl TextClassifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "logreg_tfidf"
    }

    fn fit(&mut self, texts: &[&str], labels: &[usize], n_classes: usize) {
        assert_eq!(texts.len(), labels.len());
        let vectorizer = TfidfVectorizer::fit(texts, self.config.tfidf.clone());
        let xs = vectorizer.transform_csr(texts);
        self.fit_vectorized(Arc::new(vectorizer), &xs, labels, n_classes);
    }

    fn predict_proba(&self, text: &str) -> Vec<f64> {
        // mhd-lint: allow(R6) — Detector contract: fit() precedes predict; documented panicking accessor
        let v = self.vectorizer.as_ref().expect("LogisticRegression::fit not called");
        softmax(&self.scores(&v.transform(text)))
    }

    fn predict_proba_batch(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        // mhd-lint: allow(R6) — Detector contract: fit() precedes predict; documented panicking accessor
        let v = self.vectorizer.as_ref().expect("LogisticRegression::fit not called");
        let xs = v.transform_csr(texts);
        xs.par_linear_scores(&self.weights, &self.bias)
            .iter()
            .map(|s| softmax(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{toy_corpus, train_accuracy};

    fn fast_config() -> LogRegConfig {
        LogRegConfig {
            epochs: 30,
            tfidf: TfidfConfig { min_df: 1, ..TfidfConfig::default() },
            ..LogRegConfig::default()
        }
    }

    #[test]
    fn learns_toy_corpus() {
        let mut clf = LogisticRegression::with_config(fast_config());
        let acc = train_accuracy(&mut clf);
        assert!(acc >= 0.9, "logreg accuracy {acc}");
    }

    #[test]
    fn proba_normalized_and_confident_on_train() {
        let (texts, labels) = toy_corpus();
        let mut clf = LogisticRegression::with_config(fast_config());
        clf.fit(&texts, &labels, 2);
        let p = clf.predict_proba(texts[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > 0.6, "{p:?}");
    }

    #[test]
    fn multiclass_works() {
        let texts = vec![
            "sleep insomnia tired exhausted",
            "insomnia sleepless tired nights",
            "money rent debt bills broke",
            "debt bills loans rent broke",
            "panic anxious worried scared fear",
            "anxious panic fear nervous worried",
        ];
        let labels = vec![0, 0, 1, 1, 2, 2];
        let mut clf = LogisticRegression::with_config(fast_config());
        clf.fit(&texts, &labels, 3);
        assert_eq!(clf.predict("cannot sleep, insomnia again, so tired"), 0);
        assert_eq!(clf.predict("bills and rent and debt everywhere"), 1);
        assert_eq!(clf.predict("so worried and anxious, full of fear"), 2);
    }

    #[test]
    fn deterministic() {
        let (texts, labels) = toy_corpus();
        let mut a = LogisticRegression::with_config(fast_config());
        let mut b = LogisticRegression::with_config(fast_config());
        a.fit(&texts, &labels, 2);
        b.fit(&texts, &labels, 2);
        assert_eq!(a.predict_proba(texts[0]), b.predict_proba(texts[0]));
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn requires_fit() {
        LogisticRegression::new().predict("x");
    }

    #[test]
    fn batch_predict_is_bit_identical_to_per_text() {
        let (texts, labels) = toy_corpus();
        let mut clf = LogisticRegression::with_config(fast_config());
        clf.fit(&texts, &labels, 2);
        let batch = clf.predict_proba_batch(&texts);
        for (t, row) in texts.iter().zip(&batch) {
            assert_eq!(row, &clf.predict_proba(t));
        }
    }
}
