//! "bert-mini": the neural discriminative baseline.
//!
//! Builds a task vocabulary, maps posts to token-id sequences, and trains an
//! attention-pooled [`mhd_nn::Encoder`] from scratch with early stopping on
//! a held-out slice of the training data. Plays the role of the fine-tuned
//! BERT/RoBERTa/MentalBERT baselines of the surveyed papers: a supervised
//! dense-representation model with full access to the training split.

use crate::TextClassifier;
use mhd_nn::checkpoint::Writer;
use mhd_nn::encoder::{Encoder, EncoderConfig};
use mhd_nn::quant::{Precision, QuantizedEncoder};
use mhd_nn::train::{train, TrainOptions};
use mhd_text::tokenize::words;
use mhd_text::vocab::Vocabulary;

/// Hyperparameters for [`EncoderClassifier`].
#[derive(Debug, Clone, Copy)]
pub struct EncoderClfConfig {
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Head hidden width.
    pub hidden_dim: usize,
    /// Max vocabulary size.
    pub max_vocab: usize,
    /// Max sequence length.
    pub max_len: usize,
    /// Learning rate.
    pub lr: f32,
    /// Max training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Seed for init/shuffling.
    pub seed: u64,
    /// Inference precision. Training always runs in f32; with
    /// [`Precision::Int8`] the trained encoder is quantized once after
    /// `fit` and all predictions run through the int8 kernels.
    pub precision: Precision,
}

impl Default for EncoderClfConfig {
    fn default() -> Self {
        EncoderClfConfig {
            embed_dim: 48,
            hidden_dim: 64,
            max_vocab: 8192,
            max_len: 128,
            lr: 2e-3,
            max_epochs: 25,
            patience: 4,
            seed: 29,
            precision: Precision::F32,
        }
    }
}

/// The trained classifier.
pub struct EncoderClassifier {
    config: EncoderClfConfig,
    vocab: Option<Vocabulary>,
    encoder: Option<Encoder>,
    qencoder: Option<QuantizedEncoder>,
}

impl EncoderClassifier {
    /// New with default hyperparameters.
    pub fn new() -> Self {
        Self::with_config(EncoderClfConfig::default())
    }

    /// New with explicit hyperparameters.
    pub fn with_config(config: EncoderClfConfig) -> Self {
        EncoderClassifier { config, vocab: None, encoder: None, qencoder: None }
    }

    /// The inference precision this classifier was configured with.
    pub fn precision(&self) -> Precision {
        self.config.precision
    }

    /// Export the trained model into a checkpoint `Writer` as a serving
    /// zoo: the f32 encoder under `encoder/…`, its int8 quantization under
    /// `qencoder/…` (quantized on the fly when the classifier was trained
    /// in f32), and classifier metadata. `mhd-serve` maps the saved
    /// container once (`Checkpoint::map`) and shares it read-only across
    /// shards; posts must be encoded to token ids with the same fitted
    /// vocabulary, which is recorded in `clf.vocab` meta one token per
    /// line in id order.
    ///
    /// Returns `Err` if `fit` has not been called yet.
    pub fn export_zoo(&self, w: &mut Writer) -> Result<(), &'static str> {
        let (vocab, encoder) = match (self.vocab.as_ref(), self.encoder.as_ref()) {
            (Some(v), Some(e)) => (v, e),
            _ => return Err("EncoderClassifier::fit not called"),
        };
        w.meta("clf.kind", "bert_mini");
        w.meta("clf.models", "encoder,qencoder");
        let tokens: Vec<&str> = vocab.tokens().collect();
        w.meta("clf.vocab", &tokens.join("\n"));
        encoder.write_checkpoint("encoder", w);
        match self.qencoder.as_ref() {
            Some(q) => q.write_checkpoint("qencoder", w),
            None => encoder.quantize().write_checkpoint("qencoder", w),
        }
        Ok(())
    }

    fn encode(&self, text: &str) -> Vec<u32> {
        // mhd-lint: allow(R6) — Detector contract: fit() precedes encode/predict; documented panicking accessor
        let vocab = self.vocab.as_ref().expect("EncoderClassifier::fit not called");
        words(text).iter().filter_map(|w| vocab.id(w)).collect()
    }
}

impl Default for EncoderClassifier {
    fn default() -> Self {
        Self::new()
    }
}

impl TextClassifier for EncoderClassifier {
    fn name(&self) -> &'static str {
        "bert_mini"
    }

    fn fit(&mut self, texts: &[&str], labels: &[usize], n_classes: usize) {
        assert_eq!(texts.len(), labels.len());
        assert!(!texts.is_empty(), "empty training set");
        let tokenized: Vec<Vec<String>> = texts.iter().map(|t| words(t)).collect();
        let vocab = Vocabulary::fit(
            tokenized.iter().map(|d| d.iter().map(String::as_str)),
            2,
            self.config.max_vocab,
        );
        let docs: Vec<Vec<u32>> = tokenized
            .iter()
            .map(|d| d.iter().filter_map(|w| vocab.id(w)).collect())
            .collect();
        // Hold out every 10th example for early stopping (deterministic).
        let mut tr_x = Vec::new();
        let mut tr_y = Vec::new();
        let mut va_x = Vec::new();
        let mut va_y = Vec::new();
        for (i, (d, &y)) in docs.iter().zip(labels).enumerate() {
            if i % 10 == 9 && docs.len() >= 20 {
                va_x.push(d.clone());
                va_y.push(y);
            } else {
                tr_x.push(d.clone());
                tr_y.push(y);
            }
        }
        let enc_cfg = EncoderConfig {
            vocab_size: vocab.len().max(1),
            embed_dim: self.config.embed_dim,
            hidden_dim: self.config.hidden_dim,
            n_classes,
            max_len: self.config.max_len,
            lr: self.config.lr,
            seed: self.config.seed,
        };
        let mut encoder = Encoder::new(enc_cfg);
        let opts = TrainOptions {
            max_epochs: self.config.max_epochs,
            batch_size: 32,
            patience: self.config.patience,
            seed: self.config.seed,
        };
        let val = if va_x.is_empty() { None } else { Some((va_x.as_slice(), va_y.as_slice())) };
        {
            let _s = mhd_obs::span("encoder.train");
            let report = train(&mut encoder, &tr_x, &tr_y, val, &opts);
            mhd_obs::counter_add("models.encoder.fits", 1);
            mhd_obs::counter_add("models.encoder.epochs", report.epochs as u64);
        }
        if self.config.precision == Precision::Int8 {
            let _s = mhd_obs::span("encoder.quantize");
            self.qencoder = Some(encoder.quantize());
            mhd_obs::counter_add("models.encoder.quantized", 1);
        }
        self.vocab = Some(vocab);
        self.encoder = Some(encoder);
    }

    fn predict_proba(&self, text: &str) -> Vec<f64> {
        let ids = self.encode(text);
        let probs = match self.qencoder.as_ref() {
            Some(q) => q.predict_proba(&ids),
            None => {
                // mhd-lint: allow(R6) — Detector contract: fit() precedes encode/predict; documented panicking accessor
                let encoder = self.encoder.as_ref().expect("EncoderClassifier::fit not called");
                encoder.predict_proba(&ids)
            }
        };
        probs.into_iter().map(|p| p as f64).collect()
    }

    fn predict_proba_batch(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        // `encode` asserts fit was called (it needs the vocabulary).
        let docs: Vec<Vec<u32>> = texts.iter().map(|t| self.encode(t)).collect();
        let probs = match self.qencoder.as_ref() {
            Some(q) => q.predict_proba_batch(&docs),
            None => {
                // mhd-lint: allow(R6) — Detector contract: fit() precedes encode/predict; documented panicking accessor
                let encoder = self.encoder.as_ref().expect("EncoderClassifier::fit not called");
                encoder.predict_proba_batch(&docs)
            }
        };
        probs
            .into_iter()
            .map(|p| p.into_iter().map(|v| v as f64).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::toy_corpus;

    fn fast() -> EncoderClfConfig {
        EncoderClfConfig { embed_dim: 16, hidden_dim: 16, max_epochs: 40, patience: 0, ..Default::default() }
    }

    #[test]
    fn learns_toy_corpus() {
        let (texts, labels) = toy_corpus();
        let mut clf = EncoderClassifier::with_config(fast());
        clf.fit(&texts, &labels, 2);
        let correct = texts.iter().zip(&labels).filter(|(t, &y)| clf.predict(t) == y).count();
        let acc = correct as f64 / texts.len() as f64;
        assert!(acc >= 0.8, "bert_mini accuracy {acc}");
    }

    #[test]
    fn proba_normalized() {
        let (texts, labels) = toy_corpus();
        let mut clf = EncoderClassifier::with_config(fast());
        clf.fit(&texts, &labels, 2);
        let p = clf.predict_proba("i feel hopeless");
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn oov_text_handled() {
        let (texts, labels) = toy_corpus();
        let mut clf = EncoderClassifier::with_config(fast());
        clf.fit(&texts, &labels, 2);
        let p = clf.predict_proba("zzzz qqqq completely unseen tokens");
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn requires_fit() {
        EncoderClassifier::new().predict("x");
    }

    /// Int8 inference must stay close to the f32 path on the same trained
    /// weights: class probabilities within a small delta and near-total
    /// argmax agreement.
    #[test]
    fn int8_precision_tracks_f32() {
        let (texts, labels) = toy_corpus();
        let mut f32_clf = EncoderClassifier::with_config(fast());
        f32_clf.fit(&texts, &labels, 2);
        let mut i8_clf = EncoderClassifier::with_config(EncoderClfConfig {
            precision: Precision::Int8,
            ..fast()
        });
        i8_clf.fit(&texts, &labels, 2);
        assert_eq!(i8_clf.precision(), Precision::Int8);
        let pf = f32_clf.predict_proba_batch(&texts);
        let pq = i8_clf.predict_proba_batch(&texts);
        let mut agree = 0usize;
        let mut max_delta = 0.0f64;
        for (rf, rq) in pf.iter().zip(&pq) {
            assert!((rq.iter().sum::<f64>() - 1.0).abs() < 1e-5);
            for (a, b) in rf.iter().zip(rq) {
                max_delta = max_delta.max((a - b).abs());
            }
            let am = |r: &[f64]| {
                r.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
            };
            if am(rf) == am(rq) {
                agree += 1;
            }
        }
        assert!(max_delta < 0.1, "int8 drifted from f32: max prob delta {max_delta}");
        assert!(agree * 100 >= texts.len() * 95, "argmax agreement {agree}/{}", texts.len());
    }

    /// A zoo exported with `export_zoo` must reload (through the mmap
    /// loader) into models whose predictions are bit-identical to the live
    /// classifier — both precisions — and must carry the fitted vocabulary.
    #[test]
    fn export_zoo_roundtrips_bit_identical() {
        use mhd_nn::checkpoint::Checkpoint;
        use mhd_nn::quant::QuantizedEncoder;

        let (texts, labels) = toy_corpus();
        let mut clf = EncoderClassifier::with_config(fast());
        clf.fit(&texts, &labels, 2);

        assert!(EncoderClassifier::new().export_zoo(&mut Writer::new()).is_err());

        let dir = std::env::temp_dir().join("mhd_models_export_zoo_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("zoo.mhdckpt");
        let mut w = Writer::new();
        clf.export_zoo(&mut w).expect("fitted export");
        w.save(&path).expect("save zoo");

        let mapped = Checkpoint::map(&path).expect("map zoo");
        assert_eq!(mapped.meta("clf.kind"), Some("bert_mini"));
        let enc = Encoder::from_checkpoint(&mapped, "encoder").expect("f32 reload");
        let qenc = QuantizedEncoder::from_checkpoint(&mapped, "qencoder").expect("int8 reload");

        let vocab_meta = mapped.meta("clf.vocab").expect("vocab meta");
        let docs: Vec<Vec<u32>> = texts.iter().map(|t| clf.encode(t)).collect();
        let vocab = clf.vocab.as_ref().expect("fitted");
        for (id, tok) in vocab_meta.lines().enumerate() {
            assert_eq!(vocab.token(id as u32), Some(tok));
        }

        let live = clf.predict_proba_batch(&texts);
        let reloaded = enc.predict_proba_batch(&docs);
        for (lr, rr) in live.iter().zip(&reloaded) {
            let lb: Vec<u64> = lr.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u64> = rr.iter().map(|&v| (v as f64).to_bits()).collect();
            assert_eq!(lb, rb);
        }

        let qlive = enc.quantize().predict_proba_batch(&docs);
        let qreloaded = qenc.predict_proba_batch(&docs);
        for (lr, rr) in qlive.iter().zip(&qreloaded) {
            let lb: Vec<u32> = lr.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = rr.iter().map(|v| v.to_bits()).collect();
            assert_eq!(lb, rb);
        }

        std::fs::remove_file(&path).ok();
    }

    /// The batched override must agree with the per-text path bit for bit
    /// (the report generator depends on them being interchangeable).
    #[test]
    fn batched_proba_matches_per_text() {
        let (texts, labels) = toy_corpus();
        let mut clf = EncoderClassifier::with_config(fast());
        clf.fit(&texts, &labels, 2);
        let batched = clf.predict_proba_batch(&texts);
        for (t, row) in texts.iter().zip(&batched) {
            let single = clf.predict_proba(t);
            let sb: Vec<u64> = single.iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, rb);
        }
    }
}
