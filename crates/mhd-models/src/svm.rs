//! One-vs-rest linear SVM trained with Pegasos (Shalev-Shwartz et al., 2011).
//!
//! Pegasos performs stochastic sub-gradient descent on the regularized hinge
//! loss with the characteristic 1/(λt) step size. Probabilities are derived
//! from margins with a softmax — adequate for ranking-based metrics.

use crate::TextClassifier;
use mhd_text::sparse::{CsrMatrix, SparseVec};
use mhd_text::tfidf::{TfidfConfig, TfidfVectorizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Hyperparameters for [`LinearSvm`].
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Regularization constant λ.
    pub lambda: f64,
    /// Number of epochs over the data.
    pub epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// TF-IDF options.
    pub tfidf: TfidfConfig,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig { lambda: 1e-4, epochs: 15, seed: 23, tfidf: TfidfConfig::default() }
    }
}

/// One-vs-rest linear SVM over TF-IDF.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    config: SvmConfig,
    vectorizer: Option<Arc<TfidfVectorizer>>,
    weights: Vec<Vec<f64>>, // [class][feature]
    bias: Vec<f64>,
}

impl LinearSvm {
    /// New with default hyperparameters.
    pub fn new() -> Self {
        Self::with_config(SvmConfig::default())
    }

    /// New with explicit hyperparameters.
    pub fn with_config(config: SvmConfig) -> Self {
        LinearSvm { config, vectorizer: None, weights: Vec::new(), bias: Vec::new() }
    }

    fn margins(&self, x: &SparseVec) -> Vec<f64> {
        self.weights.iter().zip(&self.bias).map(|(w, &b)| x.dot_dense(w) + b).collect()
    }

    /// Fit from an already-fitted vectorizer and pre-transformed training
    /// matrix (the feature-cache path). Training is identical to
    /// [`TextClassifier::fit`], which delegates here after vectorizing.
    pub fn fit_vectorized(
        &mut self,
        vectorizer: Arc<TfidfVectorizer>,
        xs: &CsrMatrix,
        labels: &[usize],
        n_classes: usize,
    ) {
        assert_eq!(xs.n_rows(), labels.len());
        let n_features = vectorizer.n_features();
        self.weights = vec![vec![0.0; n_features]; n_classes];
        self.bias = vec![0.0; n_classes];
        let lambda = self.config.lambda;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..xs.n_rows()).collect();
        let mut t: u64 = 0;
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                // Smoothed Pegasos schedule: η = 1/(λt + 1) avoids the huge
                // early steps of the textbook 1/(λt) when λ is small.
                let eta = 1.0 / (lambda * t as f64 + 1.0);
                for c in 0..n_classes {
                    let y = if labels[i] == c { 1.0 } else { -1.0 };
                    let margin = y * (xs.row_dot_dense(i, &self.weights[c]) + self.bias[c]);
                    // Regularization shrink.
                    let shrink = 1.0 - eta * lambda;
                    for w in self.weights[c].iter_mut() {
                        *w *= shrink;
                    }
                    if margin < 1.0 {
                        xs.row_add_into_dense(i, &mut self.weights[c], eta * y);
                        self.bias[c] += eta * y * 0.01; // unregularized, small-rate bias
                    }
                }
            }
        }
        self.vectorizer = Some(vectorizer);
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl TextClassifier for LinearSvm {
    fn name(&self) -> &'static str {
        "svm_tfidf"
    }

    fn fit(&mut self, texts: &[&str], labels: &[usize], n_classes: usize) {
        assert_eq!(texts.len(), labels.len());
        let vectorizer = TfidfVectorizer::fit(texts, self.config.tfidf.clone());
        let xs = vectorizer.transform_csr(texts);
        self.fit_vectorized(Arc::new(vectorizer), &xs, labels, n_classes);
    }

    fn predict_proba(&self, text: &str) -> Vec<f64> {
        // mhd-lint: allow(R6) — Detector contract: fit() precedes predict; documented panicking accessor
        let v = self.vectorizer.as_ref().expect("LinearSvm::fit not called");
        softmax_margins(&self.margins(&v.transform(text)))
    }

    fn predict_proba_batch(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        // mhd-lint: allow(R6) — Detector contract: fit() precedes predict; documented panicking accessor
        let v = self.vectorizer.as_ref().expect("LinearSvm::fit not called");
        let xs = v.transform_csr(texts);
        xs.par_linear_scores(&self.weights, &self.bias)
            .iter()
            .map(|m| softmax_margins(m))
            .collect()
    }
}

/// Softmax over margins as a probability surrogate.
fn softmax_margins(m: &[f64]) -> Vec<f64> {
    let max = m.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = m.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{toy_corpus, train_accuracy};

    fn fast_config() -> SvmConfig {
        SvmConfig {
            epochs: 25,
            tfidf: TfidfConfig { min_df: 1, ..TfidfConfig::default() },
            ..SvmConfig::default()
        }
    }

    #[test]
    fn learns_toy_corpus() {
        let mut clf = LinearSvm::with_config(fast_config());
        let acc = train_accuracy(&mut clf);
        assert!(acc >= 0.9, "svm accuracy {acc}");
    }

    #[test]
    fn margins_separate_classes() {
        let (texts, labels) = toy_corpus();
        let mut clf = LinearSvm::with_config(fast_config());
        clf.fit(&texts, &labels, 2);
        let pos = clf.predict_proba("hopeless crying empty sad");
        let neg = clf.predict_proba("wonderful happy grateful fun");
        assert!(pos[1] > pos[0], "{pos:?}");
        assert!(neg[0] > neg[1], "{neg:?}");
    }

    #[test]
    fn deterministic() {
        let (texts, labels) = toy_corpus();
        let mut a = LinearSvm::with_config(fast_config());
        let mut b = LinearSvm::with_config(fast_config());
        a.fit(&texts, &labels, 2);
        b.fit(&texts, &labels, 2);
        assert_eq!(a.predict_proba(texts[3]), b.predict_proba(texts[3]));
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let texts = vec![
            "alpha alpha alpha", "alpha alpha beta",
            "beta beta beta", "beta beta gamma",
            "gamma gamma gamma", "gamma gamma alpha",
        ];
        let labels = vec![0, 0, 1, 1, 2, 2];
        let mut clf = LinearSvm::with_config(fast_config());
        clf.fit(&texts, &labels, 3);
        assert_eq!(clf.predict("alpha alpha alpha alpha"), 0);
        assert_eq!(clf.predict("beta beta beta beta"), 1);
        assert_eq!(clf.predict("gamma gamma gamma gamma"), 2);
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn requires_fit() {
        LinearSvm::new().predict("x");
    }

    #[test]
    fn batch_predict_is_bit_identical_to_per_text() {
        let (texts, labels) = toy_corpus();
        let mut clf = LinearSvm::with_config(fast_config());
        clf.fit(&texts, &labels, 2);
        let batch = clf.predict_proba_batch(&texts);
        for (t, row) in texts.iter().zip(&batch) {
            assert_eq!(row, &clf.predict_proba(t));
        }
    }
}
