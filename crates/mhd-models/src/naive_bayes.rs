//! Multinomial Naive Bayes over stemmed unigrams with Laplace smoothing.

use crate::TextClassifier;
use mhd_text::stem::stem;
use mhd_text::stopwords::is_stopword;
use mhd_text::tokenize::words;
use rayon::prelude::*;
use std::collections::HashMap;

/// Multinomial NB classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// Laplace smoothing constant.
    pub alpha: f64,
    vocab: HashMap<String, u32>,
    /// log P(class).
    log_priors: Vec<f64>,
    /// log P(term | class), indexed `[class][term_id]`.
    log_likelihood: Vec<Vec<f64>>,
    /// log of the smoothed unseen-term likelihood per class.
    log_unseen: Vec<f64>,
}

impl NaiveBayes {
    /// New with the standard α = 1 smoothing.
    pub fn new() -> Self {
        NaiveBayes {
            alpha: 1.0,
            vocab: HashMap::new(),
            log_priors: Vec::new(),
            log_likelihood: Vec::new(),
            log_unseen: Vec::new(),
        }
    }

    fn terms(text: &str) -> Vec<String> {
        words(text)
            .into_iter()
            .filter(|w| !is_stopword(w))
            .map(|w| stem(&w))
            .collect()
    }
}

impl Default for NaiveBayes {
    fn default() -> Self {
        Self::new()
    }
}

impl TextClassifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "naive_bayes"
    }

    fn fit(&mut self, texts: &[&str], labels: &[usize], n_classes: usize) {
        assert_eq!(texts.len(), labels.len());
        // Build vocabulary.
        self.vocab.clear();
        let mut docs_terms: Vec<Vec<String>> = Vec::with_capacity(texts.len());
        for t in texts {
            let terms = Self::terms(t);
            for term in &terms {
                let next_id = self.vocab.len() as u32;
                self.vocab.entry(term.clone()).or_insert(next_id);
            }
            docs_terms.push(terms);
        }
        let v = self.vocab.len();
        // Count per-class term totals.
        let mut class_counts = vec![0usize; n_classes];
        let mut term_counts = vec![vec![0u64; v]; n_classes];
        let mut class_tokens = vec![0u64; n_classes];
        for (terms, &y) in docs_terms.iter().zip(labels) {
            class_counts[y] += 1;
            for term in terms {
                let id = self.vocab[term] as usize;
                term_counts[y][id] += 1;
                class_tokens[y] += 1;
            }
        }
        let n_docs = texts.len().max(1) as f64;
        self.log_priors = class_counts
            .iter()
            .map(|&c| (((c as f64) + 1.0) / (n_docs + n_classes as f64)).ln())
            .collect();
        self.log_likelihood = Vec::with_capacity(n_classes);
        self.log_unseen = Vec::with_capacity(n_classes);
        for y in 0..n_classes {
            let denom = class_tokens[y] as f64 + self.alpha * v as f64;
            self.log_likelihood.push(
                term_counts[y]
                    .iter()
                    .map(|&c| ((c as f64 + self.alpha) / denom).ln())
                    .collect(),
            );
            self.log_unseen.push((self.alpha / denom).ln());
        }
    }

    fn predict_proba(&self, text: &str) -> Vec<f64> {
        assert!(!self.log_priors.is_empty(), "NaiveBayes::fit not called");
        let mut scores = self.log_priors.clone();
        for term in Self::terms(text) {
            match self.vocab.get(&term) {
                Some(&id) => {
                    for (y, s) in scores.iter_mut().enumerate() {
                        *s += self.log_likelihood[y][id as usize];
                    }
                }
                None => {
                    for (y, s) in scores.iter_mut().enumerate() {
                        *s += self.log_unseen[y];
                    }
                }
            }
        }
        // Normalize log scores to probabilities.
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    fn predict_proba_batch(&self, texts: &[&str]) -> Vec<Vec<f64>> {
        // Rows are independent; score them in parallel, output in input
        // order (identical to mapping predict_proba serially).
        texts.par_iter().map(|t| self.predict_proba(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{toy_corpus, train_accuracy};

    #[test]
    fn learns_toy_corpus() {
        let mut nb = NaiveBayes::new();
        let acc = train_accuracy(&mut nb);
        assert!(acc >= 0.9, "NB accuracy {acc}");
    }

    #[test]
    fn proba_normalized() {
        let (texts, labels) = toy_corpus();
        let mut nb = NaiveBayes::new();
        nb.fit(&texts, &labels, 2);
        let p = nb.predict_proba("i feel empty and hopeless");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[0], "distress text should score class 1: {p:?}");
    }

    #[test]
    fn oov_text_falls_back_to_priors() {
        // Balanced token mass per class so the unseen-term likelihood is
        // identical; only the doc-count prior can break the tie.
        let mut nb = NaiveBayes::new();
        nb.fit(&["aa bb", "aa bb", "cc dd cc dd"], &[0, 0, 1], 2);
        let p = nb.predict_proba("zz yy xx");
        assert!(p[0] > p[1], "{p:?}");
    }

    #[test]
    fn smoothing_prevents_zero_probability() {
        let mut nb = NaiveBayes::new();
        nb.fit(&["good", "bad"], &[0, 1], 2);
        // "good" never appears in class 1, but probability stays finite.
        let p = nb.predict_proba("good good good");
        assert!(p.iter().all(|&x| x > 0.0 && x.is_finite()));
    }

    #[test]
    fn handles_empty_class_gracefully() {
        let mut nb = NaiveBayes::new();
        nb.fit(&["x y"], &[0], 2); // class 1 has no docs
        let p = nb.predict_proba("x");
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn requires_fit() {
        NaiveBayes::new().predict("x");
    }
}
