//! Lexicon rule baseline: nearest-centroid over LIWC-style category rates.
//!
//! The classic pre-ML approach in this literature: score each post by its
//! affect-category profile and assign the class whose profile it most
//! resembles. Fitting only estimates per-class centroids — no discriminative
//! optimization — so the method is fast, interpretable, and (as every survey
//! reports) noticeably weaker than trained models.

use crate::TextClassifier;
use mhd_text::lexicon::Lexicon;
use mhd_text::stats::TextStats;
use mhd_text::tokenize::words;

/// Nearest-centroid classifier over lexicon-rate + surface-stat features.
#[derive(Debug, Clone)]
pub struct LexiconRule {
    lexicon: Lexicon,
    centroids: Vec<Vec<f64>>, // one per class
    /// Softmax temperature over negative distances.
    temperature: f64,
}

impl LexiconRule {
    /// New, unfitted.
    pub fn new() -> Self {
        LexiconRule { lexicon: Lexicon::standard(), centroids: Vec::new(), temperature: 0.02 }
    }

    fn features(&self, text: &str) -> Vec<f64> {
        let toks = words(text);
        let mut f = self.lexicon.profile(&toks).rates();
        f.extend(TextStats::of(text).features().iter().map(|&x| x * 0.1)); // downweight surface stats
        f
    }
}

impl Default for LexiconRule {
    fn default() -> Self {
        Self::new()
    }
}

impl TextClassifier for LexiconRule {
    fn name(&self) -> &'static str {
        "lexicon"
    }

    fn fit(&mut self, texts: &[&str], labels: &[usize], n_classes: usize) {
        let dim = self.features(texts.first().copied().unwrap_or("")).len();
        let mut sums = vec![vec![0.0f64; dim]; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (t, &y) in texts.iter().zip(labels) {
            let f = self.features(t);
            for (s, v) in sums[y].iter_mut().zip(&f) {
                *s += v;
            }
            counts[y] += 1;
        }
        self.centroids = sums
            .into_iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c == 0 {
                    s // zero centroid for unseen classes
                } else {
                    s.into_iter().map(|v| v / c as f64).collect()
                }
            })
            .collect();
    }

    fn predict_proba(&self, text: &str) -> Vec<f64> {
        assert!(!self.centroids.is_empty(), "LexiconRule::fit not called");
        let f = self.features(text);
        // Negative squared distance → softmax.
        let neg_d2: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| -c.iter().zip(&f).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
            .collect();
        softmax_t(&neg_d2, self.temperature)
    }
}

fn softmax_t(xs: &[f64], t: f64) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| ((x - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{toy_corpus, train_accuracy};

    #[test]
    fn separates_clear_classes() {
        let mut clf = LexiconRule::new();
        let acc = train_accuracy(&mut clf);
        assert!(acc >= 0.9, "lexicon accuracy {acc}");
    }

    #[test]
    fn proba_is_distribution() {
        let (texts, labels) = toy_corpus();
        let mut clf = LexiconRule::new();
        clf.fit(&texts, &labels, 2);
        let p = clf.predict_proba("i feel sad");
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_class_gets_zero_centroid() {
        let mut clf = LexiconRule::new();
        clf.fit(&["happy day"], &[0], 3); // classes 1 and 2 unseen
        let p = clf.predict_proba("happy day");
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "fit not called")]
    fn requires_fit() {
        LexiconRule::new().predict("x");
    }
}
